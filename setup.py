"""Setup shim.

The offline environment lacks the `wheel` package, so PEP 660 editable
installs (which need bdist_wheel) fail; this shim lets
``pip install -e .`` use setuptools' legacy develop path.  All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
