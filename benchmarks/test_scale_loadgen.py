"""Scale benchmark: closed-loop load from 1 to 64 concurrent clients.

Not a figure from the paper — the paper measured one client against one
server — but the natural scale-out question its architecture raises:
what happens to an SFS server (user-level crypto relay and all) as
concurrent clients multiply?  Each level runs N closed-loop clients
(think time → call → repeat) against one queued server with a fixed
worker pool, and reports throughput plus p50/p95/p99 operation latency
in simulated time.  Everything is deterministic per seed.

The shape asserted: throughput grows with N until it saturates at the
server's service capacity, after which tail latency compounds —
queueing delay, not service time, dominates p99.
"""

from __future__ import annotations

import pytest

from repro.bench.timing import format_table
from repro.load import LoadConfig, LoadHarness

from conftest import emit_table

LEVELS = [1, 4, 16, 64]
_SEED = 2026
_OPS = 20

_results: dict[int, object] = {}


def run_level(clients: int):
    config = LoadConfig(
        clients=clients, ops_per_client=_OPS, seed=_SEED,
        workers=2, service_time=0.001, think_time=0.010,
        max_depth=None,           # measure raw queueing, not backpressure
    )
    return LoadHarness(config).run_closed_loop()


@pytest.mark.parametrize("clients", LEVELS)
def test_scale_level(clients, benchmark):
    report = benchmark.pedantic(
        lambda: run_level(clients), rounds=1, iterations=1
    )
    assert report.op_errors == 0
    assert report.unfinished_tasks == 0
    assert report.ops_completed == clients * _OPS
    _results[clients] = report


def test_scale_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(LEVELS)
    rows = [
        (
            str(n),
            _results[n].throughput,
            _results[n].p50 * 1000,
            _results[n].p95 * 1000,
            _results[n].p99 * 1000,
            str(_results[n].max_queue_depth),
        )
        for n in LEVELS
    ]
    table = format_table(
        f"Scale: closed-loop clients vs one queued SFS server "
        f"(2 workers x 1 ms service, {_OPS} ops/client, seed {_SEED})",
        ["Clients", "ops/s", "p50 ms", "p95 ms", "p99 ms", "peak queue"],
        rows,
    )
    emit_table("scale_loadgen", table, capsys)

    # Throughput scales while the server has headroom...
    assert _results[4].throughput > 2.0 * _results[1].throughput
    # ...then saturates at service capacity (2 workers / 1 ms = 2000/s).
    assert _results[64].throughput <= 2000 * 1.05
    # Past saturation, tail latency compounds super-linearly: p99 grows
    # faster than the client count does.
    assert (_results[64].p99 / _results[4].p99) > (64 / 4)
    # Determinism: the same seed reproduces the same report exactly.
    again = run_level(16)
    assert again.latencies == _results[16].latencies
    assert again.throughput == _results[16].throughput
