"""Figure 9: Sprite LFS large-file benchmark (40,000 KB in the paper;
scaled size here), 8-KB chunks: sequential write, sequential read,
random write, random read, sequential read again.

Paper's shape (section 4.4): "the large file benchmark stresses
throughput and shows the impact of both SFS's user-level implementation
and software encryption" — SFS 44% slower than NFS/UDP on sequential
write, 145% slower on sequential read; without encryption only 17% / 31%
slower.
"""

from __future__ import annotations

import pytest

from repro.bench import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from repro.bench.sprite import LARGE_PHASES, run_large_file
from repro.bench.timing import format_table

from conftest import emit_table

CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
_SIZE = 2 << 20

_results: dict[str, object] = {}


@pytest.mark.parametrize("config", CONFIGS)
def test_fig9_largefile(config, benchmark):
    setup = make_setup(config)
    result = benchmark.pedantic(
        lambda: run_large_file(setup, size=_SIZE), rounds=1, iterations=1
    )
    _results[config] = result


def test_fig9_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS)
    rows = []
    for name in CONFIGS:
        result = _results[name]
        rows.append(tuple(
            [name] + [result.phases[p].total for p in LARGE_PHASES]
        ))
    table = format_table(
        f"Figure 9: Sprite LFS large-file benchmark "
        f"({_SIZE >> 20} MB file, 8 KB chunks), seconds per phase",
        ["File system"] + LARGE_PHASES,
        rows,
    )
    emit_table("fig9_largefile", table, capsys)

    def phase(name, p):
        return _results[name].phases[p].total

    # SFS pays for encryption + user-level relay on bulk data.
    assert phase(SFS, "seq write") > phase(NFS_UDP, "seq write")
    assert phase(SFS, "seq read") > phase(NFS_UDP, "seq read")
    # Disabling encryption recovers a large share of the bulk cost.
    assert phase(SFS_NOENC, "seq read") < phase(SFS, "seq read")
    assert phase(SFS_NOENC, "seq write") < phase(SFS, "seq write")
    # Local beats everything on every phase.
    for p in LARGE_PHASES:
        assert phase(LOCAL, p) <= phase(NFS_UDP, p)
