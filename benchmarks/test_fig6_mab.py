"""Figure 6: the Modified Andrew Benchmark.

Paper's result: Local 4.7s-ish, NFS/UDP ~5.3s, NFS/TCP ~5.6s, SFS ~5.9s
(bars per phase; exact totals from the text: "SFS is only 11%
(0.6 seconds) slower than NFS 3 over UDP").  Also from section 4.3:
disabling encryption improves MAB by only ~0.2 seconds — the user-level
implementation, not cryptography, is the cost.

Shape asserted: Local fastest overall; SFS within ~40% of NFS/UDP
(the paper's 11%, with slack for Python crypto); the encryption delta is
a small fraction of the SFS-NFS gap.
"""

from __future__ import annotations

import pytest

from repro.bench import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from repro.bench.mab import PHASES, run_mab
from repro.bench.timing import format_table

from conftest import emit_table

CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS, SFS_NOENC]

_results: dict[str, object] = {}


@pytest.mark.parametrize("config", CONFIGS)
def test_fig6_mab(config, benchmark):
    setup = make_setup(config)
    result = benchmark.pedantic(lambda: run_mab(setup), rounds=1, iterations=1)
    _results[config] = result
    assert set(result.phases) == set(PHASES)


def test_fig6_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS)
    rows = []
    for name in CONFIGS:
        result = _results[name]
        rows.append(tuple(
            [name] + [result.phases[p].total for p in PHASES] + [result.total]
        ))
    table = format_table(
        "Figure 6: Modified Andrew Benchmark, seconds per phase",
        ["File system"] + PHASES + ["total"],
        rows,
    )
    emit_table("fig6_mab", table, capsys)

    total = {name: _results[name].total for name in CONFIGS}
    # The network file systems cannot beat the local one end to end.
    assert total[LOCAL] < total[NFS_UDP]
    assert total[LOCAL] < total[SFS]
    # "SFS is only 11% slower than NFS 3 over UDP" — enhanced caching
    # keeps it competitive.  Allow generous slack for Python crypto and
    # wall-clock noise.
    assert total[SFS] < 1.6 * total[NFS_UDP]
    # Encryption accounts for a minority of the total (~0.2s of 5.9s in
    # the paper; a few percent here).
    encryption_delta = total[SFS] - total[SFS_NOENC]
    assert encryption_delta < 0.35 * total[SFS]
    # SFS's lease caching keeps the attribute phase competitive with NFS
    # even though SFS's per-RPC latency is several times higher.
    sfs_attr = _results[SFS].phases["attributes"].total
    nfs_attr = _results[NFS_UDP].phases["attributes"].total
    latency_ratio = 2.0  # conservative floor from figure 5
    assert sfs_attr < latency_ratio * nfs_attr
