"""Ablation: the read-only dialect's crypto economics (paper section 2.4).

"This dialect makes the amount of cryptographic computation required
from read-only servers proportional to the file system's size and rate
of change, rather than to the number of clients connecting."

We measure both sides of that claim:

* publishing cost grows with file system size (one offline signature +
  hashing proportional to content);
* serving N clients performs *zero* private-key operations, versus the
  read-write dialect where every client connection costs the server a
  Rabin decryption during key negotiation.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.keyneg import EphemeralKeyCache
from repro.core.readonly import ReadOnlyClient, ReadOnlyStore, publish
from repro.core.client import ServerSession
from repro.core import proto
from repro.crypto.rabin import generate_key
from repro.fs import pathops
from repro.fs.memfs import MemFs
from repro.kernel.world import World
from repro.core.pathnames import make_path
from repro.bench.timing import format_table

from conftest import emit_table


def _build_fs(n_files: int, rng: random.Random) -> MemFs:
    fs = MemFs()
    for index in range(n_files):
        body = bytes(rng.getrandbits(8) for _ in range(512)) * 4
        pathops.write_file(fs, f"/dir{index % 8}/file{index}", body)
    return fs


def test_publish_cost_scales_with_size(benchmark, capsys):
    rng = random.Random(5)
    key = generate_key(768, rng)
    timings = []

    def run() -> None:
        for n_files in (16, 64, 256):
            fs = _build_fs(n_files, rng)
            start = time.perf_counter()
            publish(fs, key, "ro.example.com")
            timings.append((n_files, time.perf_counter() - start))

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: read-only publish cost vs file system size",
        ["files", "publish seconds"],
        [(str(n), t) for n, t in timings],
    )
    emit_table("ablation_ro_publish", table, capsys)
    by_n = dict(timings)
    assert by_n[256] > by_n[16], "publishing more content must cost more"


def test_serving_cost_independent_of_clients(benchmark, capsys):
    """N read-only clients cost the server no private-key operations."""
    rng = random.Random(6)
    key = generate_key(768, rng)
    fs = _build_fs(32, rng)
    image = publish(fs, key, "ro.example.com")
    n_clients = 20

    def serve_all() -> int:
        store = ReadOnlyStore(image)
        path = make_path("ro.example.com", key.public_key)
        served = 0
        for _ in range(n_clients):
            client = ReadOnlyClient(
                path,
                fetch_root=lambda: _root_with_key(store, key),
                fetch_data=store.get_data,
            )
            client.resolve_path("dir0")
            served += 1
        return served

    served = benchmark.pedantic(serve_all, rounds=1, iterations=1)
    assert served == n_clients

    # Contrast: every read-write connection costs the server one Rabin
    # decryption (key negotiation).  Count connections accepted.
    world = World(seed=8)
    server = world.add_server("rw.example.com")
    path = server.export_fs()
    for _ in range(5):
        link = world.connector("rw.example.com", proto.SERVICE_FILESERVER)
        session = ServerSession.connect(
            link, path, EphemeralKeyCache(world.rng), world.rng
        )
        assert isinstance(session, ServerSession)
    assert server.master.connections_accepted == 5
    table = format_table(
        "Ablation: server private-key operations per client",
        ["dialect", "clients", "server private-key ops"],
        [("read-only", str(n_clients), "0 (signature precomputed)"),
         ("read-write", "5", "5 (one Rabin decrypt per key negotiation)")],
    )
    emit_table("ablation_ro_clients", table, capsys)


def _root_with_key(store: ReadOnlyStore, key):
    res = store.get_root()
    res.public_key = key.public_key.to_bytes()
    return res
