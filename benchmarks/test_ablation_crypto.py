"""Ablation: the cost of SFS's cryptography.

Two design choices the paper calls out:

* the secure channel's ARC4 + re-keyed SHA-1 MAC (section 3.1.3) — we
  measure raw channel goodput with encryption on and off;
* eksblowfish password hardening (section 2.5.2): "Eksblowfish takes a
  cost parameter that one can increase as computers get faster" — we
  measure the exponential scaling that makes off-line guessing expensive.
"""

from __future__ import annotations

import time

import pytest

from repro.core.channel import SecureChannel
from repro.crypto.eksblowfish import bcrypt_raw
from repro.sim.clock import Clock
from repro.sim.network import NetworkParameters, link_pair
from repro.bench.timing import format_table

from conftest import emit_table

_RECORD = bytes(8192)
_N_RECORDS = 128

_results: dict[str, float] = {}


def _channel_goodput(encrypt: bool) -> float:
    """MB/s through a SecureChannel pair over an instant link."""
    clock = Clock()
    a, b = link_pair(clock, NetworkParameters.instant())
    received = []
    sender = SecureChannel(a, send_key=b"k" * 20, recv_key=b"r" * 20,
                           encrypt=encrypt)
    receiver = SecureChannel(b, send_key=b"r" * 20, recv_key=b"k" * 20,
                             encrypt=encrypt)
    receiver.on_receive(received.append)
    sender.on_receive(lambda data: None)
    start = time.perf_counter()
    for _ in range(_N_RECORDS):
        sender.send(_RECORD)
    elapsed = time.perf_counter() - start
    assert len(received) == _N_RECORDS
    return (_N_RECORDS * len(_RECORD) / (1 << 20)) / elapsed


@pytest.mark.parametrize("encrypt", [True, False], ids=["arc4+mac", "plain"])
def test_channel_goodput(encrypt, benchmark):
    rate = benchmark.pedantic(
        lambda: _channel_goodput(encrypt), rounds=1, iterations=1
    )
    _results["enc" if encrypt else "plain"] = rate


def test_channel_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = format_table(
        "Ablation: secure channel goodput",
        ["Channel", "MB/s"],
        [("ARC4 + MAC", _results["enc"]), ("plaintext", _results["plain"])],
    )
    emit_table("ablation_channel", table, capsys)
    assert _results["plain"] > 2 * _results["enc"]


def test_eksblowfish_cost_scaling(benchmark, capsys):
    """Doubling the cost parameter roughly doubles hashing time."""
    timings: list[tuple[int, float]] = []

    def run() -> None:
        for cost in (2, 4, 6):
            start = time.perf_counter()
            bcrypt_raw(b"hunter2\x00", b"0123456789abcdef", cost)
            timings.append((cost, time.perf_counter() - start))

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Ablation: eksblowfish cost scaling (paper section 2.5.2)",
        ["cost (2^c expansions)", "seconds"],
        [(str(c), t) for c, t in timings],
    )
    emit_table("ablation_eksblowfish", table, capsys)
    by_cost = dict(timings)
    # cost+2 => 4x the expansions; allow slack for constant overhead.
    assert by_cost[4] > 2.0 * by_cost[2]
    assert by_cost[6] > 2.0 * by_cost[4]
