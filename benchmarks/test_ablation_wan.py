"""Ablation: SFS across the wide area.

The paper's premise is a file system that spans the Internet (§1); its
evaluation ran on a LAN.  This ablation moves the same MAB workload to
WAN timing (~20 ms one-way) and shows the design feature that makes the
premise viable: at WAN latencies the lease caches absorb what would
otherwise be thousands of 40 ms round trips, so caching saves far more
(in absolute seconds) than it does on the LAN.
"""

from __future__ import annotations

import pytest

from repro.bench import SFS
from repro.bench.mab import run_mab
from repro.bench.setups import make_setup
from repro.bench.timing import format_table
from repro.sim.network import NetworkParameters

from conftest import emit_table

_results: dict[tuple[str, bool], float] = {}


def _run(wan: bool, caching: bool) -> float:
    setup = make_setup(SFS, caching=caching)
    if wan:
        setup.world.lan_params = NetworkParameters.wan()
        # Reconnect-free: mounts dial lazily, so setting the params
        # before first access puts all SFS traffic on WAN timing.
    result = run_mab(setup)
    return result.total


@pytest.mark.parametrize("wan,caching", [
    (False, True), (False, False), (True, True), (True, False),
], ids=["lan-cached", "lan-uncached", "wan-cached", "wan-uncached"])
def test_wan_ablation(wan, caching, benchmark):
    total = benchmark.pedantic(lambda: _run(wan, caching),
                               rounds=1, iterations=1)
    _results[("wan" if wan else "lan", caching)] = total


def test_wan_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_results) == 4
    rows = [
        ("LAN", _results[("lan", True)], _results[("lan", False)]),
        ("WAN (20 ms)", _results[("wan", True)], _results[("wan", False)]),
    ]
    table = format_table(
        "Ablation: MAB on SFS, LAN vs WAN, lease caching on/off (seconds)",
        ["Network", "leases on", "leases off"], rows,
    )
    emit_table("ablation_wan", table, capsys)

    lan_saving = _results[("lan", False)] - _results[("lan", True)]
    wan_saving = _results[("wan", False)] - _results[("wan", True)]
    # Caching must help in both settings, and much more across the WAN.
    assert lan_saving > 0
    assert wan_saving > 2 * lan_saving
