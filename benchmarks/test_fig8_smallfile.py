"""Figure 8: Sprite LFS small-file benchmark (create/read/unlink 1,000
1-KB files; scaled count here).

Paper's shape: on *create*, SFS performs about the same as NFS/UDP
(attribute caching makes up for its latency); on *read*, SFS is ~3x
slower than NFS/UDP (latency-bound); *unlink* is dominated by
synchronous disk writes so all network file systems perform roughly the
same.
"""

from __future__ import annotations

import pytest

from repro.bench import LOCAL, NFS_TCP, NFS_UDP, SFS, make_setup
from repro.bench.sprite import SMALL_PHASES, run_small_file
from repro.bench.timing import format_table

from conftest import emit_table

CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS]
_COUNT = 250

_results: dict[str, object] = {}


@pytest.mark.parametrize("config", CONFIGS)
def test_fig8_smallfile(config, benchmark):
    setup = make_setup(config)
    result = benchmark.pedantic(
        lambda: run_small_file(setup, count=_COUNT), rounds=1, iterations=1
    )
    _results[config] = result


def test_fig8_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS)
    rows = []
    for name in CONFIGS:
        result = _results[name]
        rows.append(tuple(
            [name] + [result.phases[p].total for p in SMALL_PHASES]
        ))
    table = format_table(
        f"Figure 8: Sprite LFS small-file benchmark "
        f"({_COUNT} x 1 KB files), seconds per phase",
        ["File system"] + SMALL_PHASES,
        rows,
    )
    emit_table("fig8_smallfile", table, capsys)

    def phase(name, p):
        return _results[name].phases[p].total

    # Create: attribute caching keeps SFS within ~2x of NFS/UDP (paper:
    # "about the same").
    assert phase(SFS, "create") < 2.0 * phase(NFS_UDP, "create")
    # Read: SFS suffers from its increased latency (paper: 3x slower).
    assert phase(SFS, "read") > 1.1 * phase(NFS_UDP, "read")
    # Unlink: synchronous disk writes dominate, so the gap between SFS
    # and NFS narrows compared to the read phase.
    read_ratio = phase(SFS, "read") / phase(NFS_UDP, "read")
    unlink_ratio = phase(SFS, "unlink") / phase(NFS_UDP, "unlink")
    assert unlink_ratio < read_ratio
    # Local wins every phase.
    for p in SMALL_PHASES:
        assert phase(LOCAL, p) <= phase(NFS_UDP, p)
        assert phase(LOCAL, p) <= phase(SFS, p)
