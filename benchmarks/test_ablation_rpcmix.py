"""Ablation: the RPC mix behind SFS's caching (paper section 4.2/3.3).

"The SFS read-write protocol ... adds enhanced attribute and access
caching to reduce the number of NFS GETATTR and ACCESS RPCs sent over
the wire."

We run MAB on SFS with leases on and off and count, per NFS procedure,
how many RPCs actually crossed the secure channel.  The reduction must
be concentrated exactly where the paper says: GETATTR, ACCESS, LOOKUP.
"""

from __future__ import annotations

import pytest

from repro.bench import SFS
from repro.bench.mab import run_mab
from repro.bench.setups import make_setup
from repro.bench.timing import format_table
from repro.nfs3 import const as nfs_const

from conftest import emit_table

_TRACKED = {
    nfs_const.NFSPROC3_GETATTR: "GETATTR",
    nfs_const.NFSPROC3_ACCESS: "ACCESS",
    nfs_const.NFSPROC3_LOOKUP: "LOOKUP",
    nfs_const.NFSPROC3_READ: "READ",
    nfs_const.NFSPROC3_WRITE: "WRITE",
}

_results: dict[str, dict[str, int]] = {}


def _wire_mix(caching: bool) -> dict[str, int]:
    setup = make_setup(SFS, caching=caching)
    run_mab(setup)
    client = next(iter(setup.world.clients.values()))
    counts: dict[str, int] = {name: 0 for name in _TRACKED.values()}
    for mount in client.sfscd._mounts.values():
        peer = mount.session.peer
        for (prog, proc), count in peer.proc_counts.items():
            if proc in _TRACKED:
                counts[_TRACKED[proc]] += count
    return counts


@pytest.mark.parametrize("caching", [True, False],
                         ids=["leases-on", "leases-off"])
def test_rpc_mix(caching, benchmark):
    counts = benchmark.pedantic(lambda: _wire_mix(caching),
                                rounds=1, iterations=1)
    _results["on" if caching else "off"] = counts


def test_rpc_mix_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == {"on", "off"}
    names = list(_TRACKED.values())
    rows = [
        tuple(["SFS (leases on)"] + [str(_results["on"][n]) for n in names]),
        tuple(["SFS (leases off)"] + [str(_results["off"][n]) for n in names]),
    ]
    table = format_table(
        "Ablation: wire RPCs by procedure during MAB",
        ["Configuration"] + names, rows,
    )
    emit_table("ablation_rpcmix", table, capsys)

    on, off = _results["on"], _results["off"]
    # The headline claim: caching removes GETATTR/ACCESS/LOOKUP traffic.
    assert on["GETATTR"] < off["GETATTR"]
    assert on["ACCESS"] < off["ACCESS"]
    assert on["LOOKUP"] < off["LOOKUP"]
    # Data RPCs are NOT cached (no data cache in sfscd): unchanged.
    assert on["READ"] == off["READ"]
    assert on["WRITE"] == off["WRITE"]
