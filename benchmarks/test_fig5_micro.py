"""Figure 5: micro-benchmarks for basic operations.

Paper's rows (550 MHz P-III, 100 Mbit Ethernet):

    File system          Latency (usec)   Throughput (MB/s)
    NFS 3 (UDP)                200              9.3
    NFS 3 (TCP)                220              7.6
    SFS                        790              4.1
    SFS w/o encryption         770              7.1

Shape asserted here: SFS latency is a multiple of NFS latency (the
user-level implementation dominates; encryption is a minority of the
difference), and throughput orders NFS/UDP > NFS/TCP > SFS-without-
encryption > SFS.
"""

from __future__ import annotations

import pytest

from repro.bench import NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from repro.bench.micro import run_micro
from repro.bench.timing import format_table

from conftest import emit_table

CONFIGS = [NFS_UDP, NFS_TCP, SFS, SFS_NOENC]
_LATENCY_OPS = 150
_THROUGHPUT_BYTES = 1 << 20

_results: dict[str, object] = {}


@pytest.mark.parametrize("config", CONFIGS)
def test_fig5_micro(config, benchmark):
    setup = make_setup(config)
    result = benchmark.pedantic(
        lambda: run_micro(setup, ops=_LATENCY_OPS, size=_THROUGHPUT_BYTES),
        rounds=1, iterations=1,
    )
    _results[config] = result
    assert result.latency_usec > 0
    assert result.throughput_mbs > 0


def test_fig5_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS), "run the whole file"
    rows = [
        (name, _results[name].latency_usec, _results[name].throughput_mbs)
        for name in CONFIGS
    ]
    table = format_table(
        "Figure 5: micro-benchmarks for basic operations",
        ["File system", "Latency (usec)", "Throughput (MB/s)"],
        rows,
    )
    emit_table("fig5_micro", table, capsys)

    # Per-layer latency attribution: the tracker's exclusive times must
    # account for the whole headline (within 5%), and the SFS rows must
    # show where the overhead lives — crypto and the user-level relay.
    layers = ["crypto", "rpc", "nfs3", "network", "disk", "other"]
    attr_rows = []
    for name in CONFIGS:
        result = _results[name]
        assert result.attribution is not None
        components = sum(result.attribution.values())
        assert components == pytest.approx(result.headline_seconds, rel=0.05)
        attr_rows.append(tuple(
            [name] + [result.attribution.get(layer, 0.0) for layer in layers]
            + [components, result.headline_seconds]
        ))
    attr_table = format_table(
        "Figure 5 latency attribution (seconds)",
        ["File system"] + layers + ["sum", "headline"], attr_rows,
    )
    emit_table("fig5_attribution", attr_table, capsys)
    assert _results[SFS].attribution.get("crypto", 0.0) > 0
    assert _results[SFS_NOENC].attribution.get("crypto", 0.0) == 0
    assert (_results[SFS].attribution.get("rpc", 0.0)
            > _results[NFS_UDP].attribution.get("rpc", 0.0))

    latency = {name: _results[name].latency_usec for name in CONFIGS}
    throughput = {name: _results[name].throughput_mbs for name in CONFIGS}
    # SFS pays for its user-level implementation on every RPC.
    assert latency[SFS] > 1.5 * latency[NFS_UDP]
    # Encryption is a minority of the latency difference: disabling it
    # must not bring SFS anywhere near NFS.
    assert latency[SFS_NOENC] > 1.2 * latency[NFS_UDP]
    # Throughput ordering from the paper's table.  The encryption
    # penalty itself is smaller here than the paper's 7.1-vs-4.1 now
    # that ARC4 runs through the block kernel (docs/PERFORMANCE.md),
    # but the ordering must hold with a clear margin.
    assert throughput[NFS_UDP] > throughput[NFS_TCP]
    assert throughput[NFS_TCP] > throughput[SFS_NOENC] * 0.9  # close race
    assert throughput[SFS_NOENC] > 1.1 * throughput[SFS]
