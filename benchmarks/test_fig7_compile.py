"""Figure 7: compiling the GENERIC FreeBSD 3.3 kernel.

Paper's rows:

    System        Time (seconds)
    Local              140
    NFS 3 (UDP)        178
    NFS 3 (TCP)        207
    SFS                197

i.e. SFS lands *between* the two NFS transports: 16% slower than
NFS/UDP, 5% faster than NFS/TCP, and (section 4.3) "disabling software
encryption in SFS sped up the compile by only 3 seconds or 1.5%".

Shape asserted: Local < NFS/UDP < SFS; SFS within 2x of NFS/UDP; the
encryption delta is small relative to total time.
"""

from __future__ import annotations

import pytest

from repro.bench import LOCAL, NFS_TCP, NFS_UDP, SFS, SFS_NOENC, make_setup
from repro.bench.compile import run_compile
from repro.bench.timing import format_table

from conftest import emit_table

CONFIGS = [LOCAL, NFS_UDP, NFS_TCP, SFS, SFS_NOENC]

_results: dict[str, float] = {}


@pytest.mark.parametrize("config", CONFIGS)
def test_fig7_compile(config, benchmark):
    setup = make_setup(config)
    result = benchmark.pedantic(
        lambda: run_compile(setup), rounds=1, iterations=1
    )
    _results[config] = result.seconds
    assert result.seconds > 0


def test_fig7_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == set(CONFIGS)
    rows = [(name, _results[name]) for name in CONFIGS]
    table = format_table(
        "Figure 7: compiling the GENERIC kernel (synthetic)",
        ["System", "Time (seconds)"],
        rows,
    )
    emit_table("fig7_compile", table, capsys)

    assert _results[LOCAL] < _results[NFS_UDP]
    assert _results[NFS_UDP] < _results[SFS]
    assert _results[SFS] < 2.0 * _results[NFS_UDP]
    # "only 3 seconds or 1.5%": encryption is a small share of the build.
    delta = _results[SFS] - _results[SFS_NOENC]
    assert delta < 0.25 * _results[SFS]
