"""Ablation: SFS's enhanced attribute/access caching (paper section 4.3).

"SFS performs reasonably because of its more aggressive attribute and
access caching.  Without enhanced caching, MAB takes a total of 6.6
seconds, 0.7 seconds slower than with caching and 1.3 seconds slower
than NFS 3 over UDP."

We run MAB on SFS with the lease caches enabled and disabled and assert
both the time ordering and the mechanism: with caching on, strictly
fewer RPCs cross the secure channel.
"""

from __future__ import annotations

import pytest

from repro.bench import SFS, make_setup
from repro.bench.mab import run_mab
from repro.bench.setups import make_setup as _make_setup
from repro.bench.timing import format_table

from conftest import emit_table

_results: dict[str, tuple[float, int]] = {}


def _run(caching: bool):
    setup = _make_setup(SFS, caching=caching)
    result = run_mab(setup)
    # Count the RPCs that actually crossed the secure channel.
    daemon = None
    for client in setup.world.clients.values():
        daemon = client.sfscd
    relayed = sum(
        mount.rpcs_relayed
        for mount in daemon._mounts.values()
        if hasattr(mount, "rpcs_relayed")
    )
    return result.total, relayed


@pytest.mark.parametrize("caching", [True, False],
                         ids=["leases-on", "leases-off"])
def test_ablation_caching(caching, benchmark):
    total, relayed = benchmark.pedantic(
        lambda: _run(caching), rounds=1, iterations=1
    )
    _results["on" if caching else "off"] = (total, relayed)


def test_ablation_caching_report(benchmark, capsys):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert set(_results) == {"on", "off"}
    rows = [
        ("SFS (lease caching)", _results["on"][0], _results["on"][1]),
        ("SFS (no caching)", _results["off"][0], _results["off"][1]),
    ]
    table = format_table(
        "Ablation: MAB on SFS with lease caching on/off",
        ["Configuration", "MAB total (s)", "RPCs over the wire"],
        rows,
    )
    emit_table("ablation_caching", table, capsys)

    on_total, on_rpcs = _results["on"]
    off_total, off_rpcs = _results["off"]
    assert on_rpcs < off_rpcs, "lease caching must eliminate wire RPCs"
    assert on_total <= off_total * 1.02, "caching must not slow MAB down"
