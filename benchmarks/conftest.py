"""Shared helpers for the figure-regeneration benchmarks.

Each ``test_fig*.py`` file regenerates one table or figure from the
paper's section 4: it runs the workload under every measured
configuration, prints the same rows the paper reports, asserts the
*shape* of the result (who wins, roughly by how much), and writes the
table to ``benchmarks/results/`` for EXPERIMENTS.md.

Absolute numbers differ from the paper (the substrate is a simulator and
the implementation is Python); the assertions encode only the relative
claims the paper makes.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(name: str, table: str, capsys) -> None:
    """Print a results table past pytest's capture and save it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    with capsys.disabled():
        print()
        print(table)
