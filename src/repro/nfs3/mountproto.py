"""The NFS MOUNT protocol, version 3 (RFC 1813 appendix I).

Plain NFS clients cannot conjure a root file handle out of thin air: they
ask the MOUNT service.  This is also where NFS's security problem starts
— "an attacker who learns the file handle of even a single directory can
access any part of the file system as any user" — because MNT hands out
handles subject only to an export list.  The SFS baseline comparisons in
the benchmarks mount through this protocol exactly like 1999 clients did.

Implemented procedures: NULL, MNT, DUMP, UMNT, UMNTALL, EXPORT.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rpc.peer import CallContext, Program, RpcPeer
from ..rpc.rpcmsg import AUTH_SYS, AuthSys, RpcMsgError
from ..rpc.xdr import Array, Opaque, Record, String, Struct, UInt32, Union, VOID

MOUNT_PROGRAM = 100005
MOUNT_VERSION = 3

MOUNTPROC3_NULL = 0
MOUNTPROC3_MNT = 1
MOUNTPROC3_DUMP = 2
MOUNTPROC3_UMNT = 3
MOUNTPROC3_UMNTALL = 4
MOUNTPROC3_EXPORT = 5

MNT3_OK = 0
MNT3ERR_PERM = 1
MNT3ERR_NOENT = 2
MNT3ERR_ACCES = 13
MNT3ERR_NOTDIR = 20

DirPath = String(1024)
Name = String(255)

MntArgs = Struct("MNTargs", [("dirpath", DirPath)])
MntResOk = Struct(
    "mountres3_ok",
    [("fhandle", Opaque(64)), ("auth_flavors", Array(UInt32, 8))],
)
MntRes = Union("mountres3", {MNT3_OK: MntResOk}, default=None)

MountEntry = Struct(
    "mountbody", [("hostname", Name), ("directory", DirPath)]
)
DumpRes = Array(MountEntry)

ExportEntry = Struct(
    "exportnode", [("dir", DirPath), ("groups", Array(Name, 16))]
)
ExportRes = Array(ExportEntry)


@dataclass
class Export:
    """One exported directory and who may mount it."""

    dirpath: str
    root_handle: bytes
    groups: tuple[str, ...] = ()  # empty = everyone

    def allows(self, hostname: str) -> bool:
        return not self.groups or hostname in self.groups


class MountServer:
    """Serves the MOUNT program for a set of exports."""

    def __init__(self) -> None:
        self._exports: dict[str, Export] = {}
        self._mounted: list[tuple[str, str]] = []  # (hostname, dirpath)
        self.program = self._build_program()

    def add_export(self, dirpath: str, root_handle: bytes,
                   groups: tuple[str, ...] = ()) -> None:
        self._exports[dirpath] = Export(dirpath, root_handle, groups)

    def _hostname(self, ctx: CallContext) -> str:
        if ctx.cred.flavor == AUTH_SYS:
            try:
                return AuthSys.from_auth(ctx.cred).machinename
            except RpcMsgError:
                pass
        return "unknown"

    def _build_program(self) -> Program:
        program = Program("mount3", MOUNT_PROGRAM, MOUNT_VERSION)
        program.add_proc(MOUNTPROC3_MNT, "MNT", MntArgs, MntRes, self._mnt)
        program.add_proc(MOUNTPROC3_DUMP, "DUMP", VOID, DumpRes, self._dump)
        program.add_proc(MOUNTPROC3_UMNT, "UMNT", MntArgs, VOID, self._umnt)
        program.add_proc(MOUNTPROC3_UMNTALL, "UMNTALL", VOID, VOID,
                         self._umntall)
        program.add_proc(MOUNTPROC3_EXPORT, "EXPORT", VOID, ExportRes,
                         self._export)
        return program

    def _mnt(self, args: Record, ctx: CallContext):
        export = self._exports.get(args.dirpath)
        if export is None:
            return MNT3ERR_NOENT, None
        hostname = self._hostname(ctx)
        if not export.allows(hostname):
            return MNT3ERR_ACCES, None
        self._mounted.append((hostname, args.dirpath))
        return MNT3_OK, MntResOk.make(
            fhandle=export.root_handle, auth_flavors=[AUTH_SYS]
        )

    def _dump(self, args, ctx: CallContext):
        return [
            MountEntry.make(hostname=host, directory=directory)
            for host, directory in self._mounted
        ]

    def _umnt(self, args: Record, ctx: CallContext) -> None:
        hostname = self._hostname(ctx)
        self._mounted = [
            entry for entry in self._mounted
            if entry != (hostname, args.dirpath)
        ]

    def _umntall(self, args, ctx: CallContext) -> None:
        hostname = self._hostname(ctx)
        self._mounted = [
            entry for entry in self._mounted if entry[0] != hostname
        ]

    def _export(self, args, ctx: CallContext):
        return [
            ExportEntry.make(dir=export.dirpath, groups=list(export.groups))
            for export in self._exports.values()
        ]


class MountClient:
    """Client stubs for the MOUNT program."""

    def __init__(self, peer: RpcPeer, hostname: str = "client") -> None:
        self._peer = peer
        self._cred = AuthSys(machinename=hostname).to_auth()

    def mnt(self, dirpath: str) -> bytes:
        """Mount: returns the export's root file handle."""
        disc, body = self._peer.call(
            MOUNT_PROGRAM, MOUNT_VERSION, MOUNTPROC3_MNT,
            MntArgs, MntArgs.make(dirpath=dirpath), MntRes, cred=self._cred,
        )
        if disc != MNT3_OK:
            raise MountDenied(dirpath, disc)
        return body.fhandle

    def dump(self) -> list[tuple[str, str]]:
        entries = self._peer.call(
            MOUNT_PROGRAM, MOUNT_VERSION, MOUNTPROC3_DUMP,
            VOID, None, DumpRes, cred=self._cred,
        )
        return [(entry.hostname, entry.directory) for entry in entries]

    def umnt(self, dirpath: str) -> None:
        self._peer.call(
            MOUNT_PROGRAM, MOUNT_VERSION, MOUNTPROC3_UMNT,
            MntArgs, MntArgs.make(dirpath=dirpath), VOID, cred=self._cred,
        )

    def export(self) -> list[tuple[str, tuple[str, ...]]]:
        entries = self._peer.call(
            MOUNT_PROGRAM, MOUNT_VERSION, MOUNTPROC3_EXPORT,
            VOID, None, ExportRes, cred=self._cred,
        )
        return [(e.dir, tuple(e.groups)) for e in entries]


class MountDenied(Exception):
    """The MOUNT server refused MNT."""

    def __init__(self, dirpath: str, status: int) -> None:
        super().__init__(f"mount of {dirpath!r} denied (status {status})")
        self.dirpath = dirpath
        self.status = status
