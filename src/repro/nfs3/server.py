"""A complete NFS version 3 server over :class:`repro.fs.MemFs`.

This plays the role of the kernel NFS server on the paper's machines: the
SFS read-write server "acts as an NFS client, passing the request to an
NFS server on the same machine", and the plain-NFS baselines in the
benchmarks talk to this server directly.

Credentials come from the RPC layer: AUTH_SYS credentials map directly to
:class:`repro.fs.Cred`; a custom ``cred_mapper`` lets the SFS server
substitute the credentials established by user authentication instead
("The server modifies requests slightly and tags them with appropriate
credentials", paper section 3).
"""

from __future__ import annotations

import time
from typing import Callable

from ..fs.memfs import ANONYMOUS, Cred, FsError, Inode, MemFs
from ..obs.registry import NULL_REGISTRY
from ..rpc.peer import CallContext, Program
from ..rpc.rpcmsg import AUTH_SYS, AuthSys, RpcMsgError
from ..rpc.xdr import Record
from . import const, types
from .handles import BadHandle, PlainHandles

_COOKIE_VERF = b"\x00" * 8

#: Monotonic boot count; each Nfs3Server instance gets a distinct write
#: verifier, as the NFS3 spec requires across server reboots — a client
#: comparing verifiers can detect that un-committed writes may be gone.
_BOOT_COUNTER = 0


def _next_write_verf() -> bytes:
    global _BOOT_COUNTER
    _BOOT_COUNTER += 1
    return b"SFSW" + _BOOT_COUNTER.to_bytes(4, "big")

CredMapper = Callable[[CallContext], Cred]


def authsys_cred_mapper(ctx: CallContext) -> Cred:
    """Map AUTH_SYS RPC credentials to file system credentials."""
    if ctx.cred.flavor != AUTH_SYS:
        return ANONYMOUS
    try:
        parms = AuthSys.from_auth(ctx.cred)
    except RpcMsgError:
        return ANONYMOUS
    return Cred(uid=parms.uid, gid=parms.gid, groups=parms.gids)


class Nfs3Server:
    """Dispatches NFS3 procedures against a MemFs.

    ``mutation_hook(handle)`` fires after any operation that changes the
    object or directory identified by *handle* — the SFS server uses it
    to drive lease-invalidation callbacks.
    """

    def __init__(
        self,
        fs: MemFs,
        handles: PlainHandles | None = None,
        cred_mapper: CredMapper = authsys_cred_mapper,
        mutation_hook: Callable[[bytes], None] | None = None,
        metrics=None,
        clock=None,
    ) -> None:
        self.fs = fs
        self.handles = handles or PlainHandles()
        self._cred_mapper = cred_mapper
        self._mutation_hook = mutation_hook
        #: Per-op counts land in ``nfs3.ops.<op>`` / ``nfs3.errors.<op>``
        #: and latencies in the ``nfs3.op_seconds`` histogram; servers
        #: sharing a registry (client loopback, export relay target)
        #: aggregate into the same names.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._clock = clock
        self._op_seconds = self.metrics.histogram("nfs3.op_seconds")
        #: Changes every boot (every instance): WRITE/COMMIT return it so
        #: clients can tell when a restart may have lost unstable writes.
        self.write_verf = _next_write_verf()
        self.program = self._build_program()

    def attach_queue(self, peer, queue, conn_id=None) -> None:
        """Serve *peer*'s calls through a request queue.

        The plain-NFS baseline registers this server's program directly
        on a client-facing peer; routing that peer through the same
        :class:`~repro.core.admission.RequestQueue` the SFS master uses
        keeps the two configurations comparable under concurrent load.
        """
        queue.bind(peer, conn_id if conn_id is not None else peer)

    # --- handle and attribute helpers --------------------------------------

    def root_handle(self) -> bytes:
        root = self.fs.get_inode(self.fs.root_ino)
        return self._encode_handle(root)

    def _encode_handle(self, inode: Inode) -> bytes:
        return self.handles.encode(self.fs.fsid, inode.ino, inode.generation)

    def _decode_handle(self, handle: bytes) -> Inode:
        try:
            fsid, ino, generation = self.handles.decode(handle)
        except BadHandle:
            raise FsError(const.NFS3ERR_BADHANDLE) from None
        if fsid != self.fs.fsid:
            raise FsError(const.NFS3ERR_BADHANDLE, "wrong fsid")
        inode = self.fs.get_inode(ino)  # raises ERR_STALE if gone
        if inode.generation != generation:
            raise FsError(const.NFS3ERR_STALE, "generation mismatch")
        return inode

    def _fattr(self, inode: Inode) -> Record:
        data_used = (
            inode.data.allocated_bytes
            if inode.data is not None
            else inode.size
        )
        return types.Fattr.make(
            type=inode.ftype,
            mode=inode.mode,
            nlink=inode.nlink,
            uid=inode.uid,
            gid=inode.gid,
            size=inode.size,
            used=data_used,
            rdev=types.SpecData.make(major=inode.rdev[0], minor=inode.rdev[1]),
            fsid=self.fs.fsid,
            fileid=inode.ino,
            atime=self._time(inode.atime),
            mtime=self._time(inode.mtime),
            ctime=self._time(inode.ctime),
        )

    @staticmethod
    def _time(stamp: int) -> Record:
        return types.NfsTime.make(seconds=stamp & 0xFFFFFFFF, nseconds=0)

    def _wcc_attr(self, inode: Inode) -> Record:
        return types.WccAttr.make(
            size=inode.size,
            mtime=self._time(inode.mtime),
            ctime=self._time(inode.ctime),
        )

    def _wcc(self, before: Record | None, inode: Inode | None) -> Record:
        return types.WccData.make(
            before=before,
            after=self._fattr(inode) if inode is not None else None,
        )

    def _notify(self, inode: Inode) -> None:
        if self._mutation_hook is not None:
            self._mutation_hook(self._encode_handle(inode))

    @staticmethod
    def _sattr_fields(attrs: Record) -> dict[str, int | None]:
        def time_field(arm: tuple[int, Record | None]) -> int | None:
            disc, value = arm
            if disc == types.SET_TO_CLIENT_TIME and value is not None:
                return value.seconds
            if disc == types.SET_TO_SERVER_TIME:
                return 0
            return None

        return {
            "mode": attrs.mode,
            "uid": attrs.uid,
            "gid": attrs.gid,
            "size": attrs.size,
            "atime": time_field(attrs.atime),
            "mtime": time_field(attrs.mtime),
        }

    # --- program ------------------------------------------------------------

    def _build_program(self) -> Program:
        program = Program("nfs3", const.NFS3_PROGRAM, const.NFS3_VERSION)
        handlers = {
            const.NFSPROC3_GETATTR: self._getattr,
            const.NFSPROC3_SETATTR: self._setattr,
            const.NFSPROC3_LOOKUP: self._lookup,
            const.NFSPROC3_ACCESS: self._access,
            const.NFSPROC3_READLINK: self._readlink,
            const.NFSPROC3_READ: self._read,
            const.NFSPROC3_WRITE: self._write,
            const.NFSPROC3_CREATE: self._create,
            const.NFSPROC3_MKDIR: self._mkdir,
            const.NFSPROC3_SYMLINK: self._symlink,
            const.NFSPROC3_REMOVE: self._remove,
            const.NFSPROC3_RMDIR: self._rmdir,
            const.NFSPROC3_RENAME: self._rename,
            const.NFSPROC3_LINK: self._link,
            const.NFSPROC3_READDIR: self._readdir,
            const.NFSPROC3_READDIRPLUS: self._readdirplus,
            const.NFSPROC3_FSSTAT: self._fsstat,
            const.NFSPROC3_FSINFO: self._fsinfo,
            const.NFSPROC3_PATHCONF: self._pathconf,
            const.NFSPROC3_COMMIT: self._commit,
            const.NFSPROC3_READV: self._readv,
            const.NFSPROC3_WRITEV: self._writev,
        }
        for proc, handler in handlers.items():
            arg_codec, res_codec = types.PROC_CODECS[proc]
            program.add_proc(
                proc, const.PROC_NAMES[proc], arg_codec, res_codec,
                self._wrap(handler, const.PROC_NAMES[proc]),
            )
        return program

    def _wrap(self, handler, name: str = "?"):
        op_counter = self.metrics.counter(f"nfs3.ops.{name.lower()}")
        err_counter = self.metrics.counter(f"nfs3.errors.{name.lower()}")

        def dispatch(args, ctx: CallContext):
            if not self.metrics.enabled:
                cred = self._cred_mapper(ctx)
                try:
                    return handler(args, cred)
                except FsError as exc:
                    return exc.code, self._failure_body(args, handler)
            op_counter.inc()
            layers = self.metrics.layers
            sim0 = self._clock.now if self._clock is not None else 0.0
            cpu0 = time.perf_counter()
            layers.push("nfs3")
            try:
                cred = self._cred_mapper(ctx)
                try:
                    return handler(args, cred)
                except FsError as exc:
                    err_counter.inc()
                    return exc.code, self._failure_body(args, handler)
            finally:
                layers.pop()
                sim = ((self._clock.now - sim0)
                       if self._clock is not None else 0.0)
                self._op_seconds.observe(time.perf_counter() - cpu0 + sim)
        return dispatch

    def _failure_body(self, args, handler):
        """Best-effort failure arms (attributes omitted)."""
        empty_wcc = types.WccData.make(before=None, after=None)
        failure_shapes = {
            self._getattr: None,
            self._setattr: types.Record(obj_wcc=empty_wcc),
            self._lookup: types.Record(dir_attributes=None),
            self._access: types.Record(obj_attributes=None),
            self._readlink: types.Record(symlink_attributes=None),
            self._read: types.Record(file_attributes=None),
            self._write: types.Record(file_wcc=empty_wcc),
            self._create: types.Record(dir_wcc=empty_wcc),
            self._mkdir: types.Record(dir_wcc=empty_wcc),
            self._symlink: types.Record(dir_wcc=empty_wcc),
            self._remove: types.Record(dir_wcc=empty_wcc),
            self._rmdir: types.Record(dir_wcc=empty_wcc),
            self._rename: types.Record(fromdir_wcc=empty_wcc, todir_wcc=empty_wcc),
            self._link: types.Record(file_attributes=None, linkdir_wcc=empty_wcc),
            self._readdir: types.Record(dir_attributes=None),
            self._readdirplus: types.Record(dir_attributes=None),
            self._fsstat: types.Record(obj_attributes=None),
            self._fsinfo: types.Record(obj_attributes=None),
            self._pathconf: types.Record(obj_attributes=None),
            self._commit: types.Record(file_wcc=empty_wcc),
            self._readv: types.Record(file_attributes=None),
            self._writev: types.Record(file_wcc=empty_wcc),
        }
        return failure_shapes[handler]

    # --- procedures ---------------------------------------------------------

    def _getattr(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.object)
        return const.NFS3_OK, types.Record(obj_attributes=self._fattr(inode))

    def _setattr(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.object)
        before = self._wcc_attr(inode)
        if args.guard is not None and args.guard.seconds != inode.ctime & 0xFFFFFFFF:
            return const.NFS3ERR_NOT_SYNC, types.Record(
                obj_wcc=self._wcc(before, inode)
            )
        self.fs.setattr(inode.ino, cred, **self._sattr_fields(args.new_attributes))
        self._notify(inode)
        return const.NFS3_OK, types.Record(obj_wcc=self._wcc(before, inode))

    def _lookup(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.what.dir)
        child = self.fs.lookup(directory.ino, args.what.name, cred)
        return const.NFS3_OK, types.Record(
            object=self._encode_handle(child),
            obj_attributes=self._fattr(child),
            dir_attributes=self._fattr(directory),
        )

    def _access(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.object)
        granted = self.fs.access(inode.ino, cred, args.access)
        return const.NFS3_OK, types.Record(
            obj_attributes=self._fattr(inode), access=granted
        )

    def _readlink(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.symlink)
        target = self.fs.readlink(inode.ino, cred)
        return const.NFS3_OK, types.Record(
            symlink_attributes=self._fattr(inode), data=target
        )

    def _read(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.file)
        data, eof = self.fs.read(inode.ino, args.offset, args.count, cred)
        return const.NFS3_OK, types.Record(
            file_attributes=self._fattr(inode),
            count=len(data),
            eof=eof,
            data=data,
        )

    def _write(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.file)
        before = self._wcc_attr(inode)
        data = args.data[: args.count]
        written = self.fs.write(
            inode.ino, args.offset, data, cred,
            sync=args.stable != const.UNSTABLE,
        )
        self._notify(inode)
        return const.NFS3_OK, types.Record(
            file_wcc=self._wcc(before, inode),
            count=written,
            committed=args.stable if args.stable != const.UNSTABLE else const.UNSTABLE,
            verf=self.write_verf,
        )

    def _readv(self, args: Record, cred: Cred):
        """Vectored READ (SFS extension): every segment against one file.

        Segments are independent reads; a failure (bad handle, EACCES)
        fails the whole call, matching the all-or-nothing semantics the
        client's readahead machinery expects.
        """
        inode = self._decode_handle(args.file)
        segments = []
        for seg in args.segments:
            data, eof = self.fs.read(inode.ino, seg.offset, seg.count, cred)
            segments.append(
                types.ReadvSegRes.make(count=len(data), eof=eof, data=data)
            )
        return const.NFS3_OK, types.Record(
            file_attributes=self._fattr(inode), segments=segments
        )

    def _writev(self, args: Record, cred: Cred):
        """Vectored WRITE (SFS extension): gathered dirty ranges.

        All segments share one stability level and one wcc/verf result,
        like a single WRITE covering the gathered bytes.
        """
        inode = self._decode_handle(args.file)
        before = self._wcc_attr(inode)
        sync = args.stable != const.UNSTABLE
        total = 0
        for seg in args.segments:
            total += self.fs.write(
                inode.ino, seg.offset, seg.data, cred, sync=sync
            )
        self._notify(inode)
        return const.NFS3_OK, types.Record(
            file_wcc=self._wcc(before, inode),
            count=total,
            committed=args.stable,
            verf=self.write_verf,
        )

    def _create(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.where.dir)
        before = self._wcc_attr(directory)
        how_disc, how_body = args.how
        exclusive = how_disc == const.EXCLUSIVE
        inode = self.fs.create(directory.ino, args.where.name, cred,
                               exclusive=exclusive)
        if not exclusive and how_body is not None:
            fields = self._sattr_fields(how_body)
            if any(value is not None for value in fields.values()):
                self.fs.setattr(inode.ino, cred, **fields)
        self._notify(directory)
        return const.NFS3_OK, types.Record(
            obj=self._encode_handle(inode),
            obj_attributes=self._fattr(inode),
            dir_wcc=self._wcc(before, directory),
        )

    def _mkdir(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.where.dir)
        before = self._wcc_attr(directory)
        fields = self._sattr_fields(args.attributes)
        mode = fields["mode"] if fields["mode"] is not None else 0o755
        inode = self.fs.mkdir(directory.ino, args.where.name, cred, mode)
        self._notify(directory)
        return const.NFS3_OK, types.Record(
            obj=self._encode_handle(inode),
            obj_attributes=self._fattr(inode),
            dir_wcc=self._wcc(before, directory),
        )

    def _symlink(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.where.dir)
        before = self._wcc_attr(directory)
        inode = self.fs.symlink(
            directory.ino, args.where.name, args.symlink.symlink_data, cred
        )
        self._notify(directory)
        return const.NFS3_OK, types.Record(
            obj=self._encode_handle(inode),
            obj_attributes=self._fattr(inode),
            dir_wcc=self._wcc(before, directory),
        )

    def _remove(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.object.dir)
        before = self._wcc_attr(directory)
        self.fs.remove(directory.ino, args.object.name, cred)
        self._notify(directory)
        return const.NFS3_OK, types.Record(dir_wcc=self._wcc(before, directory))

    def _rmdir(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.object.dir)
        before = self._wcc_attr(directory)
        self.fs.rmdir(directory.ino, args.object.name, cred)
        self._notify(directory)
        return const.NFS3_OK, types.Record(dir_wcc=self._wcc(before, directory))

    def _rename(self, args: Record, cred: Cred):
        from_dir = self._decode_handle(args.from_.dir)
        to_dir = self._decode_handle(args.to.dir)
        before_from = self._wcc_attr(from_dir)
        before_to = self._wcc_attr(to_dir)
        self.fs.rename(from_dir.ino, args.from_.name, to_dir.ino, args.to.name, cred)
        self._notify(from_dir)
        self._notify(to_dir)
        return const.NFS3_OK, types.Record(
            fromdir_wcc=self._wcc(before_from, from_dir),
            todir_wcc=self._wcc(before_to, to_dir),
        )

    def _link(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.file)
        directory = self._decode_handle(args.link.dir)
        before = self._wcc_attr(directory)
        self.fs.link(inode.ino, directory.ino, args.link.name, cred)
        self._notify(directory)
        self._notify(inode)
        return const.NFS3_OK, types.Record(
            file_attributes=self._fattr(inode),
            linkdir_wcc=self._wcc(before, directory),
        )

    def _readdir(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.dir)
        entries, eof = self.fs.readdir(
            directory.ino, cred, cookie=args.cookie, count=args.count
        )
        records = [
            types.DirEntry.make(fileid=ino, name=name, cookie=cookie)
            for name, ino, cookie in entries
        ]
        return const.NFS3_OK, types.Record(
            dir_attributes=self._fattr(directory),
            cookieverf=_COOKIE_VERF,
            entries=records,
            eof=eof,
        )

    def _readdirplus(self, args: Record, cred: Cred):
        directory = self._decode_handle(args.dir)
        entries, eof = self.fs.readdir(
            directory.ino, cred, cookie=args.cookie, count=args.dircount
        )
        records = []
        for name, ino, cookie in entries:
            child = self.fs.get_inode(ino)
            records.append(
                types.DirEntryPlus.make(
                    fileid=ino,
                    name=name,
                    cookie=cookie,
                    name_attributes=self._fattr(child),
                    name_handle=self._encode_handle(child),
                )
            )
        return const.NFS3_OK, types.Record(
            dir_attributes=self._fattr(directory),
            cookieverf=_COOKIE_VERF,
            entries=records,
            eof=eof,
        )

    def _fsstat(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.fsroot)
        stats = self.fs.statfs()
        return const.NFS3_OK, types.Record(
            obj_attributes=self._fattr(inode), invarsec=0, **stats
        )

    def _fsinfo(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.fsroot)
        return const.NFS3_OK, types.Record(
            obj_attributes=self._fattr(inode),
            rtmax=65536, rtpref=8192, rtmult=512,
            wtmax=65536, wtpref=8192, wtmult=512,
            dtpref=8192,
            maxfilesize=1 << 62,
            time_delta=types.NfsTime.make(seconds=0, nseconds=1),
            properties=(
                const.FSF3_LINK | const.FSF3_SYMLINK
                | const.FSF3_HOMOGENEOUS | const.FSF3_CANSETTIME
            ),
        )

    def _pathconf(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.object)
        return const.NFS3_OK, types.Record(
            obj_attributes=self._fattr(inode),
            linkmax=32767, name_max=255,
            no_trunc=True, chown_restricted=True,
            case_insensitive=False, case_preserving=True,
        )

    def _commit(self, args: Record, cred: Cred):
        inode = self._decode_handle(args.file)
        before = self._wcc_attr(inode)
        self.fs.commit(inode.ino)
        return const.NFS3_OK, types.Record(
            file_wcc=self._wcc(before, inode), verf=self.write_verf
        )
