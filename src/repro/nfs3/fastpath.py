"""Flat fast-path marshals for the hot NFS3 types.

The generic codec layer in :mod:`repro.rpc.xdr` dispatches per field —
correct for every type, but each GETATTR/READ/WRITE/LOOKUP message pays
dozens of method calls for what is really one fixed byte layout plus a
couple of length-prefixed blobs.  Because each NFS operation crosses
three RPC hops in the SFS configuration (kernel→sfscd, sfscd→sfssd,
sfssd→server), that dispatch cost is paid three times per op and shows
up directly in Fig. 5's rpc attribution.

This module installs precompiled flat marshal functions onto the hot
codec singletons in :mod:`repro.nfs3.types` (instance attributes read by
:meth:`repro.rpc.xdr.Codec.pack`/``unpack`` when
:data:`repro.crypto.backend.use_fast_marshal` is on).  Each function
handles only the *canonical* shape — Record values with in-range fields
on the way in, well-formed zero-padded XDR on the way out — and returns
:data:`repro.rpc.xdr.DECLINED` for anything else, so the field-by-field
codec remains the authority for unusual values and for error reporting
(a malformed buffer declines here, then the codec raises its usual
:class:`~repro.rpc.xdr.XdrError`).  Within the canonical shapes the
output is bit-identical to the codec path, which the golden wire-vector
suite asserts for every procedure covered here.

XDR's strictness rules are enforced, not relaxed: nonzero bytes in
opaque/string padding and trailing garbage after the last field both
decline to the codec, which rejects them.
"""

from __future__ import annotations

import struct
from typing import Any

from ..rpc.xdr import DECLINED, Record
from . import const, types

_U32 = struct.Struct(">I")
_QI = struct.Struct(">QI")          # offset + count (READ/WRITE/COMMIT args)
# fattr3 flattened: type..gid, size, used, rdev.major/minor, fsid,
# fileid, then atime/mtime/ctime as (seconds, nseconds) pairs.
_FATTR = struct.Struct(">5I2Q2I2Q6I")
# wcc_attr flattened: size, mtime, ctime.
_WCC_ATTR = struct.Struct(">Q4I")

_OK = const.NFS3_OK
_PAD = (b"", b"\x00", b"\x00\x00", b"\x00\x00\x00")
_FHSIZE = const.NFS3_FHSIZE


def _bytes_at(data: Any, start: int, end: int) -> bytes:
    chunk = data[start:end]
    return chunk if chunk.__class__ is bytes else bytes(chunk)


# ---------------------------------------------------------------------------
# Shared field helpers.  Packers append to a bytearray and raise on any
# non-canonical shape (the caller catches and declines); unpackers take
# (data, offset), return (value, new_offset), and raise likewise.
# ---------------------------------------------------------------------------

def _put_opaque(out: bytearray, value: bytes, maximum: int) -> None:
    if value.__class__ is not bytes or len(value) > maximum:
        raise ValueError
    out += _U32.pack(len(value))
    out += value
    out += _PAD[-len(value) % 4]


def _get_opaque(data: Any, off: int, maximum: int) -> tuple[bytes, int]:
    (length,) = _U32.unpack_from(data, off)
    if length > maximum:
        raise ValueError
    start = off + 4
    end = start + length
    stop = end + (-length % 4)
    if stop > len(data):
        raise ValueError
    for k in range(end, stop):
        if data[k]:
            raise ValueError
    return _bytes_at(data, start, end), stop


def _put_fattr(out: bytearray, a: Any) -> None:
    rdev = a.rdev
    atime = a.atime
    mtime = a.mtime
    ctime = a.ctime
    out += _FATTR.pack(
        a.type, a.mode, a.nlink, a.uid, a.gid, a.size, a.used,
        rdev.major, rdev.minor, a.fsid, a.fileid,
        atime.seconds, atime.nseconds, mtime.seconds, mtime.nseconds,
        ctime.seconds, ctime.nseconds,
    )


def _get_fattr(data: Any, off: int) -> tuple[Record, int]:
    (ftype, mode, nlink, uid, gid, size, used, major, minor, fsid,
     fileid, at_s, at_ns, mt_s, mt_ns, ct_s, ct_ns) = _FATTR.unpack_from(
        data, off)
    return Record(
        type=ftype, mode=mode, nlink=nlink, uid=uid, gid=gid,
        size=size, used=used, rdev=Record(major=major, minor=minor),
        fsid=fsid, fileid=fileid,
        atime=Record(seconds=at_s, nseconds=at_ns),
        mtime=Record(seconds=mt_s, nseconds=mt_ns),
        ctime=Record(seconds=ct_s, nseconds=ct_ns),
    ), off + _FATTR.size


def _put_post_op_attr(out: bytearray, attr: Any) -> None:
    if attr is None:
        out += _U32.pack(0)
    else:
        out += _U32.pack(1)
        _put_fattr(out, attr)


def _get_post_op_attr(data: Any, off: int) -> tuple[Record | None, int]:
    (present,) = _U32.unpack_from(data, off)
    if present == 0:
        return None, off + 4
    if present != 1:
        raise ValueError
    return _get_fattr(data, off + 4)


def _put_wcc_data(out: bytearray, wcc: Any) -> None:
    before = wcc.before
    if before is None:
        out += _U32.pack(0)
    else:
        mtime = before.mtime
        ctime = before.ctime
        out += _U32.pack(1)
        out += _WCC_ATTR.pack(before.size, mtime.seconds, mtime.nseconds,
                              ctime.seconds, ctime.nseconds)
    _put_post_op_attr(out, wcc.after)


def _get_wcc_data(data: Any, off: int) -> tuple[Record, int]:
    (present,) = _U32.unpack_from(data, off)
    off += 4
    if present == 0:
        before = None
    elif present == 1:
        size, mt_s, mt_ns, ct_s, ct_ns = _WCC_ATTR.unpack_from(data, off)
        before = Record(size=size,
                        mtime=Record(seconds=mt_s, nseconds=mt_ns),
                        ctime=Record(seconds=ct_s, nseconds=ct_ns))
        off += _WCC_ATTR.size
    else:
        raise ValueError
    after, off = _get_post_op_attr(data, off)
    return Record(before=before, after=after), off


# ---------------------------------------------------------------------------
# GETATTR
# ---------------------------------------------------------------------------

def _pack_getattr_args(value: Any) -> Any:
    try:
        out = bytearray()
        _put_opaque(out, value.object, _FHSIZE)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_getattr_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        if off != len(data):
            return DECLINED
        return Record(object=fh)
    except Exception:
        return DECLINED


def _pack_getattr_res(value: Any) -> Any:
    try:
        disc, body = value
        if disc != _OK:
            if body is not None:
                return DECLINED
            return _U32.pack(disc)
        out = bytearray(_U32.pack(_OK))
        _put_fattr(out, body.obj_attributes)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_getattr_res(data: Any) -> Any:
    try:
        (disc,) = _U32.unpack_from(data, 0)
        if disc != _OK:
            if len(data) != 4:
                return DECLINED
            return disc, None
        attrs, off = _get_fattr(data, 4)
        if off != len(data):
            return DECLINED
        return _OK, Record(obj_attributes=attrs)
    except Exception:
        return DECLINED


# ---------------------------------------------------------------------------
# LOOKUP
# ---------------------------------------------------------------------------

def _pack_lookup_args(value: Any) -> Any:
    try:
        what = value.what
        name = what.name
        out = bytearray()
        _put_opaque(out, what.dir, _FHSIZE)
        _put_opaque(out, name.encode(), 0xFFFFFFFF)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_lookup_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        raw, off = _get_opaque(data, off, 0xFFFFFFFF)
        if off != len(data):
            return DECLINED
        return Record(what=Record(dir=fh, name=raw.decode()))
    except Exception:
        return DECLINED


def _pack_lookup_res(value: Any) -> Any:
    try:
        disc, body = value
        out = bytearray(_U32.pack(disc))
        if disc == _OK:
            _put_opaque(out, body.object, _FHSIZE)
            _put_post_op_attr(out, body.obj_attributes)
            _put_post_op_attr(out, body.dir_attributes)
        else:
            _put_post_op_attr(out, body.dir_attributes)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_lookup_res(data: Any) -> Any:
    try:
        (disc,) = _U32.unpack_from(data, 0)
        if disc == _OK:
            fh, off = _get_opaque(data, 4, _FHSIZE)
            obj_attrs, off = _get_post_op_attr(data, off)
            dir_attrs, off = _get_post_op_attr(data, off)
            if off != len(data):
                return DECLINED
            return _OK, Record(object=fh, obj_attributes=obj_attrs,
                               dir_attributes=dir_attrs)
        dir_attrs, off = _get_post_op_attr(data, 4)
        if off != len(data):
            return DECLINED
        return disc, Record(dir_attributes=dir_attrs)
    except Exception:
        return DECLINED


# ---------------------------------------------------------------------------
# READ
# ---------------------------------------------------------------------------

def _pack_read_args(value: Any) -> Any:
    try:
        out = bytearray()
        _put_opaque(out, value.file, _FHSIZE)
        out += _QI.pack(value.offset, value.count)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_read_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        if off + 12 != len(data):
            return DECLINED
        offset, count = _QI.unpack_from(data, off)
        return Record(file=fh, offset=offset, count=count)
    except Exception:
        return DECLINED


def _pack_read_res(value: Any) -> Any:
    try:
        disc, body = value
        out = bytearray(_U32.pack(disc))
        if disc == _OK:
            _put_post_op_attr(out, body.file_attributes)
            out += _U32.pack(body.count)
            out += _U32.pack(1 if body.eof else 0)
            _put_opaque(out, body.data, 0xFFFFFFFF)
        else:
            _put_post_op_attr(out, body.file_attributes)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_read_res(data: Any) -> Any:
    try:
        (disc,) = _U32.unpack_from(data, 0)
        if disc == _OK:
            attrs, off = _get_post_op_attr(data, 4)
            count, = _U32.unpack_from(data, off)
            eof_raw, = _U32.unpack_from(data, off + 4)
            if eof_raw > 1:
                return DECLINED
            payload, off = _get_opaque(data, off + 8, 0xFFFFFFFF)
            if off != len(data):
                return DECLINED
            return _OK, Record(file_attributes=attrs, count=count,
                               eof=bool(eof_raw), data=payload)
        attrs, off = _get_post_op_attr(data, 4)
        if off != len(data):
            return DECLINED
        return disc, Record(file_attributes=attrs)
    except Exception:
        return DECLINED


# ---------------------------------------------------------------------------
# WRITE
# ---------------------------------------------------------------------------

_STABLE_VALUES = (const.UNSTABLE, const.DATA_SYNC, const.FILE_SYNC)


def _pack_write_args(value: Any) -> Any:
    try:
        if value.stable not in _STABLE_VALUES:
            return DECLINED
        out = bytearray()
        _put_opaque(out, value.file, _FHSIZE)
        out += _QI.pack(value.offset, value.count)
        out += _U32.pack(value.stable)
        _put_opaque(out, value.data, 0xFFFFFFFF)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_write_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        offset, count = _QI.unpack_from(data, off)
        stable, = _U32.unpack_from(data, off + 12)
        if stable not in _STABLE_VALUES:
            return DECLINED
        payload, off = _get_opaque(data, off + 16, 0xFFFFFFFF)
        if off != len(data):
            return DECLINED
        return Record(file=fh, offset=offset, count=count, stable=stable,
                      data=payload)
    except Exception:
        return DECLINED


def _pack_write_res(value: Any) -> Any:
    try:
        disc, body = value
        out = bytearray(_U32.pack(disc))
        if disc == _OK:
            _put_wcc_data(out, body.file_wcc)
            out += _U32.pack(body.count)
            out += _U32.pack(body.committed)
            verf = body.verf
            if verf.__class__ is not bytes or len(verf) != 8:
                return DECLINED
            out += verf
        else:
            _put_wcc_data(out, body.file_wcc)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_write_res(data: Any) -> Any:
    try:
        (disc,) = _U32.unpack_from(data, 0)
        if disc == _OK:
            wcc, off = _get_wcc_data(data, 4)
            count, = _U32.unpack_from(data, off)
            committed, = _U32.unpack_from(data, off + 4)
            end = off + 16
            if end != len(data):
                return DECLINED
            verf = _bytes_at(data, off + 8, end)
            return _OK, Record(file_wcc=wcc, count=count,
                               committed=committed, verf=verf)
        wcc, off = _get_wcc_data(data, 4)
        if off != len(data):
            return DECLINED
        return disc, Record(file_wcc=wcc)
    except Exception:
        return DECLINED


# ---------------------------------------------------------------------------
# READV / WRITEV (SFS extension).  Segment chains use the XDR
# optional-data encoding: (bool, element)* then a false bool.
# ---------------------------------------------------------------------------

def _pack_readv_args(value: Any) -> Any:
    try:
        out = bytearray()
        _put_opaque(out, value.file, _FHSIZE)
        for seg in value.segments:
            out += _U32.pack(1)
            out += _QI.pack(seg.offset, seg.count)
        out += _U32.pack(0)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_readv_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        segments = []
        while True:
            more, = _U32.unpack_from(data, off)
            off += 4
            if more == 0:
                break
            if more != 1:
                return DECLINED
            offset, count = _QI.unpack_from(data, off)
            off += 12
            segments.append(Record(offset=offset, count=count))
        if off != len(data):
            return DECLINED
        return Record(file=fh, segments=segments)
    except Exception:
        return DECLINED


def _pack_readv_res(value: Any) -> Any:
    try:
        disc, body = value
        out = bytearray(_U32.pack(disc))
        _put_post_op_attr(out, body.file_attributes)
        if disc == _OK:
            for seg in body.segments:
                out += _U32.pack(1)
                out += _U32.pack(seg.count)
                out += _U32.pack(1 if seg.eof else 0)
                _put_opaque(out, seg.data, 0xFFFFFFFF)
            out += _U32.pack(0)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_readv_res(data: Any) -> Any:
    try:
        (disc,) = _U32.unpack_from(data, 0)
        attrs, off = _get_post_op_attr(data, 4)
        if disc != _OK:
            if off != len(data):
                return DECLINED
            return disc, Record(file_attributes=attrs)
        segments = []
        while True:
            more, = _U32.unpack_from(data, off)
            off += 4
            if more == 0:
                break
            if more != 1:
                return DECLINED
            count, = _U32.unpack_from(data, off)
            eof_raw, = _U32.unpack_from(data, off + 4)
            if eof_raw > 1:
                return DECLINED
            payload, off = _get_opaque(data, off + 8, 0xFFFFFFFF)
            segments.append(Record(count=count, eof=bool(eof_raw),
                                   data=payload))
        if off != len(data):
            return DECLINED
        return _OK, Record(file_attributes=attrs, segments=segments)
    except Exception:
        return DECLINED


def _pack_writev_args(value: Any) -> Any:
    try:
        if value.stable not in _STABLE_VALUES:
            return DECLINED
        out = bytearray()
        _put_opaque(out, value.file, _FHSIZE)
        out += _U32.pack(value.stable)
        for seg in value.segments:
            out += _U32.pack(1)
            out += struct.pack(">Q", seg.offset)
            _put_opaque(out, seg.data, 0xFFFFFFFF)
        out += _U32.pack(0)
        return bytes(out)
    except Exception:
        return DECLINED


def _unpack_writev_args(data: Any) -> Any:
    try:
        fh, off = _get_opaque(data, 0, _FHSIZE)
        stable, = _U32.unpack_from(data, off)
        if stable not in _STABLE_VALUES:
            return DECLINED
        off += 4
        segments = []
        while True:
            more, = _U32.unpack_from(data, off)
            off += 4
            if more == 0:
                break
            if more != 1:
                return DECLINED
            offset, = struct.unpack_from(">Q", data, off)
            payload, off = _get_opaque(data, off + 8, 0xFFFFFFFF)
            segments.append(Record(offset=offset, data=payload))
        if off != len(data):
            return DECLINED
        return Record(file=fh, stable=stable, segments=segments)
    except Exception:
        return DECLINED


#: codec singleton -> (fast_pack, fast_unpack); module import installs
#: these as instance attributes, read by Codec.pack/unpack.
_INSTALL = (
    (types.GetAttrArgs, _pack_getattr_args, _unpack_getattr_args),
    (types.GetAttrRes, _pack_getattr_res, _unpack_getattr_res),
    (types.LookupArgs, _pack_lookup_args, _unpack_lookup_args),
    (types.LookupRes, _pack_lookup_res, _unpack_lookup_res),
    (types.ReadArgs, _pack_read_args, _unpack_read_args),
    (types.ReadRes, _pack_read_res, _unpack_read_res),
    (types.WriteArgs, _pack_write_args, _unpack_write_args),
    (types.WriteRes, _pack_write_res, _unpack_write_res),
    (types.ReadvArgs, _pack_readv_args, _unpack_readv_args),
    (types.ReadvRes, _pack_readv_res, _unpack_readv_res),
    (types.WritevArgs, _pack_writev_args, _unpack_writev_args),
    # WRITEV3res is bit-compatible with WRITE3res; reuse those marshals.
    (types.WritevRes, _pack_write_res, _unpack_write_res),
)


def install() -> None:
    """Attach the flat marshals to the hot codec singletons."""
    for codec, fast_pack, fast_unpack in _INSTALL:
        codec.fast_pack = fast_pack
        codec.fast_unpack = fast_unpack


def uninstall() -> None:
    """Detach the flat marshals (restores pure codec dispatch)."""
    for codec, _fast_pack, _fast_unpack in _INSTALL:
        codec.fast_pack = None
        codec.fast_unpack = None


install()
