"""NFS version 3 (RFC 1813): types, server over MemFs, typed client."""

from . import const, fastpath, types
from .client import Nfs3Client, Nfs3Error
from .handles import BadHandle, EncryptedHandles, PlainHandles
from .server import Nfs3Server, authsys_cred_mapper

__all__ = [
    "BadHandle",
    "EncryptedHandles",
    "Nfs3Client",
    "Nfs3Error",
    "Nfs3Server",
    "PlainHandles",
    "authsys_cred_mapper",
    "const",
    "fastpath",
    "types",
]
