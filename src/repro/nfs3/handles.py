"""NFS file handle construction, plain and SFS-hardened.

NFS identifies files by server-chosen opaque handles which "must remain
secret; an attacker who learns the file handle of even a single directory
can access any part of the file system as any user."  SFS servers, in
contrast, hand their handles to anonymous clients, so they generate
handles "by adding redundancy to NFS handles and encrypting them in CBC
mode with a 20-byte Blowfish key" (paper section 3.3).

Both schemes live here:

* :class:`PlainHandles` — the guessable struct-packed handles a vanilla
  NFS server uses (fsid, inode, generation).
* :class:`EncryptedHandles` — SFS's scheme: 8 bytes of SHA-1 redundancy
  appended, then Blowfish-CBC under a per-server 20-byte key.  Tampered
  or guessed handles fail the redundancy check and surface as
  NFS3ERR_BADHANDLE.
"""

from __future__ import annotations

import struct

from ..crypto.blowfish import Blowfish
from ..crypto.sha1 import sha1
from ..crypto.util import constant_time_eq


class BadHandle(Exception):
    """The handle failed to decode (stale, corrupt, or forged)."""


class PlainHandles:
    """Transparent handles: fsid + inode + generation, struct-packed."""

    size = 16

    def encode(self, fsid: int, ino: int, generation: int) -> bytes:
        return struct.pack(">IQI", fsid & 0xFFFFFFFF, ino, generation)

    def decode(self, handle: bytes) -> tuple[int, int, int]:
        if len(handle) != self.size:
            raise BadHandle(f"handle must be {self.size} bytes")
        fsid, ino, generation = struct.unpack(">IQI", handle)
        return fsid, ino, generation


_REDUNDANCY = 8


class EncryptedHandles:
    """SFS handles: plain handle + redundancy, Blowfish-CBC encrypted.

    The IV is derived from the key, keeping handles deterministic so a
    client can compare handles for equality; secrecy of the NFS handle
    inside comes from the cipher, integrity from the redundancy bytes.
    """

    size = 24

    def __init__(self, key: bytes) -> None:
        if len(key) != 20:
            raise ValueError("SFS handle keys are 20 bytes")
        self._cipher = Blowfish(key)
        self._iv = sha1(b"SFS-handle-iv" + key)[:8]
        self._inner = PlainHandles()
        #: Public digest of the (secret) handle key.  The key is derived
        #: deterministically from the server's durable private key, so
        #: handles clients cached before a crash must still decode after
        #: a restart; the restart path asserts fingerprint equality to
        #: pin that invariant without exposing key bytes.
        self.fingerprint = sha1(b"SFS-handle-fingerprint" + key)[:8]

    def encode(self, fsid: int, ino: int, generation: int) -> bytes:
        plain = self._inner.encode(fsid, ino, generation)
        redundancy = sha1(b"SFS-handle-check" + plain)[:_REDUNDANCY]
        return self._cipher.encrypt_cbc(plain + redundancy, self._iv)

    def decode(self, handle: bytes) -> tuple[int, int, int]:
        if len(handle) != self.size:
            raise BadHandle(f"handle must be {self.size} bytes")
        decrypted = self._cipher.decrypt_cbc(handle, self._iv)
        plain, redundancy = decrypted[:16], decrypted[16:]
        expected = sha1(b"SFS-handle-check" + plain)[:_REDUNDANCY]
        if not constant_time_eq(redundancy, expected):
            raise BadHandle("handle redundancy check failed")
        return self._inner.decode(plain)
