"""NFS version 3 data types as XDR codecs (RFC 1813 section 2.5/3.3).

Every procedure's argument and result structure is defined here with the
codec combinators from :mod:`repro.rpc.xdr`.  Results follow the RFC's
discriminated-union convention: ``(NFS3_OK, ok_body)`` or
``(errstat, fail_body)``.

XDR linked lists (READDIR entries) are handled by :class:`LinkedList`,
which encodes a Python list as the bool-chained representation the RFC
specifies.
"""

from __future__ import annotations

from typing import Any

from ..rpc.xdr import (
    Array,
    Bool,
    Codec,
    Enum,
    FixedOpaque,
    Opaque,
    Optional,
    Packer,
    Record,
    String,
    Struct,
    UHyper,
    UInt32,
    Union,
    Unpacker,
    VOID,
)
from . import const


class LinkedList(Codec):
    """XDR optional-chained list: ``*entry`` where entry ends with next."""

    def __init__(self, element: Struct) -> None:
        self.element = element

    def encode(self, packer: Packer, value: list[Any]) -> None:
        for item in value:
            packer.pack_bool(True)
            self.element.encode(packer, item)
        packer.pack_bool(False)

    def decode(self, unpacker: Unpacker) -> list[Any]:
        out = []
        while unpacker.unpack_bool():
            out.append(self.element.decode(unpacker))
        return out


NfsFh = Opaque(const.NFS3_FHSIZE)
Filename = String()
NfsPath = String()
Cookieverf = FixedOpaque(const.NFS3_COOKIEVERFSIZE)
Createverf = FixedOpaque(const.NFS3_CREATEVERFSIZE)
Writeverf = FixedOpaque(const.NFS3_WRITEVERFSIZE)

NfsTime = Struct("nfstime3", [("seconds", UInt32), ("nseconds", UInt32)])

SpecData = Struct("specdata3", [("major", UInt32), ("minor", UInt32)])

Fattr = Struct(
    "fattr3",
    [
        ("type", UInt32),
        ("mode", UInt32),
        ("nlink", UInt32),
        ("uid", UInt32),
        ("gid", UInt32),
        ("size", UHyper),
        ("used", UHyper),
        ("rdev", SpecData),
        ("fsid", UHyper),
        ("fileid", UHyper),
        ("atime", NfsTime),
        ("mtime", NfsTime),
        ("ctime", NfsTime),
    ],
)

PostOpAttr = Optional(Fattr)

WccAttr = Struct(
    "wcc_attr",
    [("size", UHyper), ("mtime", NfsTime), ("ctime", NfsTime)],
)

PreOpAttr = Optional(WccAttr)

WccData = Struct("wcc_data", [("before", PreOpAttr), ("after", PostOpAttr)])

PostOpFh = Optional(NfsFh)

# sattr3: six independently-optional fields; atime/mtime use the
# three-way time union (DONT_CHANGE / SET_TO_SERVER_TIME / SET_TO_CLIENT_TIME).
DONT_CHANGE = 0
SET_TO_SERVER_TIME = 1
SET_TO_CLIENT_TIME = 2

SetTime = Union(
    "set_time",
    {DONT_CHANGE: None, SET_TO_SERVER_TIME: None, SET_TO_CLIENT_TIME: NfsTime},
)

Sattr = Struct(
    "sattr3",
    [
        ("mode", Optional(UInt32)),
        ("uid", Optional(UInt32)),
        ("gid", Optional(UInt32)),
        ("size", Optional(UHyper)),
        ("atime", SetTime),
        ("mtime", SetTime),
    ],
)


def sattr(mode: int | None = None, uid: int | None = None, gid: int | None = None,
          size: int | None = None, atime: int | None = None,
          mtime: int | None = None) -> Record:
    """Convenience builder for sattr3 records."""
    def time_arm(value: int | None):
        if value is None:
            return (DONT_CHANGE, None)
        return (SET_TO_CLIENT_TIME, NfsTime.make(seconds=value, nseconds=0))

    return Sattr.make(
        mode=mode, uid=uid, gid=gid, size=size,
        atime=time_arm(atime), mtime=time_arm(mtime),
    )


DirOpArgs = Struct("diropargs3", [("dir", NfsFh), ("name", Filename)])


def _result(name: str, ok: Codec | None, fail: Codec | None) -> Union:
    """Standard NFS3 result union: OK arm + default failure arm."""
    return Union(name, {const.NFS3_OK: ok}, default=fail)


# GETATTR
GetAttrArgs = Struct("GETATTR3args", [("object", NfsFh)])
GetAttrRes = _result("GETATTR3res", Struct("GETATTR3resok", [("obj_attributes", Fattr)]), None)

# SETATTR
SetAttrArgs = Struct(
    "SETATTR3args",
    [
        ("object", NfsFh),
        ("new_attributes", Sattr),
        ("guard", Optional(NfsTime)),
    ],
)
SetAttrRes = _result(
    "SETATTR3res",
    Struct("SETATTR3resok", [("obj_wcc", WccData)]),
    Struct("SETATTR3resfail", [("obj_wcc", WccData)]),
)

# LOOKUP
LookupArgs = Struct("LOOKUP3args", [("what", DirOpArgs)])
LookupRes = _result(
    "LOOKUP3res",
    Struct(
        "LOOKUP3resok",
        [
            ("object", NfsFh),
            ("obj_attributes", PostOpAttr),
            ("dir_attributes", PostOpAttr),
        ],
    ),
    Struct("LOOKUP3resfail", [("dir_attributes", PostOpAttr)]),
)

# ACCESS
AccessArgs = Struct("ACCESS3args", [("object", NfsFh), ("access", UInt32)])
AccessRes = _result(
    "ACCESS3res",
    Struct("ACCESS3resok", [("obj_attributes", PostOpAttr), ("access", UInt32)]),
    Struct("ACCESS3resfail", [("obj_attributes", PostOpAttr)]),
)

# READLINK
ReadlinkArgs = Struct("READLINK3args", [("symlink", NfsFh)])
ReadlinkRes = _result(
    "READLINK3res",
    Struct(
        "READLINK3resok",
        [("symlink_attributes", PostOpAttr), ("data", NfsPath)],
    ),
    Struct("READLINK3resfail", [("symlink_attributes", PostOpAttr)]),
)

# READ
ReadArgs = Struct(
    "READ3args", [("file", NfsFh), ("offset", UHyper), ("count", UInt32)]
)
ReadRes = _result(
    "READ3res",
    Struct(
        "READ3resok",
        [
            ("file_attributes", PostOpAttr),
            ("count", UInt32),
            ("eof", Bool),
            ("data", Opaque()),
        ],
    ),
    Struct("READ3resfail", [("file_attributes", PostOpAttr)]),
)

# WRITE
WriteArgs = Struct(
    "WRITE3args",
    [
        ("file", NfsFh),
        ("offset", UHyper),
        ("count", UInt32),
        ("stable", Enum(const.UNSTABLE, const.DATA_SYNC, const.FILE_SYNC)),
        ("data", Opaque()),
    ],
)
WriteRes = _result(
    "WRITE3res",
    Struct(
        "WRITE3resok",
        [
            ("file_wcc", WccData),
            ("count", UInt32),
            ("committed", UInt32),
            ("verf", Writeverf),
        ],
    ),
    Struct("WRITE3resfail", [("file_wcc", WccData)]),
)

# CREATE
CreateHow = Union(
    "createhow3",
    {
        const.UNCHECKED: Sattr,
        const.GUARDED: Sattr,
        const.EXCLUSIVE: Createverf,
    },
)
CreateArgs = Struct("CREATE3args", [("where", DirOpArgs), ("how", CreateHow)])
CreateRes = _result(
    "CREATE3res",
    Struct(
        "CREATE3resok",
        [("obj", PostOpFh), ("obj_attributes", PostOpAttr), ("dir_wcc", WccData)],
    ),
    Struct("CREATE3resfail", [("dir_wcc", WccData)]),
)

# MKDIR
MkdirArgs = Struct("MKDIR3args", [("where", DirOpArgs), ("attributes", Sattr)])
MkdirRes = CreateRes  # same shape

# SYMLINK
SymlinkData = Struct(
    "symlinkdata3", [("symlink_attributes", Sattr), ("symlink_data", NfsPath)]
)
SymlinkArgs = Struct("SYMLINK3args", [("where", DirOpArgs), ("symlink", SymlinkData)])
SymlinkRes = CreateRes  # same shape

# REMOVE / RMDIR
RemoveArgs = Struct("REMOVE3args", [("object", DirOpArgs)])
RemoveRes = _result(
    "REMOVE3res",
    Struct("REMOVE3resok", [("dir_wcc", WccData)]),
    Struct("REMOVE3resfail", [("dir_wcc", WccData)]),
)

# RENAME
RenameArgs = Struct("RENAME3args", [("from_", DirOpArgs), ("to", DirOpArgs)])
RenameRes = _result(
    "RENAME3res",
    Struct("RENAME3resok", [("fromdir_wcc", WccData), ("todir_wcc", WccData)]),
    Struct("RENAME3resfail", [("fromdir_wcc", WccData), ("todir_wcc", WccData)]),
)

# LINK
LinkArgs = Struct("LINK3args", [("file", NfsFh), ("link", DirOpArgs)])
LinkRes = _result(
    "LINK3res",
    Struct("LINK3resok", [("file_attributes", PostOpAttr), ("linkdir_wcc", WccData)]),
    Struct("LINK3resfail", [("file_attributes", PostOpAttr), ("linkdir_wcc", WccData)]),
)

# READDIR
ReaddirArgs = Struct(
    "READDIR3args",
    [
        ("dir", NfsFh),
        ("cookie", UHyper),
        ("cookieverf", Cookieverf),
        ("count", UInt32),
    ],
)
DirEntry = Struct(
    "entry3", [("fileid", UHyper), ("name", Filename), ("cookie", UHyper)]
)
ReaddirRes = _result(
    "READDIR3res",
    Struct(
        "READDIR3resok",
        [
            ("dir_attributes", PostOpAttr),
            ("cookieverf", Cookieverf),
            ("entries", LinkedList(DirEntry)),
            ("eof", Bool),
        ],
    ),
    Struct("READDIR3resfail", [("dir_attributes", PostOpAttr)]),
)

# READDIRPLUS
ReaddirPlusArgs = Struct(
    "READDIRPLUS3args",
    [
        ("dir", NfsFh),
        ("cookie", UHyper),
        ("cookieverf", Cookieverf),
        ("dircount", UInt32),
        ("maxcount", UInt32),
    ],
)
DirEntryPlus = Struct(
    "entryplus3",
    [
        ("fileid", UHyper),
        ("name", Filename),
        ("cookie", UHyper),
        ("name_attributes", PostOpAttr),
        ("name_handle", PostOpFh),
    ],
)
ReaddirPlusRes = _result(
    "READDIRPLUS3res",
    Struct(
        "READDIRPLUS3resok",
        [
            ("dir_attributes", PostOpAttr),
            ("cookieverf", Cookieverf),
            ("entries", LinkedList(DirEntryPlus)),
            ("eof", Bool),
        ],
    ),
    Struct("READDIRPLUS3resfail", [("dir_attributes", PostOpAttr)]),
)

# FSSTAT
FsStatArgs = Struct("FSSTAT3args", [("fsroot", NfsFh)])
FsStatRes = _result(
    "FSSTAT3res",
    Struct(
        "FSSTAT3resok",
        [
            ("obj_attributes", PostOpAttr),
            ("tbytes", UHyper),
            ("fbytes", UHyper),
            ("abytes", UHyper),
            ("tfiles", UHyper),
            ("ffiles", UHyper),
            ("afiles", UHyper),
            ("invarsec", UInt32),
        ],
    ),
    Struct("FSSTAT3resfail", [("obj_attributes", PostOpAttr)]),
)

# FSINFO
FsInfoArgs = Struct("FSINFO3args", [("fsroot", NfsFh)])
FsInfoRes = _result(
    "FSINFO3res",
    Struct(
        "FSINFO3resok",
        [
            ("obj_attributes", PostOpAttr),
            ("rtmax", UInt32),
            ("rtpref", UInt32),
            ("rtmult", UInt32),
            ("wtmax", UInt32),
            ("wtpref", UInt32),
            ("wtmult", UInt32),
            ("dtpref", UInt32),
            ("maxfilesize", UHyper),
            ("time_delta", NfsTime),
            ("properties", UInt32),
        ],
    ),
    Struct("FSINFO3resfail", [("obj_attributes", PostOpAttr)]),
)

# PATHCONF
PathConfArgs = Struct("PATHCONF3args", [("object", NfsFh)])
PathConfRes = _result(
    "PATHCONF3res",
    Struct(
        "PATHCONF3resok",
        [
            ("obj_attributes", PostOpAttr),
            ("linkmax", UInt32),
            ("name_max", UInt32),
            ("no_trunc", Bool),
            ("chown_restricted", Bool),
            ("case_insensitive", Bool),
            ("case_preserving", Bool),
        ],
    ),
    Struct("PATHCONF3resfail", [("obj_attributes", PostOpAttr)]),
)

# READV / WRITEV — SFS extension (procs 22/23): vectored READ/WRITE.
# One call carries a whole window of segments against one file handle,
# so the secure channel MACs/encrypts a single record instead of N and
# the per-RPC latency is paid once per window.  Wire format reuses the
# XDR optional-data chain (same encoding as READDIR entries), keeping
# the extension expressible in plain RFC-1813 XDR.
ReadvSeg = Struct("readv3seg", [("offset", UHyper), ("count", UInt32)])
ReadvArgs = Struct(
    "READV3args", [("file", NfsFh), ("segments", LinkedList(ReadvSeg))]
)
ReadvSegRes = Struct(
    "readv3segres", [("count", UInt32), ("eof", Bool), ("data", Opaque())]
)
ReadvRes = _result(
    "READV3res",
    Struct(
        "READV3resok",
        [
            ("file_attributes", PostOpAttr),
            ("segments", LinkedList(ReadvSegRes)),
        ],
    ),
    Struct("READV3resfail", [("file_attributes", PostOpAttr)]),
)

WritevSeg = Struct("writev3seg", [("offset", UHyper), ("data", Opaque())])
WritevArgs = Struct(
    "WRITEV3args",
    [
        ("file", NfsFh),
        ("stable", Enum(const.UNSTABLE, const.DATA_SYNC, const.FILE_SYNC)),
        ("segments", LinkedList(WritevSeg)),
    ],
)
WritevRes = _result(
    "WRITEV3res",
    Struct(
        "WRITEV3resok",
        [
            ("file_wcc", WccData),
            ("count", UInt32),
            ("committed", UInt32),
            ("verf", Writeverf),
        ],
    ),
    Struct("WRITEV3resfail", [("file_wcc", WccData)]),
)

# COMMIT
CommitArgs = Struct(
    "COMMIT3args", [("file", NfsFh), ("offset", UHyper), ("count", UInt32)]
)
CommitRes = _result(
    "COMMIT3res",
    Struct("COMMIT3resok", [("file_wcc", WccData), ("verf", Writeverf)]),
    Struct("COMMIT3resfail", [("file_wcc", WccData)]),
)

#: (arg_codec, res_codec) per procedure number, for generic relays.
PROC_CODECS: dict[int, tuple[Codec, Codec]] = {
    const.NFSPROC3_NULL: (VOID, VOID),
    const.NFSPROC3_GETATTR: (GetAttrArgs, GetAttrRes),
    const.NFSPROC3_SETATTR: (SetAttrArgs, SetAttrRes),
    const.NFSPROC3_LOOKUP: (LookupArgs, LookupRes),
    const.NFSPROC3_ACCESS: (AccessArgs, AccessRes),
    const.NFSPROC3_READLINK: (ReadlinkArgs, ReadlinkRes),
    const.NFSPROC3_READ: (ReadArgs, ReadRes),
    const.NFSPROC3_WRITE: (WriteArgs, WriteRes),
    const.NFSPROC3_CREATE: (CreateArgs, CreateRes),
    const.NFSPROC3_MKDIR: (MkdirArgs, MkdirRes),
    const.NFSPROC3_SYMLINK: (SymlinkArgs, SymlinkRes),
    const.NFSPROC3_REMOVE: (RemoveArgs, RemoveRes),
    const.NFSPROC3_RMDIR: (RemoveArgs, RemoveRes),
    const.NFSPROC3_RENAME: (RenameArgs, RenameRes),
    const.NFSPROC3_LINK: (LinkArgs, LinkRes),
    const.NFSPROC3_READDIR: (ReaddirArgs, ReaddirRes),
    const.NFSPROC3_READDIRPLUS: (ReaddirPlusArgs, ReaddirPlusRes),
    const.NFSPROC3_FSSTAT: (FsStatArgs, FsStatRes),
    const.NFSPROC3_FSINFO: (FsInfoArgs, FsInfoRes),
    const.NFSPROC3_PATHCONF: (PathConfArgs, PathConfRes),
    const.NFSPROC3_COMMIT: (CommitArgs, CommitRes),
    const.NFSPROC3_READV: (ReadvArgs, ReadvRes),
    const.NFSPROC3_WRITEV: (WritevArgs, WritevRes),
}
