"""A typed NFS version 3 client.

This is the piece the simulated kernel uses to talk to file servers —
both directly (the plain-NFS baselines) and to the local SFS client
daemon over the loopback (the paper's portability trick: "We achieved
portability by running in user space and speaking an existing network
file system protocol (NFS 3) to the local machine").
"""

from __future__ import annotations

from ..rpc.peer import RpcError, RpcPeer
from ..rpc.rpcmsg import AuthSys, NULL_AUTH, OpaqueAuth
from ..rpc.xdr import Record, VOID
from . import const, types


class Nfs3Error(Exception):
    """A non-OK NFS status, carrying the numeric code and failure body."""

    def __init__(self, status: int, body: Record | None = None) -> None:
        super().__init__(f"NFS3 error {status}")
        self.status = status
        self.body = body


class Nfs3Client:
    """Typed procedure stubs over an :class:`RpcPeer`."""

    def __init__(self, peer: RpcPeer, cred: OpaqueAuth | AuthSys = NULL_AUTH) -> None:
        self.peer = peer
        self.cred = cred.to_auth() if isinstance(cred, AuthSys) else cred

    def with_cred(self, cred: OpaqueAuth | AuthSys) -> "Nfs3Client":
        """A view of the same connection under different credentials."""
        return Nfs3Client(self.peer, cred)

    def _call(self, proc: int, args) -> Record | None:
        arg_codec, res_codec = types.PROC_CODECS[proc]
        try:
            result = self.peer.call(
                const.NFS3_PROGRAM, const.NFS3_VERSION, proc,
                arg_codec, args, res_codec, cred=self.cred,
            )
        except RpcError:
            # Dropped/rejected records (e.g. an attacker tampering below
            # the secure channel) surface as I/O errors — the paper's
            # "attackers can do no worse than delay operation".
            raise Nfs3Error(const.NFS3ERR_IO) from None
        if proc == const.NFSPROC3_NULL:
            return None
        status, body = result
        if status != const.NFS3_OK:
            raise Nfs3Error(status, body)
        return body

    # --- procedures --------------------------------------------------------

    def null(self) -> None:
        self.peer.call(
            const.NFS3_PROGRAM, const.NFS3_VERSION, const.NFSPROC3_NULL,
            VOID, None, VOID, cred=self.cred,
        )

    def getattr(self, handle: bytes) -> Record:
        body = self._call(
            const.NFSPROC3_GETATTR, types.GetAttrArgs.make(object=handle)
        )
        return body.obj_attributes

    def setattr(self, handle: bytes, attrs: Record,
                guard_ctime: int | None = None) -> Record:
        guard = (
            types.NfsTime.make(seconds=guard_ctime, nseconds=0)
            if guard_ctime is not None
            else None
        )
        return self._call(
            const.NFSPROC3_SETATTR,
            types.SetAttrArgs.make(object=handle, new_attributes=attrs, guard=guard),
        )

    def lookup(self, dir_handle: bytes, name: str) -> Record:
        return self._call(
            const.NFSPROC3_LOOKUP,
            types.LookupArgs.make(
                what=types.DirOpArgs.make(dir=dir_handle, name=name)
            ),
        )

    def access(self, handle: bytes, mask: int) -> int:
        body = self._call(
            const.NFSPROC3_ACCESS, types.AccessArgs.make(object=handle, access=mask)
        )
        return body.access

    def readlink(self, handle: bytes) -> str:
        body = self._call(
            const.NFSPROC3_READLINK, types.ReadlinkArgs.make(symlink=handle)
        )
        return body.data

    def read(self, handle: bytes, offset: int, count: int) -> Record:
        return self._call(
            const.NFSPROC3_READ,
            types.ReadArgs.make(file=handle, offset=offset, count=count),
        )

    def write(self, handle: bytes, offset: int, data: bytes,
              stable: int = const.UNSTABLE) -> Record:
        return self._call(
            const.NFSPROC3_WRITE,
            types.WriteArgs.make(
                file=handle, offset=offset, count=len(data),
                stable=stable, data=data,
            ),
        )

    def readv(self, handle: bytes,
              segments: list[tuple[int, int]]) -> Record:
        """Vectored READ (SFS extension): ``segments`` is a list of
        ``(offset, count)`` pairs fetched in one RPC."""
        return self._call(
            const.NFSPROC3_READV,
            types.ReadvArgs.make(
                file=handle,
                segments=[
                    types.ReadvSeg.make(offset=offset, count=count)
                    for offset, count in segments
                ],
            ),
        )

    def writev(self, handle: bytes, segments: list[tuple[int, bytes]],
               stable: int = const.UNSTABLE) -> Record:
        """Vectored WRITE (SFS extension): ``segments`` is a list of
        ``(offset, data)`` pairs written in one RPC under one stability
        level."""
        return self._call(
            const.NFSPROC3_WRITEV,
            types.WritevArgs.make(
                file=handle,
                stable=stable,
                segments=[
                    types.WritevSeg.make(offset=offset, data=data)
                    for offset, data in segments
                ],
            ),
        )

    def create(self, dir_handle: bytes, name: str, mode: int = 0o644,
               exclusive: bool = False) -> Record:
        if exclusive:
            how = (const.EXCLUSIVE, b"\x00" * 8)
        else:
            how = (const.UNCHECKED, types.sattr(mode=mode))
        return self._call(
            const.NFSPROC3_CREATE,
            types.CreateArgs.make(
                where=types.DirOpArgs.make(dir=dir_handle, name=name), how=how
            ),
        )

    def mkdir(self, dir_handle: bytes, name: str, mode: int = 0o755) -> Record:
        return self._call(
            const.NFSPROC3_MKDIR,
            types.MkdirArgs.make(
                where=types.DirOpArgs.make(dir=dir_handle, name=name),
                attributes=types.sattr(mode=mode),
            ),
        )

    def symlink(self, dir_handle: bytes, name: str, target: str) -> Record:
        return self._call(
            const.NFSPROC3_SYMLINK,
            types.SymlinkArgs.make(
                where=types.DirOpArgs.make(dir=dir_handle, name=name),
                symlink=types.SymlinkData.make(
                    symlink_attributes=types.sattr(), symlink_data=target
                ),
            ),
        )

    def remove(self, dir_handle: bytes, name: str) -> Record:
        return self._call(
            const.NFSPROC3_REMOVE,
            types.RemoveArgs.make(
                object=types.DirOpArgs.make(dir=dir_handle, name=name)
            ),
        )

    def rmdir(self, dir_handle: bytes, name: str) -> Record:
        return self._call(
            const.NFSPROC3_RMDIR,
            types.RemoveArgs.make(
                object=types.DirOpArgs.make(dir=dir_handle, name=name)
            ),
        )

    def rename(self, from_dir: bytes, from_name: str,
               to_dir: bytes, to_name: str) -> Record:
        return self._call(
            const.NFSPROC3_RENAME,
            types.RenameArgs.make(
                from_=types.DirOpArgs.make(dir=from_dir, name=from_name),
                to=types.DirOpArgs.make(dir=to_dir, name=to_name),
            ),
        )

    def link(self, file_handle: bytes, dir_handle: bytes, name: str) -> Record:
        return self._call(
            const.NFSPROC3_LINK,
            types.LinkArgs.make(
                file=file_handle,
                link=types.DirOpArgs.make(dir=dir_handle, name=name),
            ),
        )

    def readdir(self, dir_handle: bytes, cookie: int = 0,
                count: int = 65536) -> Record:
        return self._call(
            const.NFSPROC3_READDIR,
            types.ReaddirArgs.make(
                dir=dir_handle, cookie=cookie,
                cookieverf=b"\x00" * 8, count=count,
            ),
        )

    def readdirplus(self, dir_handle: bytes, cookie: int = 0,
                    dircount: int = 65536, maxcount: int = 65536) -> Record:
        return self._call(
            const.NFSPROC3_READDIRPLUS,
            types.ReaddirPlusArgs.make(
                dir=dir_handle, cookie=cookie, cookieverf=b"\x00" * 8,
                dircount=dircount, maxcount=maxcount,
            ),
        )

    def fsstat(self, root_handle: bytes) -> Record:
        return self._call(
            const.NFSPROC3_FSSTAT, types.FsStatArgs.make(fsroot=root_handle)
        )

    def fsinfo(self, root_handle: bytes) -> Record:
        return self._call(
            const.NFSPROC3_FSINFO, types.FsInfoArgs.make(fsroot=root_handle)
        )

    def pathconf(self, handle: bytes) -> Record:
        return self._call(
            const.NFSPROC3_PATHCONF, types.PathConfArgs.make(object=handle)
        )

    def commit(self, handle: bytes, offset: int = 0, count: int = 0) -> Record:
        return self._call(
            const.NFSPROC3_COMMIT,
            types.CommitArgs.make(file=handle, offset=offset, count=count),
        )
