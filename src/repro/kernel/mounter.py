"""nfsmounter — the only privileged piece of the SFS client.

"All NFS mounting in the client is performed by a separate program called
nfsmounter.  The NFS mounter is the only part of the client software to
run as root.  It considers the rest of the system untrusted software.  If
the other client processes ever crash, the NFS mounter takes over their
sockets, acts like an NFS server, and serves enough of the defunct file
systems to unmount them all." (paper section 3.3)

:class:`NfsMounter` owns the kernel mount table on behalf of the
unprivileged daemons, and :meth:`takeover` implements the crash path: it
replaces a dead daemon's program with a stub that answers every request
with ESTALE and then unmounts, so a buggy subordinate daemon cannot wedge
the machine.
"""

from __future__ import annotations

from ..nfs3 import const as nfs_const
from ..rpc.peer import CallContext, Program
from ..rpc.xdr import Record
from .vfs import Kernel, Mount


class NfsMounter:
    """Mounts and unmounts daemon-served file systems into the kernel."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._managed: dict[str, Mount] = {}

    def mount(self, path: str, program: Program, root_fh: bytes) -> Mount:
        """Graft a daemon's NFS program over the directory at *path*."""
        mount = self._kernel.add_mount(path, program, root_fh)
        self._managed[path] = mount
        return mount

    def unmount(self, path: str) -> bool:
        self._managed.pop(path, None)
        return self._kernel.remove_mount(path)

    def remount(self, path: str, root_fh: bytes) -> bool:
        """Re-point a managed mount at a (possibly new) root handle.

        Used after a server restart: SFS handles derive from the
        server's durable key so the root normally survives verbatim,
        but a daemon that re-fetched the root can push it here without
        the disruptive unmount/mount cycle.  Returns True if the path
        was one of ours.
        """
        mount = self._managed.get(path)
        if mount is None:
            return False
        mount.root_fh = root_fh
        return True

    def mounted_paths(self) -> list[str]:
        return sorted(self._managed)

    def takeover(self, path: str) -> bool:
        """Handle a crashed daemon: serve ESTALE for its mount, then unmount.

        Returns True if the path was one of ours.
        """
        mount = self._managed.get(path)
        if mount is None:
            return False
        stale = _stale_program()
        # Re-point the daemon-side dispatcher at the stub: the mounter
        # "takes over their sockets".
        mount.server_peer.register(stale)
        mount.program = stale
        return self.unmount(path)


def _stale_program() -> Program:
    """An NFS program that answers everything with NFS3ERR_STALE."""
    from ..core.server import nfs_failure_shape
    from ..core import proto

    program = Program("nfsmounter-stale", nfs_const.NFS3_PROGRAM,
                      nfs_const.NFS3_VERSION)

    def make_handler(proc: int):
        def handler(args: Record, ctx: CallContext):
            return nfs_const.NFS3ERR_STALE, nfs_failure_shape(proc)
        return handler

    for proc in proto.NFS_PROC_CODECS:
        if proc == nfs_const.NFSPROC3_NULL:
            continue
        arg_codec, res_codec = proto.NFS_PROC_CODECS[proc]
        program.add_proc(proc, nfs_const.PROC_NAMES[proc],
                         arg_codec, res_codec, make_handler(proc))
    return program
