"""The simulated kernel: VFS mount table, path walking, POSIX facade.

This plays the role FreeBSD played on the paper's client machines.  The
kernel owns a mount table whose entries are NFS3 client connections —
the root file system is a local NFS server (the local-FS baseline), and
SFS grafts itself in exactly as in the paper: sfscd serves ``/sfs`` over
an NFS loopback, and every remote file system gets *its own* mount point
and device number served directly by a subordinate daemon ("Using
multiple mount points also prevents one slow server from affecting the
performance of other servers").

User code talks to :class:`Process`, which provides the POSIX-style
syscalls benchmarks and examples use (open/read/write/stat/readdir/...),
tagging every NFS call with the process's AUTH_SYS credentials — which is
how sfscd knows which user's agent to consult.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Iterator

from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types
from ..nfs3.client import Nfs3Client, Nfs3Error
from ..rpc.peer import Program, RpcPeer
from ..rpc.rpcmsg import AuthSys
from ..rpc.xdr import Record
from ..sim.clock import Clock
from ..sim.network import link_pair

_SYMLINK_MAX = 40
_IO_CHUNK = 8192

_NFS_TO_ERRNO = {
    nfs_const.NFS3ERR_PERM: errno.EPERM,
    nfs_const.NFS3ERR_NOENT: errno.ENOENT,
    nfs_const.NFS3ERR_IO: errno.EIO,
    nfs_const.NFS3ERR_ACCES: errno.EACCES,
    nfs_const.NFS3ERR_EXIST: errno.EEXIST,
    nfs_const.NFS3ERR_NOTDIR: errno.ENOTDIR,
    nfs_const.NFS3ERR_ISDIR: errno.EISDIR,
    nfs_const.NFS3ERR_INVAL: errno.EINVAL,
    nfs_const.NFS3ERR_FBIG: errno.EFBIG,
    nfs_const.NFS3ERR_NOSPC: errno.ENOSPC,
    nfs_const.NFS3ERR_ROFS: errno.EROFS,
    nfs_const.NFS3ERR_NAMETOOLONG: errno.ENAMETOOLONG,
    nfs_const.NFS3ERR_NOTEMPTY: errno.ENOTEMPTY,
    nfs_const.NFS3ERR_STALE: errno.ESTALE,
    nfs_const.NFS3ERR_BADHANDLE: errno.EBADF,
}


class KernelError(OSError):
    """A syscall failure with a POSIX errno."""

    def __init__(self, err: int, path: str = "") -> None:
        super().__init__(err, errno.errorcode.get(err, str(err)), path or None)


def _raise_from_nfs(exc: Nfs3Error, path: str = "") -> "KernelError":
    raise KernelError(_NFS_TO_ERRNO.get(exc.status, errno.EIO), path) from None


@dataclass
class Mount:
    """One mounted file system: an NFS connection plus its root handle.

    *program*/*server_peer* are set for daemon loopback mounts (the
    kernel talking to a local user-level daemon) and None for mounts
    whose NFS traffic goes straight over a network link.
    """

    mount_id: int
    name: str
    client: Nfs3Client
    root_fh: bytes
    program: Program | None = None
    server_peer: RpcPeer | None = None


def _normalize(path: str) -> str:
    """Lexically clean a path ('.' and empty components only)."""
    parts = [p for p in path.split("/") if p and p != "."]
    return "/" + "/".join(parts)


class Kernel:
    """Mount table + path walking."""

    def __init__(self, clock: Clock, hostname: str = "client",
                 metrics=None) -> None:
        self.clock = clock
        self.hostname = hostname
        self.metrics = metrics
        self._mounts: list[Mount] = []
        self._mountpoints: dict[tuple[int, bytes], Mount] = {}
        self._next_mount_id = 1
        self.root: Mount | None = None

    # --- mount management -----------------------------------------------

    def _attach_program(self, name: str, program: Program,
                        root_fh: bytes) -> Mount:
        """Create the kernel<->daemon NFS loopback for one mount."""
        kernel_side, daemon_side = link_pair(self.clock, metrics=self.metrics)
        server_peer = RpcPeer(daemon_side, f"daemon:{name}")
        server_peer.register(program)
        client = Nfs3Client(RpcPeer(kernel_side, f"kernel:{name}"))
        mount = Mount(self._next_mount_id, name, client, root_fh,
                      program, server_peer)
        self._next_mount_id += 1
        self._mounts.append(mount)
        return mount

    def mount_root(self, program: Program, root_fh: bytes) -> Mount:
        """Mount the root file system."""
        self.root = self._attach_program("/", program, root_fh)
        return self.root

    def add_mount(self, path: str, program: Program, root_fh: bytes,
                  cred: AuthSys | None = None) -> Mount:
        """Graft *program* over the directory at *path* (nfsmounter's job)."""
        cred = cred or AuthSys(uid=0, gid=0)
        mount_at, fh, _attrs = self.resolve(path, cred, follow=False)
        new_mount = self._attach_program(path, program, root_fh)
        self._mountpoints[(mount_at.mount_id, fh)] = new_mount
        return new_mount

    def add_mount_link(self, path: str, pipe, root_fh: bytes,
                       cred: AuthSys | None = None) -> Mount:
        """Mount an NFS server reached over *pipe* (a network link side).

        This is how the plain-NFS baselines mount remote servers: the
        kernel's NFS client speaks directly over the wire, with no
        user-level daemon in between.
        """
        return self.add_mount_peer(
            path, RpcPeer(pipe, f"kernel:{path}"), root_fh, cred
        )

    def add_mount_peer(self, path: str, peer: RpcPeer, root_fh: bytes,
                       cred: AuthSys | None = None) -> Mount:
        """Mount over an existing RPC peer (e.g. after a MOUNT exchange)."""
        cred = cred or AuthSys(uid=0, gid=0)
        mount_at, fh, _attrs = self.resolve(path, cred, follow=False)
        mount = Mount(self._next_mount_id, path, Nfs3Client(peer), root_fh)
        self._next_mount_id += 1
        self._mounts.append(mount)
        self._mountpoints[(mount_at.mount_id, fh)] = mount
        return mount

    def remove_mount(self, path: str, cred: AuthSys | None = None) -> bool:
        cred = cred or AuthSys(uid=0, gid=0)
        try:
            # Resolve to the *covered* directory, not across the mount:
            # walk to the parent, then look the leaf up directly.
            parent_mount, parent_fh, leaf = self.resolve_parent(path, cred)
            res = parent_mount.client.with_cred(cred).lookup(parent_fh, leaf)
        except (KernelError, Nfs3Error):
            return False
        removed = self._mountpoints.pop(
            (parent_mount.mount_id, res.object), None
        )
        if removed is not None:
            self._mounts = [m for m in self._mounts if m is not removed]
            return True
        return False

    def mounts(self) -> list[str]:
        return [mount.name for mount in self._mounts]

    # --- path walking ------------------------------------------------------

    def resolve(self, path: str, cred: AuthSys, follow: bool = True
                ) -> tuple[Mount, bytes, Record]:
        """Walk *path* to (mount, handle, attributes).

        Follows symlinks (including the on-the-fly ones sfscd
        manufactures under /sfs) and crosses mount points.  ".." is
        handled with an ancestor stack so it behaves across mounts.
        """
        if not path.startswith("/"):
            raise KernelError(errno.EINVAL, path)
        if self.root is None:
            raise KernelError(errno.ENOENT, path)
        budget = _SYMLINK_MAX
        mount = self.root
        fh = mount.root_fh
        attrs = self._getattr(mount, fh, cred, path)
        # Ancestor stack of (mount, fh, attrs) above the current node.
        stack: list[tuple[Mount, bytes, Record]] = []
        parts = [p for p in path.split("/") if p and p != "."]
        index = 0
        while index < len(parts):
            part = parts[index]
            if part == "..":
                if stack:
                    mount, fh, attrs = stack.pop()
                index += 1
                continue
            if attrs.type != nfs_const.NF3DIR:
                raise KernelError(errno.ENOTDIR, path)
            try:
                res = mount.client.with_cred(cred).lookup(fh, part)
            except Nfs3Error as exc:
                _raise_from_nfs(exc, path)
            child_fh = res.object
            child_attrs = res.obj_attributes
            if child_attrs is None:
                child_attrs = self._getattr(mount, child_fh, cred, path)
            child_mount = mount
            crossing = self._mountpoints.get((mount.mount_id, child_fh))
            if crossing is not None:
                child_mount = crossing
                child_fh = crossing.root_fh
                child_attrs = self._getattr(crossing, child_fh, cred, path)
            is_last = index == len(parts) - 1
            if child_attrs.type == nfs_const.NF3LNK and (follow or not is_last):
                budget -= 1
                if budget <= 0:
                    raise KernelError(errno.ELOOP, path)
                try:
                    target = mount.client.with_cred(cred).readlink(child_fh)
                except Nfs3Error as exc:
                    _raise_from_nfs(exc, path)
                new_parts = [p for p in target.split("/") if p and p != "."]
                parts = new_parts + parts[index + 1 :]
                index = 0
                if target.startswith("/"):
                    stack.clear()
                    mount = self.root
                    fh = mount.root_fh
                    attrs = self._getattr(mount, fh, cred, path)
                continue
            stack.append((mount, fh, attrs))
            mount, fh, attrs = child_mount, child_fh, child_attrs
            index += 1
        return mount, fh, attrs

    def resolve_parent(self, path: str, cred: AuthSys
                       ) -> tuple[Mount, bytes, str]:
        """Resolve the parent directory of *path*; returns (mount, fh, leaf)."""
        normalized = _normalize(path)
        if normalized == "/":
            raise KernelError(errno.EINVAL, path)
        parent, _, leaf = normalized.rpartition("/")
        mount, fh, attrs = self.resolve(parent or "/", cred)
        if attrs.type != nfs_const.NF3DIR:
            raise KernelError(errno.ENOTDIR, path)
        return mount, fh, leaf

    def _getattr(self, mount: Mount, fh: bytes, cred: AuthSys,
                 path: str) -> Record:
        try:
            return mount.client.with_cred(cred).getattr(fh)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)


@dataclass
class FileHandle:
    """An open file description."""

    mount: Mount
    fh: bytes
    flags: str
    offset: int = 0
    path: str = ""


@dataclass
class StatResult:
    """What stat() returns: a friendly view of fattr3."""

    mode: int
    ftype: int
    nlink: int
    uid: int
    gid: int
    size: int
    used: int
    fsid: int
    fileid: int
    atime: int
    mtime: int
    ctime: int

    @property
    def is_dir(self) -> bool:
        return self.ftype == nfs_const.NF3DIR

    @property
    def is_symlink(self) -> bool:
        return self.ftype == nfs_const.NF3LNK

    @property
    def is_file(self) -> bool:
        return self.ftype == nfs_const.NF3REG


def _stat_from_fattr(attrs: Record) -> StatResult:
    return StatResult(
        mode=attrs.mode, ftype=attrs.type, nlink=attrs.nlink,
        uid=attrs.uid, gid=attrs.gid, size=attrs.size, used=attrs.used,
        fsid=attrs.fsid, fileid=attrs.fileid,
        atime=attrs.atime.seconds, mtime=attrs.mtime.seconds,
        ctime=attrs.ctime.seconds,
    )


class Process:
    """A user process: credentials, cwd, fd table, POSIX syscalls."""

    def __init__(self, kernel: Kernel, uid: int = 0, gid: int = 0,
                 groups: tuple[int, ...] = ()) -> None:
        self.kernel = kernel
        self.cred = AuthSys(uid=uid, gid=gid, gids=groups,
                            machinename=kernel.hostname)
        self._cwd = "/"
        self._fds: dict[int, FileHandle] = {}
        self._next_fd = 3

    @property
    def uid(self) -> int:
        return self.cred.uid

    # --- paths ------------------------------------------------------------

    def _abspath(self, path: str) -> str:
        if not path.startswith("/"):
            path = self._cwd.rstrip("/") + "/" + path
        return _normalize(path)

    def realpath(self, path: str) -> str:
        """Resolve symlinks and ".." to a canonical absolute path.

        Under /sfs this yields the full self-certifying pathname — the
        property the paper's pwd-based secure bookmarks rely on.
        """
        budget = _SYMLINK_MAX
        resolved: list[str] = []
        pending = [p for p in self._abspath(path).split("/") if p and p != "."]
        while pending:
            part = pending.pop(0)
            if part == "..":
                if resolved:
                    resolved.pop()
                continue
            candidate = "/" + "/".join(resolved + [part])
            try:
                st = self.lstat(candidate)
            except KernelError:
                resolved.append(part)
                continue
            if st.is_symlink:
                budget -= 1
                if budget <= 0:
                    raise KernelError(errno.ELOOP, path)
                target = self.readlink(candidate)
                new_parts = [p for p in target.split("/") if p and p != "."]
                if target.startswith("/"):
                    resolved = []
                pending = new_parts + pending
            else:
                resolved.append(part)
        return "/" + "/".join(resolved)

    def chdir(self, path: str) -> None:
        absolute = self._abspath(path)
        _mount, _fh, attrs = self.kernel.resolve(absolute, self.cred)
        if attrs.type != nfs_const.NF3DIR:
            raise KernelError(errno.ENOTDIR, path)
        # Canonicalize so getcwd() prints the real (self-certifying,
        # when under /sfs) pathname, as the paper's pwd does.
        self._cwd = self.realpath(absolute)

    def getcwd(self) -> str:
        return self._cwd

    # --- file I/O -----------------------------------------------------------

    def open(self, path: str, flags: str = "r", mode: int = 0o644) -> int:
        """Open a file.  *flags*: r, w (truncate+create), a, rw, x (excl)."""
        absolute = self._abspath(path)
        create = any(f in flags for f in ("w", "a", "x"))
        client_cred = self.cred
        if create:
            mount, dir_fh, leaf = self.kernel.resolve_parent(absolute, client_cred)
            try:
                res = mount.client.with_cred(client_cred).create(
                    dir_fh, leaf, mode=mode, exclusive="x" in flags
                )
            except Nfs3Error as exc:
                _raise_from_nfs(exc, path)
            fh = res.obj
            if fh is None:
                raise KernelError(errno.EIO, path)
            if "w" in flags:
                self._truncate(mount, fh, 0, path)
        else:
            mount, fh, attrs = self.kernel.resolve(absolute, client_cred)
            if attrs.type == nfs_const.NF3DIR:
                raise KernelError(errno.EISDIR, path)
            # Like a real NFS client, check permissions with ACCESS at
            # open time (this is the call SFS's access cache absorbs).
            try:
                granted = mount.client.with_cred(client_cred).access(
                    fh, nfs_const.ACCESS3_READ
                )
            except Nfs3Error as exc:
                _raise_from_nfs(exc, path)
            if not granted & nfs_const.ACCESS3_READ:
                raise KernelError(errno.EACCES, path)
        handle = FileHandle(mount, fh, flags, path=absolute)
        if "a" in flags:
            handle.offset = self.fstat_fd(self._register(handle)).size
            return self._last_fd
        return self._register(handle)

    def _register(self, handle: FileHandle) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        self._last_fd = fd
        return fd

    def _handle(self, fd: int) -> FileHandle:
        try:
            return self._fds[fd]
        except KeyError:
            raise KernelError(errno.EBADF) from None

    def read(self, fd: int, count: int) -> bytes:
        handle = self._handle(fd)
        out = bytearray()
        while count > 0:
            chunk = min(count, _IO_CHUNK)
            try:
                res = handle.mount.client.with_cred(self.cred).read(
                    handle.fh, handle.offset, chunk
                )
            except Nfs3Error as exc:
                _raise_from_nfs(exc, handle.path)
            out += res.data
            handle.offset += len(res.data)
            count -= len(res.data)
            if res.eof or not res.data:
                break
        return bytes(out)

    def write(self, fd: int, data: bytes, sync: bool = False) -> int:
        handle = self._handle(fd)
        stable = nfs_const.FILE_SYNC if sync else nfs_const.UNSTABLE
        written = 0
        view = memoryview(data)
        while written < len(data):
            chunk = view[written : written + _IO_CHUNK]
            try:
                res = handle.mount.client.with_cred(self.cred).write(
                    handle.fh, handle.offset, bytes(chunk), stable=stable
                )
            except Nfs3Error as exc:
                _raise_from_nfs(exc, handle.path)
            handle.offset += res.count
            written += res.count
            if res.count == 0:
                raise KernelError(errno.EIO, handle.path)
        return written

    def lseek(self, fd: int, offset: int) -> int:
        handle = self._handle(fd)
        handle.offset = offset
        return offset

    def fchown(self, fd: int, uid: int, gid: int | None = None) -> None:
        """chown on an open descriptor: exactly one SETATTR RPC.

        This is the paper's latency micro-benchmark operation — "a file
        system operation that always requires a remote RPC but never
        requires a disk access — an unauthorized fchown system call."
        """
        handle = self._handle(fd)
        try:
            handle.mount.client.with_cred(self.cred).setattr(
                handle.fh, nfs_types.sattr(uid=uid, gid=gid)
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, handle.path)

    def fsync(self, fd: int) -> None:
        handle = self._handle(fd)
        try:
            handle.mount.client.with_cred(self.cred).commit(handle.fh)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, handle.path)

    def close(self, fd: int, sync_on_close: bool = True) -> None:
        """Close; like NFS clients, flush dirty data synchronously.

        The paper notes NFS "flushes data to disk on file closes", which
        is what makes the Sprite create phase disk-bound.
        """
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise KernelError(errno.EBADF)
        if sync_on_close and any(f in handle.flags for f in ("w", "a", "x")):
            try:
                handle.mount.client.with_cred(self.cred).commit(handle.fh)
            except Nfs3Error:
                pass

    def read_file(self, path: str) -> bytes:
        """Convenience: whole-file read."""
        fd = self.open(path, "r")
        try:
            size = self.fstat_fd(fd).size
            return self.read(fd, size)
        finally:
            self.close(fd)

    def write_file(self, path: str, data: bytes, mode: int = 0o644,
                   sync: bool = False) -> None:
        """Convenience: create/truncate + write + close."""
        fd = self.open(path, "w", mode)
        try:
            self.write(fd, data, sync=sync)
        finally:
            self.close(fd)

    def _truncate(self, mount: Mount, fh: bytes, size: int, path: str) -> None:
        try:
            mount.client.with_cred(self.cred).setattr(
                fh, nfs_types.sattr(size=size)
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    # --- metadata --------------------------------------------------------------

    def stat(self, path: str) -> StatResult:
        _mount, _fh, attrs = self.kernel.resolve(self._abspath(path), self.cred)
        return _stat_from_fattr(attrs)

    def lstat(self, path: str) -> StatResult:
        _mount, _fh, attrs = self.kernel.resolve(
            self._abspath(path), self.cred, follow=False
        )
        return _stat_from_fattr(attrs)

    def fstat_fd(self, fd: int) -> StatResult:
        handle = self._handle(fd)
        try:
            attrs = handle.mount.client.with_cred(self.cred).getattr(handle.fh)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, handle.path)
        return _stat_from_fattr(attrs)

    def access(self, path: str, mask: int) -> int:
        mount, fh, _attrs = self.kernel.resolve(self._abspath(path), self.cred)
        try:
            return mount.client.with_cred(self.cred).access(fh, mask)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def chmod(self, path: str, mode: int) -> None:
        mount, fh, _attrs = self.kernel.resolve(self._abspath(path), self.cred)
        try:
            mount.client.with_cred(self.cred).setattr(
                fh, nfs_types.sattr(mode=mode)
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def chown(self, path: str, uid: int, gid: int | None = None) -> None:
        mount, fh, _attrs = self.kernel.resolve(self._abspath(path), self.cred)
        try:
            mount.client.with_cred(self.cred).setattr(
                fh, nfs_types.sattr(uid=uid, gid=gid)
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def truncate(self, path: str, size: int) -> None:
        mount, fh, _attrs = self.kernel.resolve(self._abspath(path), self.cred)
        self._truncate(mount, fh, size, path)

    def utimes(self, path: str, atime: int, mtime: int) -> None:
        mount, fh, _attrs = self.kernel.resolve(self._abspath(path), self.cred)
        try:
            mount.client.with_cred(self.cred).setattr(
                fh, nfs_types.sattr(atime=atime, mtime=mtime)
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    # --- namespace ops ------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        mount, dir_fh, leaf = self.kernel.resolve_parent(
            self._abspath(path), self.cred
        )
        try:
            mount.client.with_cred(self.cred).mkdir(dir_fh, leaf, mode)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def makedirs(self, path: str, mode: int = 0o755) -> None:
        absolute = self._abspath(path)
        parts = [p for p in absolute.split("/") if p]
        so_far = ""
        for part in parts:
            so_far += "/" + part
            try:
                self.stat(so_far)
                continue
            except KernelError as exc:
                if exc.errno != errno.ENOENT:
                    raise
            try:
                self.mkdir(so_far, mode)
            except KernelError as exc:
                if exc.errno != errno.EEXIST:
                    raise

    def rmdir(self, path: str) -> None:
        mount, dir_fh, leaf = self.kernel.resolve_parent(
            self._abspath(path), self.cred
        )
        try:
            mount.client.with_cred(self.cred).rmdir(dir_fh, leaf)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def unlink(self, path: str) -> None:
        mount, dir_fh, leaf = self.kernel.resolve_parent(
            self._abspath(path), self.cred
        )
        try:
            mount.client.with_cred(self.cred).remove(dir_fh, leaf)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def rename(self, old: str, new: str) -> None:
        from_mount, from_fh, from_leaf = self.kernel.resolve_parent(
            self._abspath(old), self.cred
        )
        to_mount, to_fh, to_leaf = self.kernel.resolve_parent(
            self._abspath(new), self.cred
        )
        if from_mount.mount_id != to_mount.mount_id:
            raise KernelError(errno.EXDEV, new)
        try:
            from_mount.client.with_cred(self.cred).rename(
                from_fh, from_leaf, to_fh, to_leaf
            )
        except Nfs3Error as exc:
            _raise_from_nfs(exc, new)

    def symlink(self, target: str, path: str) -> None:
        mount, dir_fh, leaf = self.kernel.resolve_parent(
            self._abspath(path), self.cred
        )
        try:
            mount.client.with_cred(self.cred).symlink(dir_fh, leaf, target)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def readlink(self, path: str) -> str:
        mount, fh, attrs = self.kernel.resolve(
            self._abspath(path), self.cred, follow=False
        )
        if attrs.type != nfs_const.NF3LNK:
            raise KernelError(errno.EINVAL, path)
        try:
            return mount.client.with_cred(self.cred).readlink(fh)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, path)

    def link(self, existing: str, new: str) -> None:
        file_mount, file_fh, _attrs = self.kernel.resolve(
            self._abspath(existing), self.cred
        )
        dir_mount, dir_fh, leaf = self.kernel.resolve_parent(
            self._abspath(new), self.cred
        )
        if file_mount.mount_id != dir_mount.mount_id:
            raise KernelError(errno.EXDEV, new)
        try:
            file_mount.client.with_cred(self.cred).link(file_fh, dir_fh, leaf)
        except Nfs3Error as exc:
            _raise_from_nfs(exc, new)

    def readdir(self, path: str) -> list[str]:
        mount, fh, attrs = self.kernel.resolve(self._abspath(path), self.cred)
        if attrs.type != nfs_const.NF3DIR:
            raise KernelError(errno.ENOTDIR, path)
        names: list[str] = []
        cookie = 0
        while True:
            try:
                res = mount.client.with_cred(self.cred).readdir(fh, cookie)
            except Nfs3Error as exc:
                _raise_from_nfs(exc, path)
            for entry in res.entries:
                if entry.name not in (".", ".."):
                    names.append(entry.name)
                cookie = entry.cookie
            if res.eof or not res.entries:
                return names

    def walk(self, top: str) -> Iterator[tuple[str, list[str], list[str]]]:
        """os.walk lookalike over the simulated namespace."""
        dirs: list[str] = []
        files: list[str] = []
        for name in self.readdir(top):
            child = top.rstrip("/") + "/" + name
            if self.lstat(child).is_dir:
                dirs.append(name)
            else:
                files.append(name)
        yield top, dirs, files
        for name in dirs:
            yield from self.walk(top.rstrip("/") + "/" + name)
