"""The simulated client kernel and world builder."""

from .mounter import NfsMounter
from .vfs import FileHandle, Kernel, KernelError, Mount, Process, StatResult
from .world import ClientMachine, ServerMachine, UserAccount, World

__all__ = [
    "ClientMachine",
    "FileHandle",
    "Kernel",
    "KernelError",
    "Mount",
    "NfsMounter",
    "Process",
    "ServerMachine",
    "StatResult",
    "UserAccount",
    "World",
]
