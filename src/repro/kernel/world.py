"""World builder: whole networks of SFS machines in a few lines.

Examples, tests, and benchmarks all need the same scaffolding — a virtual
clock, a network, server machines exporting file systems, client machines
running sfscd with agents for their users.  :class:`World` assembles it:

    world = World()
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()                        # a new file system
    alice = server.add_user("alice", uid=1000)       # account + key pair
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    proc.read_file(str(path) + "/README")            # secure, end to end

The network connector dials server masters by Location, so "anyone can
generate a public key, determine the corresponding HostID, run the SFS
server software, and immediately reference that server by its
self-certifying pathname on any client in the world."
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.agent import Agent
from ..core.authserv import AuthServer
from ..core.client import SfsClientDaemon
from ..core.pathnames import SelfCertifyingPath
from ..core.server import SfsServerMaster
from ..crypto.rabin import PrivateKey, generate_key
from ..fs.memfs import MemFs
from ..nfs3.server import Nfs3Server
from ..obs.registry import MetricsRegistry
from ..rpc.peer import RpcPeer
from ..sim.clock import Clock
from ..sim.disk import Disk, DiskParameters
from ..sim.network import LinkSide, Medium, NetworkParameters, link_pair
from ..sim.sched import Scheduler
from .mounter import NfsMounter
from .vfs import Kernel, KernelError, Process

DEFAULT_KEY_BITS = 768


@dataclass
class UserAccount:
    """A user created on a server: credentials plus a fresh key pair."""

    name: str
    uid: int
    gid: int
    key: PrivateKey


class ServerMachine:
    """One server host: an SfsServerMaster plus its exports."""

    def __init__(self, world: "World", location: str,
                 with_disk: bool = True, metrics=None) -> None:
        self.world = world
        self.location = location
        #: With a control plane, *metrics* is a TeeRegistry writing
        #: through to both the world registry and this machine's own
        #: (``self.registry``, set by World.add_server) — the
        #: collector's per-source view.  Without one it is simply the
        #: world registry, as it always was.
        self.metrics = metrics if metrics is not None else world.metrics
        self.registry = None
        self.master = SfsServerMaster(location, world.clock, world.rng,
                                      metrics=self.metrics)
        self.with_disk = with_disk
        self.exports: dict[str, tuple[SelfCertifyingPath, MemFs, AuthServer]] = {}
        #: This machine's network interface, one shared medium per
        #: direction: when the world enables contention, every client
        #: link terminating here queues for the same rx/tx bandwidth.
        self.nic_rx = Medium(f"{location}:rx")
        self.nic_tx = Medium(f"{location}:tx")

    def _new_fs(self, fsid: int) -> MemFs:
        disk = Disk(self.world.clock, DiskParameters.ibm_18es(),
                    metrics=self.metrics) \
            if self.with_disk else None
        return MemFs(fsid=fsid, disk=disk)

    def export_fs(self, name: str = "default", key_bits: int = DEFAULT_KEY_BITS,
                  lease_duration: float = 30.0,
                  fs: MemFs | None = None) -> SelfCertifyingPath:
        """Create and export a read-write file system; returns its path."""
        key = generate_key(key_bits, self.world.rng)
        fs = fs or self._new_fs(fsid=len(self.exports) + 1)
        authserver = AuthServer(self.world.rng, metrics=self.metrics,
                                clock=self.world.clock)
        path = self.master.add_rw_export(
            key, fs, authserver, lease_duration=lease_duration, name=name
        )
        self.exports[name] = (path, fs, authserver)
        return path

    def export(self, name: str = "default"
               ) -> tuple[SelfCertifyingPath, MemFs, AuthServer]:
        return self.exports[name]

    @property
    def fs(self) -> MemFs:
        return self.exports["default"][1]

    @property
    def authserver(self) -> AuthServer:
        return self.exports["default"][2]

    @property
    def path(self) -> SelfCertifyingPath:
        return self.exports["default"][0]

    # -- crash / restart --

    def crash(self) -> None:
        """Power-fail this machine: every connection drops, every piece
        of volatile state (leases, sessions, reply caches, un-committed
        writes) is lost.  Durable state — the private key, the exports'
        committed data — survives for :meth:`restart`."""
        self.master.crash()

    def restart(self) -> None:
        """Boot the machine back up with the same keypair and exports."""
        self.master.restart()

    def schedule_restart(self, at: float) -> None:
        """Arrange for the machine to come back at absolute time *at*.

        The timer fires from inside Clock.advance — which is exactly
        where a reconnecting client sits while it backs off, so the
        restart happens "during" the client's wait like a real reboot.
        A machine that never went down by then has nothing to do.
        """
        def boot() -> None:
            if self.master.down:
                self.restart()

        self.world.clock.call_at(at, boot)

    def install_crash_injector(self, schedule):
        """Arm deterministic crash points; see sim/crash.py."""
        return self.master.install_crash_injector(schedule)

    def enable_queueing(self, max_depth: int = 32, workers: int = 4,
                        policy: str = "fifo", service_time: float = 0.0):
        """Serve this machine's requests through a bounded queue.

        Requires (and, if needed, creates) the world's cooperative
        scheduler, whose daemon tasks run the worker pool.  See
        :meth:`repro.core.server.SfsServerMaster.enable_concurrency`.
        """
        scheduler = self.world.enable_concurrency()
        return self.master.enable_concurrency(
            scheduler, max_depth=max_depth, workers=workers,
            policy=policy, service_time=service_time,
        )

    def add_user(self, name: str, uid: int, gid: int = 100,
                 groups: tuple[int, ...] = (),
                 key_bits: int = DEFAULT_KEY_BITS,
                 export: str = "default") -> UserAccount:
        """Create an account with a fresh key in the export's authserver."""
        key = generate_key(key_bits, self.world.rng)
        authserver = self.exports[export][2]
        record = authserver.add_account(name, uid, gid, groups)
        record.public_key_bytes = key.public_key.to_bytes()
        authserver.local_db.add_user(record)
        return UserAccount(name, uid, gid, key)


class _KernelFsReader:
    """Adapts a root Process to the agent's FsReader protocol."""

    def __init__(self, process: Process) -> None:
        self._process = process

    def readlink(self, path: str) -> str | None:
        try:
            return self._process.readlink(path)
        except KernelError:
            return None

    def readfile(self, path: str) -> bytes | None:
        try:
            return self._process.read_file(path)
        except KernelError:
            return None


class ClientMachine:
    """One client host: kernel, local fs, nfsmounter, sfscd."""

    def __init__(self, world: "World", hostname: str,
                 encrypt: bool = True, caching: bool = True,
                 with_disk: bool = True, metrics=None) -> None:
        self.world = world
        self.hostname = hostname
        #: See ServerMachine: a TeeRegistry under a control plane,
        #: otherwise the world registry.
        self.metrics = metrics if metrics is not None else world.metrics
        self.registry = None
        self.kernel = Kernel(world.clock, hostname, metrics=self.metrics)
        disk = Disk(world.clock, DiskParameters.ibm_18es(),
                    metrics=self.metrics) if with_disk else None
        self.local_fs = MemFs(fsid=0x100, disk=disk)
        self.local_server = Nfs3Server(self.local_fs, metrics=self.metrics,
                                       clock=world.clock)
        self.kernel.mount_root(self.local_server.program,
                               self.local_server.root_handle())
        self.mounter = NfsMounter(self.kernel)
        root = Process(self.kernel, uid=0, gid=0)
        root.mkdir("/sfs")
        self.sfscd = SfsClientDaemon(
            world.clock, world.rng, world.connector, self.mounter,
            encrypt=encrypt, caching=caching, metrics=self.metrics,
            pipeline_depth=world.pipeline_depth,
        )
        self.mounter.mount("/sfs", self.sfscd.program,
                           self.sfscd.root_handle())
        self._root = root

    def root_process(self) -> Process:
        return self._root

    def process(self, uid: int, gid: int = 100,
                groups: tuple[int, ...] = ()) -> Process:
        return Process(self.kernel, uid=uid, gid=gid, groups=groups)

    def new_agent(self, user: str, uid: int) -> Agent:
        """Start an agent for *uid* with file system access for key
        management (certification paths, revocation directories)."""
        reader = _KernelFsReader(self.process(uid))
        agent = Agent(user, self.world.rng, fs_reader=reader)
        self.sfscd.attach_agent(uid, agent)
        return agent

    def login_user(self, user: str, key: PrivateKey | None, uid: int,
                   gid: int = 100) -> Process:
        """Convenience: agent + key + process, like logging in."""
        agent = self.new_agent(user, uid)
        if key is not None:
            agent.add_key(key)
        return self.process(uid, gid)

    def ssu(self, uid: int) -> Process:
        """The paper's ssu utility: a super-user process whose SFS
        operations map to *uid*'s agent (section 2.3, footnote 2)."""
        agent = self.sfscd.agents.get(uid)
        if agent is None:
            raise KeyError(f"no agent attached for uid {uid}")
        self.sfscd.attach_agent(0, agent)
        return self.process(0, 0)

    def mount_nfs(self, path: str, server: "ServerMachine",
                  export: str = "default",
                  params: NetworkParameters | None = None,
                  export_dir: str = "/") -> None:
        """Mount a remote file system with plain NFS 3 (the baseline).

        No SFS: the kernel asks the server's MOUNT service for the root
        handle, then speaks NFS straight over the wire — guessable
        handles, no cryptography; the world the paper set out to fix.
        """
        from ..nfs3.mountproto import MountClient, MountServer
        from ..rpc.peer import RpcPeer as _RpcPeer

        _path, fs, _auth = server.exports[export]
        nfsd = Nfs3Server(fs, metrics=self.world.metrics,
                          clock=self.world.clock)
        mountd = MountServer()
        mountd.add_export(export_dir, nfsd.root_handle())
        media = ({"a->b": server.nic_rx, "b->a": server.nic_tx}
                 if self.world.contention else None)
        kernel_side, server_side = link_pair(
            self.world.clock, params or self.world.lan_params,
            metrics=self.world.metrics, media=media,
            pipelined=self.world.pipelining,
        )
        if self.world.pipelining:
            kernel_side.link.window_depth = self.world.pipeline_depth
        self.world._wire_pump(kernel_side)
        peer = _RpcPeer(server_side, f"nfsd@{server.location}")
        peer.register(nfsd.program)
        peer.register(mountd.program)
        self._root.makedirs(path)
        # The kernel-side peer serves both the MNT exchange and, once
        # mounted, the NFS traffic — one connection, like NFS-over-TCP.
        kernel_peer = _RpcPeer(kernel_side, f"kernel:{path}")
        root_fh = MountClient(kernel_peer, self.hostname).mnt(export_dir)
        self.kernel.add_mount_peer(path, kernel_peer, root_fh)


class World:
    """A clock, a network, and the machines on it."""

    def __init__(self, seed: int = 2026,
                 lan_params: NetworkParameters | None = None,
                 metrics=None) -> None:
        self.clock = Clock()
        self.rng = random.Random(seed)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry(clock=self.clock)
        self.lan_params = lan_params or NetworkParameters.lan_100mbit()
        #: Per-Location overrides of the world's default link timing,
        #: set via :meth:`set_link_params` — how a WAN mirror coexists
        #: with LAN servers, giving the replica tier's latency-ranked
        #: selection something real to rank.
        self.link_params: dict[str, NetworkParameters] = {}
        self.servers: dict[str, ServerMachine] = {}
        self.clients: dict[str, ClientMachine] = {}
        self.adversary_factory = None  # optional: () -> Adversary
        self.links: list[LinkSide] = []
        #: Created by :meth:`enable_concurrency`; once present, every
        #: new link pumps it while synchronous callers wait for replies.
        self.scheduler: Scheduler | None = None
        #: Set by :meth:`enable_contention`: new links to a server share
        #: its NIC media, so concurrent clients queue for bandwidth.
        self.contention = False
        #: Set by :meth:`enable_pipelining`: new links deliver records
        #: via clock timers instead of nested synchronous calls, peers
        #: built over them get a send window of :attr:`pipeline_depth`,
        #: and client daemons turn on readahead / write-gathering.
        self.pipelining = False
        self.pipeline_depth = 1
        #: Created by :meth:`enable_control`; once present, every new
        #: machine gets a per-source registry and a collector heartbeat.
        self.control = None

    # -- concurrency --

    def enable_concurrency(self, seed: int = 0) -> Scheduler:
        """Create (once) the world's cooperative task scheduler."""
        if self.scheduler is None:
            self.scheduler = Scheduler(self.clock, seed=seed,
                                       metrics=self.metrics)
        return self.scheduler

    def enable_contention(self) -> None:
        """Make links to each server contend for its NIC bandwidth.

        Off by default: single-client benchmarks keep their original,
        independent per-record charges bit-for-bit."""
        self.contention = True

    def enable_pipelining(self, depth: int = 8, seed: int = 0) -> Scheduler:
        """Turn on the task-native async core (PROTOCOLS.md §17).

        Creates the scheduler (if needed) and flips the world to
        pipelined delivery: every link dialed from now on delivers
        records via clock timers (propagation overlaps instead of
        serializing), RPC peers over those links get a send window of
        *depth* in-flight xids, and client daemons created from now on
        run sequential readahead and write-gathering at the same depth.
        Also arms ``strict_pump``: with the hot paths task-native, any
        legacy scheduler pump reached from *inside* a task step is a
        bug, and fails loudly naming the task.  Call before creating
        the machines that should benefit.
        """
        if depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        scheduler = self.enable_concurrency(seed=seed)
        scheduler.strict_pump = True
        self.pipelining = True
        self.pipeline_depth = depth
        for client in self.clients.values():
            client.sfscd.pipeline_depth = depth
        return scheduler

    def _wire_pump(self, side: "LinkSide") -> None:
        """Give a new link the scheduler's legacy pump (if any): sync
        entry points (handshakes, tests) wait out queued servers by
        pumping; under ``strict_pump`` a pump from inside a task step
        raises.  The single place link<->scheduler wiring happens."""
        if self.scheduler is not None:
            side.link.pump = self.scheduler.legacy_pump

    def enable_control(self, period: float = 0.010, ring_size: int = 64,
                       stale_after: int = 2, dead_after: int = 5,
                       start: bool = True):
        """Create (once) this world's fleet control plane.

        Machines added *after* this call get per-source tee registries
        and collector heartbeats; machines that already exist are
        adopted for liveness tracking only (their instruments are
        already bound to the world registry).  With ``start=True`` the
        control loop runs as a scheduler daemon every *period* virtual
        seconds; pass ``start=False`` to drive :meth:`ControlPlane.tick`
        by hand (tests).  See :mod:`repro.control`.
        """
        if self.control is None:
            from ..control.plane import ControlPlane  # control builds on world

            self.control = ControlPlane(
                self, period=period, ring_size=ring_size,
                stale_after=stale_after, dead_after=dead_after,
            )
            for server in self.servers.values():
                self.control.adopt_server(server)
            for client in self.clients.values():
                self.control.adopt_client(client)
            if start:
                self.control.start()
        return self.control

    # -- topology --

    def _machine_metrics(self):
        """(tee, per-source registry) for a new machine, or (None, None)."""
        if self.control is None:
            return None, None
        from ..obs.registry import TeeRegistry

        registry = self.control.new_registry()
        return TeeRegistry(self.metrics, registry), registry

    def add_server(self, location: str, with_disk: bool = True
                   ) -> ServerMachine:
        metrics, registry = self._machine_metrics()
        server = ServerMachine(self, location, with_disk=with_disk,
                               metrics=metrics)
        self.servers[location] = server
        if registry is not None:
            server.registry = registry
            self.control.adopt_server(server)
        return server

    def add_client(self, hostname: str, encrypt: bool = True,
                   caching: bool = True, with_disk: bool = True
                   ) -> ClientMachine:
        metrics, registry = self._machine_metrics()
        client = ClientMachine(self, hostname, encrypt=encrypt,
                               caching=caching, with_disk=with_disk,
                               metrics=metrics)
        self.clients[hostname] = client
        if registry is not None:
            client.registry = registry
            self.control.adopt_client(client)
        return client

    def set_link_params(self, location: str,
                        params: NetworkParameters) -> None:
        """Give every future link dialed to *location* its own timing.

        Existing connections are unaffected; the override applies at
        dial time in :meth:`connector`.
        """
        self.link_params[location] = params

    def apply_link_profile(self, location: str, params: NetworkParameters,
                           existing: bool = True) -> int:
        """Re-time *location*: future dials and (optionally) open links.

        Unlike :meth:`set_link_params` this also walks the live links
        dialed to *location* and swaps their timing in place — a WAN
        route change landing mid-connection.  Returns how many open
        links were re-timed.
        """
        self.set_link_params(location, params)
        changed = 0
        if existing:
            for side in self.links:
                if side.link.is_open and side.link.location == location:
                    side.link.set_params(params)
                    changed += 1
        return changed

    def set_wire_adversary(self, factory, existing: bool = True,
                           location: str | None = None) -> int:
        """Put an adversary on the wire: future dials and open links.

        *factory* is ``() -> Adversary`` (one instance per link, so
        fault counters stay per-link) or ``None`` to lift the faults
        again.  With *location* the hostile window covers only links to
        that host; otherwise the whole world's wire misbehaves.
        Returns how many open links were touched.
        """
        if location is None:
            self.adversary_factory = factory
        changed = 0
        if existing:
            for side in self.links:
                if not side.link.is_open:
                    continue
                if location is not None and side.link.location != location:
                    continue
                side.link.set_adversary(factory() if factory else None)
                changed += 1
        return changed

    def add_fleet(self, count: int, name: str = "fleet", **kwargs):
        """Spin up *count* shard servers behind one CA-served namespace.

        Returns a :class:`repro.fleet.Fleet`: N ordinary servers whose
        names are sharded by consistent hashing over their HostIDs, a
        certification authority serving one symlink per provisioned
        name, and (after ``publish(mirrors=...)``) an untrusted replica
        tier for the signed namespace image.  See the fleet module for
        the whole story; this is just the front door.
        """
        from ..fleet import Fleet  # runtime import: fleet builds on world

        return Fleet(self, count, name=name, **kwargs)

    def add_auth_fleet(self, count: int, name: str = "auth", **kwargs):
        """Spin up *count* sharded authservers (the scaled auth plane).

        Returns a :class:`repro.auth.AuthFleet`: N authserver machines
        whose user database is sharded by consistent hashing over user
        names, each shard's public half publishable as a signed
        read-only image that file servers import over SFS.  See
        PROTOCOLS.md section 16; this is just the front door.
        """
        from ..auth import AuthFleet  # runtime import: auth builds on world

        return AuthFleet(self, count, name=name, **kwargs)

    def route(self, location: str, server: ServerMachine) -> None:
        """Point *location* at *server* (DNS-style aliasing).

        This is how an untrusted mirror serves a read-only file system
        published for another Location: the name resolves to the mirror,
        and the self-certifying pathname still authenticates the data.
        """
        self.servers[location] = server

    # -- the dialer --

    def connector(self, location: str, service: int) -> LinkSide:
        """Dial an SFS server master by Location name."""
        server = self.servers.get(location)
        if server is None:
            raise ConnectionError(f"no route to host {location}")
        adversary = self.adversary_factory() if self.adversary_factory else None
        media = ({"a->b": server.nic_rx, "b->a": server.nic_tx}
                 if self.contention else None)
        client_side, server_side = link_pair(
            self.clock, self.link_params.get(location, self.lan_params),
            adversary, metrics=server.metrics, media=media,
            pipelined=self.pipelining,
        )
        client_side.link.location = location
        if self.pipelining:
            client_side.link.window_depth = self.pipeline_depth
        self._wire_pump(client_side)
        server.master.accept(server_side)
        self.links.append(client_side)
        return client_side
