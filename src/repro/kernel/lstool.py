"""`sfsls` — an ls -l that understands cross-realm names.

Renders directory listings through the kernel facade, formatting owners
and groups with libsfs when the directory lives on a remote SFS mount:
remote-only names appear as ``%name`` exactly as the paper describes
(section 3.3), local-matching names appear bare, and unknown ids appear
numerically.
"""

from __future__ import annotations

from ..core.libsfs import LibSfs, LocalAccounts
from ..core.pathnames import SFS_ROOT, parse_path
from ..nfs3 import const as nfs_const
from .vfs import Process, StatResult

_TYPE_CHARS = {
    nfs_const.NF3REG: "-",
    nfs_const.NF3DIR: "d",
    nfs_const.NF3LNK: "l",
}


def _mode_string(st: StatResult) -> str:
    bits = "rwxrwxrwx"
    rendered = "".join(
        bits[i] if st.mode & (0o400 >> i) else "-" for i in range(9)
    )
    return _TYPE_CHARS.get(st.ftype, "?") + rendered


def _libsfs_for(process: Process, directory: str,
                accounts: LocalAccounts) -> LibSfs | None:
    """A LibSfs bound to the mount serving *directory*, if it is SFS."""
    real = process.realpath(directory)
    if not real.startswith(SFS_ROOT + "/"):
        return None
    try:
        path = parse_path(real)
    except Exception:
        return None
    # Find the subordinate daemon serving this mount: kernel mounts tag
    # their programs, and MountedRemoteFs programs carry a back-pointer.
    mount = None
    for kernel_mount in process.kernel._mounts:
        program = kernel_mount.program
        if program is None:
            continue
        owner = getattr(program, "_sfs_mount", None)
        if owner is not None and kernel_mount.name.endswith(path.mount_name):
            mount = owner
            break
    if mount is None:
        return None
    return LibSfs(mount, accounts)


def sfsls(process: Process, directory: str,
          accounts: LocalAccounts | None = None) -> list[str]:
    """Render `ls -l` lines for *directory*."""
    accounts = accounts or LocalAccounts()
    libsfs = _libsfs_for(process, directory, accounts)
    lines = []
    for name in sorted(process.readdir(directory)):
        st = process.lstat(f"{directory.rstrip('/')}/{name}")
        if libsfs is not None:
            owner = libsfs.display_user(st.uid)
            group = libsfs.display_group(st.gid)
        else:
            owner = accounts.user_name(st.uid) or str(st.uid)
            group = accounts.group_name(st.gid) or str(st.gid)
        lines.append(
            f"{_mode_string(st)} {st.nlink:3d} {owner:>10s} {group:>10s} "
            f"{st.size:10d} {name}"
        )
    return lines
