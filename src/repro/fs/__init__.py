"""Local file system substrate: in-memory Unix fs + path helpers."""

from .memfs import (
    ACCESS_DELETE,
    ACCESS_EXECUTE,
    ACCESS_EXTEND,
    ACCESS_LOOKUP,
    ACCESS_MODIFY,
    ACCESS_READ,
    ANONYMOUS,
    Cred,
    FileData,
    FsError,
    Inode,
    MemFs,
    NF_DIR,
    NF_LNK,
    NF_REG,
)
from . import pathops

__all__ = [
    "ACCESS_DELETE",
    "ACCESS_EXECUTE",
    "ACCESS_EXTEND",
    "ACCESS_LOOKUP",
    "ACCESS_MODIFY",
    "ACCESS_READ",
    "ANONYMOUS",
    "Cred",
    "FileData",
    "FsError",
    "Inode",
    "MemFs",
    "NF_DIR",
    "NF_LNK",
    "NF_REG",
    "pathops",
]
