"""Path-level convenience operations over a :class:`MemFs`.

Server-side code (populating an export, building a certification
authority's link farm, seeding benchmark trees) wants plain path strings
rather than inode plumbing.  These helpers walk paths *without* following
symlinks across mounts — they operate on a single local file system, the
way a server-side admin tool would.
"""

from __future__ import annotations

from .memfs import (
    Cred,
    ERR_NOENT,
    FsError,
    Inode,
    MemFs,
    NF_DIR,
    NF_LNK,
)

_ROOT_CRED = Cred(uid=0, gid=0)


def _components(path: str) -> list[str]:
    parts = [part for part in path.split("/") if part]
    return parts


def resolve(fs: MemFs, path: str, cred: Cred = _ROOT_CRED,
            follow: bool = True, _depth: int = 0) -> Inode:
    """Resolve *path* (absolute, within this fs) to an inode.

    Follows symlinks up to a depth of 40 when *follow* is set; symlink
    targets are interpreted relative to the link's directory, with
    absolute targets restarting from this file system's root (targets
    pointing outside, e.g. into ``/sfs``, raise ``FsError(ERR_NOENT)``
    because a single local fs cannot cross mounts).
    """
    if _depth > 40:
        raise FsError(ERR_NOENT, "too many levels of symbolic links")
    inode = fs.get_inode(fs.root_ino)
    parts = _components(path)
    for index, part in enumerate(parts):
        inode = fs.lookup(inode.ino, part, cred)
        is_last = index == len(parts) - 1
        if inode.ftype == NF_LNK and (follow or not is_last):
            target = inode.target
            prefix = "/".join(parts[:index]) if target.startswith("/") is False else ""
            if target.startswith("/"):
                new_path = target + "/" + "/".join(parts[index + 1 :])
            else:
                new_path = "/" + prefix + "/" + target + "/" + "/".join(
                    parts[index + 1 :]
                )
            return resolve(fs, new_path, cred, follow=follow, _depth=_depth + 1)
    return inode


def mkdirs(fs: MemFs, path: str, cred: Cred = _ROOT_CRED, mode: int = 0o755) -> Inode:
    """Create *path* and any missing ancestors; returns the leaf inode."""
    inode = fs.get_inode(fs.root_ino)
    for part in _components(path):
        try:
            inode = fs.lookup(inode.ino, part, cred)
        except FsError as exc:
            if exc.code != ERR_NOENT:
                raise
            inode = fs.mkdir(inode.ino, part, cred, mode)
        if inode.ftype != NF_DIR:
            raise FsError(ERR_NOENT, f"{part} exists and is not a directory")
    return inode


def write_file(fs: MemFs, path: str, data: bytes, cred: Cred = _ROOT_CRED,
               mode: int = 0o644) -> Inode:
    """Create (or truncate) the file at *path* with *data*."""
    parts = _components(path)
    if not parts:
        raise FsError(ERR_NOENT, "empty path")
    parent = mkdirs(fs, "/".join(parts[:-1]), cred)
    inode = fs.create(parent.ino, parts[-1], cred, mode)
    fs.setattr(inode.ino, cred, size=0)
    fs.write(inode.ino, 0, data, cred)
    return inode


def read_file(fs: MemFs, path: str, cred: Cred = _ROOT_CRED) -> bytes:
    """Read the whole file at *path*."""
    inode = resolve(fs, path, cred)
    data, _eof = fs.read(inode.ino, 0, inode.size, cred)
    return data


def symlink(fs: MemFs, path: str, target: str, cred: Cred = _ROOT_CRED) -> Inode:
    """Create a symlink at *path* pointing to *target*."""
    parts = _components(path)
    if not parts:
        raise FsError(ERR_NOENT, "empty path")
    parent = mkdirs(fs, "/".join(parts[:-1]), cred)
    return fs.symlink(parent.ino, parts[-1], target, cred)


def listdir(fs: MemFs, path: str, cred: Cred = _ROOT_CRED) -> list[str]:
    """Names in the directory at *path* (without "." and "..")."""
    inode = resolve(fs, path, cred)
    entries, _eof = fs.readdir(inode.ino, cred)
    return [name for name, _ino, _cookie in entries if name not in (".", "..")]
