"""An in-memory Unix file system.

This is the storage substrate behind every NFS server in the repository —
the role FreeBSD's FFS played in the paper's testbed.  It implements
inodes, directories, symbolic links, Unix permission checks, atomic
rename, hard links, sparse files (block-granular, so the paper's
1,000-Mbyte sparse-read benchmark costs no memory), and device/inode
numbers "as many file utilities expect" (paper section 3.3).

Timing is optional: bind a :class:`repro.sim.disk.Disk` and the file
system charges simulated seek/transfer time, with synchronous metadata
updates (create/remove/rename pay a sync write, like FFS) and write-back
data.  Status codes deliberately match NFS version 3 error numbers so the
NFS server layer maps them one-to-one.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterator

from ..sim.disk import Disk

# File types (match NFS3 ftype3 values).
NF_REG = 1
NF_DIR = 2
NF_BLK = 3
NF_CHR = 4
NF_LNK = 5
NF_SOCK = 6
NF_FIFO = 7

# Status codes (match NFS3 nfsstat3 values).
OK = 0
ERR_PERM = 1
ERR_NOENT = 2
ERR_IO = 5
ERR_ACCES = 13
ERR_EXIST = 17
ERR_XDEV = 18
ERR_NOTDIR = 20
ERR_ISDIR = 21
ERR_INVAL = 22
ERR_FBIG = 27
ERR_NOSPC = 28
ERR_ROFS = 30
ERR_NAMETOOLONG = 63
ERR_NOTEMPTY = 66
ERR_STALE = 70
ERR_BADHANDLE = 10001
ERR_NOTSUPP = 10004

_NAME_MAX = 255
_BLOCK = 4096

# access() mask bits (match NFS3 ACCESS3_*).
ACCESS_READ = 0x01
ACCESS_LOOKUP = 0x02
ACCESS_MODIFY = 0x04
ACCESS_EXTEND = 0x08
ACCESS_DELETE = 0x10
ACCESS_EXECUTE = 0x20


class FsError(Exception):
    """A file system failure carrying an NFS3-compatible status code."""

    def __init__(self, code: int, message: str = "") -> None:
        super().__init__(message or f"fs error {code}")
        self.code = code


@dataclass(frozen=True)
class Cred:
    """Unix credentials used for permission checks."""

    uid: int = 0
    gid: int = 0
    groups: tuple[int, ...] = ()

    @property
    def is_superuser(self) -> bool:
        return self.uid == 0

    def in_group(self, gid: int) -> bool:
        return gid == self.gid or gid in self.groups


ANONYMOUS = Cred(uid=0xFFFE, gid=0xFFFE)


class FileData:
    """Sparse file contents stored as 4-KB blocks; holes read as zeros."""

    def __init__(self) -> None:
        self._blocks: dict[int, bytearray] = {}
        self.size = 0

    def read(self, offset: int, count: int) -> bytes:
        if offset >= self.size:
            return b""
        count = min(count, self.size - offset)
        out = bytearray(count)
        position = 0
        while position < count:
            absolute = offset + position
            block_index, block_offset = divmod(absolute, _BLOCK)
            take = min(_BLOCK - block_offset, count - position)
            block = self._blocks.get(block_index)
            if block is not None:
                out[position : position + take] = block[
                    block_offset : block_offset + take
                ]
            position += take
        return bytes(out)

    def write(self, offset: int, data: bytes) -> None:
        position = 0
        while position < len(data):
            absolute = offset + position
            block_index, block_offset = divmod(absolute, _BLOCK)
            take = min(_BLOCK - block_offset, len(data) - position)
            block = self._blocks.get(block_index)
            if block is None:
                block = bytearray(_BLOCK)
                self._blocks[block_index] = block
            block[block_offset : block_offset + take] = data[
                position : position + take
            ]
            position += take
        self.size = max(self.size, offset + len(data))

    def allocated_in(self, offset: int, count: int) -> int:
        """How many bytes in [offset, offset+count) are backed by blocks.

        Reads of holes cost no disk time — the paper's throughput test
        reads a sparse 1,000-MB file precisely to avoid the disk.
        """
        if count <= 0:
            return 0
        first = offset // _BLOCK
        last = (offset + count - 1) // _BLOCK
        return sum(
            _BLOCK for index in range(first, last + 1)
            if index in self._blocks
        )

    def truncate(self, size: int) -> None:
        if size < self.size:
            last_block, last_offset = divmod(size, _BLOCK)
            for index in [i for i in self._blocks if i > last_block]:
                del self._blocks[index]
            if last_offset and last_block in self._blocks:
                block = self._blocks[last_block]
                block[last_offset:] = bytes(_BLOCK - last_offset)
            elif not last_offset:
                self._blocks.pop(last_block, None)
        self.size = size

    @property
    def allocated_bytes(self) -> int:
        return len(self._blocks) * _BLOCK

    def checksum(self) -> int:
        """CRC-32 over size and allocated blocks (holes excluded).

        Walking only allocated blocks keeps this affordable for the
        paper's 1,000-MB sparse benchmark file.
        """
        crc = zlib.crc32(self.size.to_bytes(8, "big"))
        for index in sorted(self._blocks):
            crc = zlib.crc32(index.to_bytes(8, "big"), crc)
            crc = zlib.crc32(bytes(self._blocks[index]), crc)
        return crc


@dataclass
class Inode:
    """One file system object."""

    ino: int
    ftype: int
    mode: int
    uid: int
    gid: int
    nlink: int = 1
    atime: int = 0
    mtime: int = 0
    ctime: int = 0
    generation: int = 1
    data: FileData | None = None
    entries: dict[str, int] | None = None
    parent: int = 0  # directories remember their parent for ".."
    target: str = ""  # symlink target
    rdev: tuple[int, int] = (0, 0)

    @property
    def size(self) -> int:
        if self.ftype == NF_REG:
            assert self.data is not None
            return self.data.size
        if self.ftype == NF_LNK:
            return len(self.target)
        if self.ftype == NF_DIR:
            assert self.entries is not None
            return 512 + 24 * len(self.entries)
        return 0

    @property
    def is_dir(self) -> bool:
        return self.ftype == NF_DIR


@dataclass
class _UndoRecord:
    """Enough state to reverse one un-committed data write."""

    offset: int
    old_data: bytes
    old_size: int
    new_bytes: int


@dataclass
class JournalRecord:
    """One committed flush: what the file looked like when it became
    durable.  Recovery verifies the latest record per inode against the
    post-rollback contents — a torn record is discarded instead."""

    seq: int
    ino: int
    generation: int
    size: int
    crc: int
    torn: bool = field(default=False)


class BufferCache:
    """A block-granular buffer cache for disk-time accounting.

    Tracks which (inode, block) pairs are resident in server memory:
    reads of resident blocks cost no disk time; misses charge the disk
    and insert.  Simple FIFO eviction at a fixed capacity, standing in
    for the machine's page cache (the paper's server had 256 MB).
    """

    def __init__(self, capacity_blocks: int = 16384) -> None:
        self._capacity = capacity_blocks
        self._resident: dict[tuple[int, int], None] = {}

    def contains(self, ino: int, block: int) -> bool:
        return (ino, block) in self._resident

    def insert(self, ino: int, block: int) -> None:
        key = (ino, block)
        if key in self._resident:
            return
        if len(self._resident) >= self._capacity:
            oldest = next(iter(self._resident))
            del self._resident[oldest]
        self._resident[key] = None

    def evict_inode(self, ino: int) -> None:
        for key in [k for k in self._resident if k[0] == ino]:
            del self._resident[key]


class MemFs:
    """The file system proper; all methods take inode numbers."""

    def __init__(
        self,
        fsid: int = 1,
        disk: Disk | None = None,
        read_only: bool = False,
        total_bytes: int = 8 << 30,
    ) -> None:
        self.fsid = fsid
        self.disk = disk
        self.read_only = read_only
        self.total_bytes = total_bytes
        self.buffer_cache = BufferCache()
        self._inodes: dict[int, Inode] = {}
        self._next_ino = 2
        self._time = 1
        # Durability split: data writes are volatile until a flush
        # (COMMIT, FILE_SYNC write, or truncate) makes them durable.
        # The undo log reverses whatever a crash would lose; the
        # journal records what each flush made durable.
        self._uncommitted: dict[int, list[_UndoRecord]] = {}
        self._journal: list[JournalRecord] = []
        self._journal_seq = 0
        self.lost_writes = 0
        self.lost_bytes = 0
        self.torn_flushes = 0
        root = Inode(
            ino=2, ftype=NF_DIR, mode=0o755, uid=0, gid=0, nlink=2,
            entries={}, parent=2,
        )
        self._inodes[2] = root
        self.root_ino = 2

    # --- internals --------------------------------------------------------

    def _now(self) -> int:
        self._time += 1
        return self._time

    def _alloc_ino(self) -> int:
        self._next_ino += 1
        return self._next_ino

    def get_inode(self, ino: int) -> Inode:
        """Look up an inode by number (ERR_STALE if it no longer exists)."""
        inode = self._inodes.get(ino)
        if inode is None:
            raise FsError(ERR_STALE, f"stale inode {ino}")
        return inode

    def _check_name(self, name: str) -> None:
        if not name or name in (".", "..") or "/" in name or "\x00" in name:
            raise FsError(ERR_INVAL, f"invalid name {name!r}")
        if len(name) > _NAME_MAX:
            raise FsError(ERR_NAMETOOLONG, name)

    def _check_writable_fs(self) -> None:
        if self.read_only:
            raise FsError(ERR_ROFS, "read-only file system")

    def _permission_bits(self, inode: Inode, cred: Cred) -> int:
        """The rwx bits that apply to *cred* for *inode*."""
        if cred.uid == inode.uid:
            return (inode.mode >> 6) & 7
        if cred.in_group(inode.gid):
            return (inode.mode >> 3) & 7
        return inode.mode & 7

    def _require(self, inode: Inode, cred: Cred, want: int) -> None:
        """*want* is an rwx bitmask: 4 read, 2 write, 1 execute/search."""
        if want & 2:
            # Not even the superuser writes to a read-only file system.
            self._check_writable_fs()
        if cred.is_superuser:
            # Even root needs the file to be executable by someone for x.
            if want & 1 and inode.ftype == NF_REG and not inode.mode & 0o111:
                raise FsError(ERR_ACCES, "not executable")
            return
        bits = self._permission_bits(inode, cred)
        if want & ~bits:
            raise FsError(ERR_ACCES, f"need {want:o}, have {bits:o}")

    def _charge_read(self, inode: Inode, nbytes: int) -> None:
        if self.disk is not None:
            self.disk.read(inode.ino * 16, max(nbytes, 512))

    def _charge_write(self, inode: Inode, nbytes: int, sync: bool) -> None:
        if self.disk is not None:
            self.disk.write(inode.ino * 16, max(nbytes, 512), sync=sync,
                            tag=inode.ino)

    def _charge_meta(self) -> None:
        """Synchronous metadata update (FFS-style)."""
        if self.disk is not None:
            self.disk.write(1, 512, sync=True)

    # --- durability --------------------------------------------------------

    def _log_undo(self, inode: Inode, offset: int, length: int) -> None:
        """Capture the bytes an un-committed write is about to replace."""
        assert inode.data is not None
        old_size = inode.data.size
        overlap = max(0, min(old_size - offset, length))
        old_data = inode.data.read(offset, overlap) if overlap else b""
        self._uncommitted.setdefault(inode.ino, []).append(
            _UndoRecord(offset, old_data, old_size, length)
        )

    def _journal_append(self, inode: Inode) -> JournalRecord:
        assert inode.data is not None
        self._journal_seq += 1
        record = JournalRecord(
            seq=self._journal_seq, ino=inode.ino,
            generation=inode.generation, size=inode.data.size,
            crc=inode.data.checksum(),
        )
        self._journal.append(record)
        return record

    def _note_flush(self, inode: Inode) -> None:
        """Writes to *inode* just became durable (time already charged).

        Appends a journal record and clears the undo log — unless the
        disk reports the flush tore, in which case the record is marked
        torn and the undo log survives so a later crash still rolls the
        data back.
        """
        record = self._journal_append(inode)
        if self.disk is not None and self.disk.consume_torn():
            record.torn = True
            self.torn_flushes += 1
            return
        self._uncommitted.pop(inode.ino, None)
        if self.disk is not None:
            self.disk.mark_flushed(inode.ino)

    @property
    def dirty_inodes(self) -> frozenset[int]:
        """Inodes with writes a crash would lose."""
        return frozenset(self._uncommitted)

    @property
    def journal(self) -> tuple[JournalRecord, ...]:
        return tuple(self._journal)

    def crash(self) -> dict[str, int]:
        """Power failure: volatile state evaporates.

        Every un-committed write is rolled back (in reverse order, so
        overlapping writes unwind correctly), the buffer cache and the
        disk's write-back cache are dropped, and the loss is tallied.
        Returns a report; callers bridge it into their metrics.
        """
        lost_writes = lost_bytes = 0
        for ino, undos in list(self._uncommitted.items()):
            inode = self._inodes.get(ino)
            if inode is not None and inode.data is not None:
                for undo in reversed(undos):
                    if undo.old_data:
                        inode.data.write(undo.offset, undo.old_data)
                    inode.data.truncate(undo.old_size)
            lost_writes += len(undos)
            lost_bytes += sum(undo.new_bytes for undo in undos)
        self._uncommitted.clear()
        self.buffer_cache = BufferCache()
        disk_lost = self.disk.crash() if self.disk is not None else 0
        self.lost_writes += lost_writes
        self.lost_bytes += lost_bytes
        return {
            "lost_writes": lost_writes,
            "lost_bytes": lost_bytes,
            "disk_lost_writes": disk_lost,
        }

    def recover(self) -> dict[str, int]:
        """Journal recovery after a crash: drop torn records, verify
        that the latest surviving record per inode matches the data.

        A mismatch would mean the rollback left durable state that
        disagrees with what a flush promised — the invariant the
        crash-consistency tests pin down (``mismatched == 0``).
        """
        torn = [r for r in self._journal if r.torn]
        self._journal = [r for r in self._journal if not r.torn]
        latest: dict[int, JournalRecord] = {}
        for record in self._journal:
            latest[record.ino] = record
        verified = mismatched = 0
        for ino, record in latest.items():
            inode = self._inodes.get(ino)
            if (inode is None or inode.data is None
                    or inode.generation != record.generation):
                continue  # file since removed or replaced; record is moot
            if (inode.data.checksum() == record.crc
                    and inode.data.size == record.size):
                verified += 1
            else:
                mismatched += 1
        return {
            "verified": verified,
            "mismatched": mismatched,
            "dropped_torn": len(torn),
        }

    # --- lookups and attributes -------------------------------------------

    def lookup(self, dir_ino: int, name: str, cred: Cred) -> Inode:
        """Resolve *name* inside directory *dir_ino*."""
        directory = self.get_inode(dir_ino)
        if not directory.is_dir:
            raise FsError(ERR_NOTDIR)
        self._require(directory, cred, 1)
        if name == ".":
            return directory
        if name == "..":
            return self.get_inode(directory.parent)
        assert directory.entries is not None
        child_ino = directory.entries.get(name)
        if child_ino is None:
            raise FsError(ERR_NOENT, name)
        return self.get_inode(child_ino)

    def access(self, ino: int, cred: Cred, mask: int) -> int:
        """NFS3-style ACCESS: which of *mask*'s bits are granted."""
        inode = self.get_inode(ino)
        granted = 0
        if cred.is_superuser:
            granted = mask
            if inode.ftype == NF_REG and not inode.mode & 0o111:
                granted &= ~ACCESS_EXECUTE
            if self.read_only:
                granted &= ~(ACCESS_MODIFY | ACCESS_EXTEND | ACCESS_DELETE)
            return granted
        bits = self._permission_bits(inode, cred)
        if bits & 4:
            granted |= mask & ACCESS_READ
        if bits & 2 and not self.read_only:
            granted |= mask & (ACCESS_MODIFY | ACCESS_EXTEND | ACCESS_DELETE)
        if bits & 1:
            granted |= mask & (ACCESS_LOOKUP | ACCESS_EXECUTE)
        return granted

    def setattr(
        self,
        ino: int,
        cred: Cred,
        mode: int | None = None,
        uid: int | None = None,
        gid: int | None = None,
        size: int | None = None,
        atime: int | None = None,
        mtime: int | None = None,
    ) -> Inode:
        """chmod/chown/truncate/utimes in one call, like NFS SETATTR."""
        inode = self.get_inode(ino)
        self._check_writable_fs()
        is_owner = cred.is_superuser or cred.uid == inode.uid
        if mode is not None:
            if not is_owner:
                raise FsError(ERR_PERM, "chmod requires ownership")
            inode.mode = mode & 0o7777
        if uid is not None and uid != inode.uid:
            if not cred.is_superuser:
                raise FsError(ERR_PERM, "chown requires superuser")
            inode.uid = uid
        if gid is not None and gid != inode.gid:
            if not (cred.is_superuser or (cred.uid == inode.uid and cred.in_group(gid))):
                raise FsError(ERR_PERM, "chgrp requires ownership + membership")
            inode.gid = gid
        if size is not None:
            if inode.ftype != NF_REG:
                raise FsError(ERR_INVAL, "truncate on non-file")
            self._require(inode, cred, 2)
            assert inode.data is not None
            # Truncate is a synchronous metadata update, so pending
            # data writes ride to durability with it; flushing them
            # first keeps the undo log from spanning the size change.
            self._uncommitted.pop(inode.ino, None)
            if self.disk is not None:
                self.disk.mark_flushed(inode.ino)
            inode.data.truncate(size)
            inode.mtime = self._now()
            self._journal_append(inode)
        if atime is not None:
            if not is_owner:
                raise FsError(ERR_PERM)
            inode.atime = atime
        if mtime is not None:
            if not is_owner:
                raise FsError(ERR_PERM)
            inode.mtime = mtime
        inode.ctime = self._now()
        self._charge_meta()
        return inode

    # --- creation ----------------------------------------------------------

    def _add_entry(self, directory: Inode, name: str, child: Inode) -> None:
        assert directory.entries is not None
        directory.entries[name] = child.ino
        directory.mtime = directory.ctime = self._now()

    def _prepare_create(self, dir_ino: int, name: str, cred: Cred) -> Inode:
        self._check_name(name)
        self._check_writable_fs()
        directory = self.get_inode(dir_ino)
        if not directory.is_dir:
            raise FsError(ERR_NOTDIR)
        self._require(directory, cred, 3)  # write + search
        assert directory.entries is not None
        if name in directory.entries:
            raise FsError(ERR_EXIST, name)
        return directory

    def create(self, dir_ino: int, name: str, cred: Cred, mode: int = 0o644,
               exclusive: bool = False) -> Inode:
        """Create a regular file.  Non-exclusive create of an existing
        file returns the existing file (NFS UNCHECKED semantics)."""
        self._check_name(name)
        self._check_writable_fs()
        directory = self.get_inode(dir_ino)
        if not directory.is_dir:
            raise FsError(ERR_NOTDIR)
        assert directory.entries is not None
        if name in directory.entries:
            if exclusive:
                raise FsError(ERR_EXIST, name)
            existing = self.get_inode(directory.entries[name])
            if existing.is_dir:
                raise FsError(ERR_ISDIR, name)
            return existing
        self._require(directory, cred, 3)
        now = self._now()
        inode = Inode(
            ino=self._alloc_ino(), ftype=NF_REG, mode=mode & 0o7777,
            uid=cred.uid, gid=directory.gid, data=FileData(),
            atime=now, mtime=now, ctime=now,
        )
        self._inodes[inode.ino] = inode
        self._add_entry(directory, name, inode)
        self._charge_meta()
        return inode

    def mkdir(self, dir_ino: int, name: str, cred: Cred, mode: int = 0o755) -> Inode:
        directory = self._prepare_create(dir_ino, name, cred)
        now = self._now()
        inode = Inode(
            ino=self._alloc_ino(), ftype=NF_DIR, mode=mode & 0o7777,
            uid=cred.uid, gid=directory.gid, nlink=2, entries={},
            parent=directory.ino, atime=now, mtime=now, ctime=now,
        )
        self._inodes[inode.ino] = inode
        self._add_entry(directory, name, inode)
        directory.nlink += 1
        self._charge_meta()
        return inode

    def symlink(self, dir_ino: int, name: str, target: str, cred: Cred) -> Inode:
        directory = self._prepare_create(dir_ino, name, cred)
        now = self._now()
        inode = Inode(
            ino=self._alloc_ino(), ftype=NF_LNK, mode=0o777,
            uid=cred.uid, gid=directory.gid, target=target,
            atime=now, mtime=now, ctime=now,
        )
        self._inodes[inode.ino] = inode
        self._add_entry(directory, name, inode)
        self._charge_meta()
        return inode

    def link(self, file_ino: int, dir_ino: int, name: str, cred: Cred) -> Inode:
        """Create a hard link to an existing non-directory."""
        inode = self.get_inode(file_ino)
        if inode.is_dir:
            raise FsError(ERR_ISDIR, "cannot hard-link directories")
        directory = self._prepare_create(dir_ino, name, cred)
        self._add_entry(directory, name, inode)
        inode.nlink += 1
        inode.ctime = self._now()
        self._charge_meta()
        return inode

    def readlink(self, ino: int, cred: Cred) -> str:
        inode = self.get_inode(ino)
        if inode.ftype != NF_LNK:
            raise FsError(ERR_INVAL, "not a symlink")
        return inode.target

    # --- data --------------------------------------------------------------

    def read(self, ino: int, offset: int, count: int, cred: Cred) -> tuple[bytes, bool]:
        """Read file data; returns (data, eof)."""
        inode = self.get_inode(ino)
        if inode.is_dir:
            raise FsError(ERR_ISDIR)
        if inode.ftype != NF_REG:
            raise FsError(ERR_INVAL)
        self._require(inode, cred, 4)
        assert inode.data is not None
        data = inode.data.read(offset, count)
        inode.atime = self._now()
        self._charge_data_read(inode, offset, len(data))
        return data, offset + len(data) >= inode.data.size

    def _charge_data_read(self, inode: Inode, offset: int, count: int) -> None:
        """Charge disk time for allocated, non-resident blocks only.

        Holes cost nothing (sparse files never touch the disk) and
        buffer-cache hits cost nothing (reads of recently written or
        recently read data are served from server memory).
        """
        if self.disk is None or count <= 0:
            return
        assert inode.data is not None
        first = offset // _BLOCK
        last = (offset + count - 1) // _BLOCK
        miss_bytes = 0
        for block in range(first, last + 1):
            if block not in inode.data._blocks:
                continue
            if self.buffer_cache.contains(inode.ino, block):
                continue
            self.buffer_cache.insert(inode.ino, block)
            miss_bytes += _BLOCK
        if miss_bytes:
            self._charge_read(inode, miss_bytes)

    def write(self, ino: int, offset: int, data: bytes, cred: Cred,
              sync: bool = False) -> int:
        """Write file data; returns the byte count written."""
        inode = self.get_inode(ino)
        if inode.is_dir:
            raise FsError(ERR_ISDIR)
        if inode.ftype != NF_REG:
            raise FsError(ERR_INVAL)
        self._require(inode, cred, 2)
        assert inode.data is not None
        if offset + len(data) > self.total_bytes:
            raise FsError(ERR_FBIG)
        if not sync:
            self._log_undo(inode, offset, len(data))
        inode.data.write(offset, data)
        inode.mtime = inode.ctime = self._now()
        for block in range(offset // _BLOCK, (offset + len(data)) // _BLOCK + 1):
            self.buffer_cache.insert(inode.ino, block)
        self._charge_write(inode, len(data), sync)
        if sync:
            # FILE_SYNC makes the whole file's pending writes durable
            # (conservative: NFS3 only requires this write's bytes).
            self._note_flush(inode)
        return len(data)

    def commit(self, ino: int) -> None:
        """Flush cached writes for a file (NFS COMMIT)."""
        inode = self.get_inode(ino)
        if inode.ftype != NF_REG:
            return
        assert inode.data is not None
        if self.disk is not None:
            self.disk.sync(inode.data.allocated_bytes, tag=inode.ino)
        self._note_flush(inode)

    # --- removal and rename --------------------------------------------------

    def remove(self, dir_ino: int, name: str, cred: Cred) -> None:
        """Unlink a non-directory."""
        self._check_name(name)
        self._check_writable_fs()
        directory = self.get_inode(dir_ino)
        self._require(directory, cred, 3)
        assert directory.entries is not None
        child_ino = directory.entries.get(name)
        if child_ino is None:
            raise FsError(ERR_NOENT, name)
        child = self.get_inode(child_ino)
        if child.is_dir:
            raise FsError(ERR_ISDIR, name)
        del directory.entries[name]
        directory.mtime = directory.ctime = self._now()
        child.nlink -= 1
        child.ctime = self._now()
        if child.nlink == 0:
            del self._inodes[child_ino]
            # The blocks are freed durably with the metadata update;
            # there is nothing left for a crash to lose or roll back.
            self._uncommitted.pop(child_ino, None)
            if self.disk is not None:
                self.disk.mark_flushed(child_ino)
        self._charge_meta()

    def rmdir(self, dir_ino: int, name: str, cred: Cred) -> None:
        self._check_name(name)
        self._check_writable_fs()
        directory = self.get_inode(dir_ino)
        self._require(directory, cred, 3)
        assert directory.entries is not None
        child_ino = directory.entries.get(name)
        if child_ino is None:
            raise FsError(ERR_NOENT, name)
        child = self.get_inode(child_ino)
        if not child.is_dir:
            raise FsError(ERR_NOTDIR, name)
        assert child.entries is not None
        if child.entries:
            raise FsError(ERR_NOTEMPTY, name)
        del directory.entries[name]
        directory.nlink -= 1
        directory.mtime = directory.ctime = self._now()
        del self._inodes[child_ino]
        self._charge_meta()

    def rename(self, from_dir: int, from_name: str, to_dir: int, to_name: str,
               cred: Cred) -> None:
        """Atomic rename, replacing any compatible target."""
        self._check_name(from_name)
        self._check_name(to_name)
        self._check_writable_fs()
        source_dir = self.get_inode(from_dir)
        target_dir = self.get_inode(to_dir)
        if not source_dir.is_dir or not target_dir.is_dir:
            raise FsError(ERR_NOTDIR)
        self._require(source_dir, cred, 3)
        self._require(target_dir, cred, 3)
        assert source_dir.entries is not None and target_dir.entries is not None
        moving_ino = source_dir.entries.get(from_name)
        if moving_ino is None:
            raise FsError(ERR_NOENT, from_name)
        moving = self.get_inode(moving_ino)
        if moving.is_dir:
            # Refuse to move a directory into its own subtree.
            probe = target_dir
            while True:
                if probe.ino == moving.ino:
                    raise FsError(ERR_INVAL, "rename into own subtree")
                if probe.ino == probe.parent:
                    break
                probe = self.get_inode(probe.parent)
        existing_ino = target_dir.entries.get(to_name)
        if existing_ino is not None:
            if existing_ino == moving_ino:
                return
            existing = self.get_inode(existing_ino)
            if existing.is_dir:
                if not moving.is_dir:
                    raise FsError(ERR_ISDIR, to_name)
                assert existing.entries is not None
                if existing.entries:
                    raise FsError(ERR_NOTEMPTY, to_name)
                self.rmdir(to_dir, to_name, cred)
            else:
                if moving.is_dir:
                    raise FsError(ERR_NOTDIR, to_name)
                self.remove(to_dir, to_name, cred)
        del source_dir.entries[from_name]
        target_dir.entries[to_name] = moving_ino
        if moving.is_dir and from_dir != to_dir:
            moving.parent = target_dir.ino
            source_dir.nlink -= 1
            target_dir.nlink += 1
        now = self._now()
        source_dir.mtime = source_dir.ctime = now
        target_dir.mtime = target_dir.ctime = now
        moving.ctime = now
        self._charge_meta()

    # --- directory listing ----------------------------------------------------

    def readdir(self, dir_ino: int, cred: Cred, cookie: int = 0,
                count: int = 1 << 16) -> tuple[list[tuple[str, int, int]], bool]:
        """List entries; returns ([(name, ino, cookie)], eof).

        Cookies are 1-based positions in the (stable) insertion order;
        "." and ".." occupy cookies 1 and 2.
        """
        directory = self.get_inode(dir_ino)
        if not directory.is_dir:
            raise FsError(ERR_NOTDIR)
        self._require(directory, cred, 4)
        assert directory.entries is not None
        all_entries: list[tuple[str, int]] = [
            (".", directory.ino),
            ("..", directory.parent),
        ]
        all_entries.extend(directory.entries.items())
        out = []
        consumed = 0
        for position, (name, ino) in enumerate(all_entries, start=1):
            if position <= cookie:
                continue
            cost = 24 + len(name)
            if consumed + cost > count and out:
                return out, False
            out.append((name, ino, position))
            consumed += cost
        self._charge_read(directory, consumed or 512)
        return out, True

    def statfs(self) -> dict[str, int]:
        """Aggregate file system statistics (NFS FSSTAT)."""
        used = sum(
            inode.data.allocated_bytes
            for inode in self._inodes.values()
            if inode.ftype == NF_REG and inode.data is not None
        )
        return {
            "tbytes": self.total_bytes,
            "fbytes": max(0, self.total_bytes - used),
            "abytes": max(0, self.total_bytes - used),
            "tfiles": 1 << 20,
            "ffiles": (1 << 20) - len(self._inodes),
            "afiles": (1 << 20) - len(self._inodes),
        }

    def iter_inodes(self) -> Iterator[Inode]:
        """All live inodes (used by the read-only digest builder)."""
        return iter(self._inodes.values())
