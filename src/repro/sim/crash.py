"""Crash-point fault injection: whole-server failures on a schedule.

PR 1's adversaries corrupt the *wire*; this module kills the *machine*.
A :class:`CrashInjector` is armed with a schedule of named crash points
— places in the server code annotated with ``injector.hit(point)`` — and
when an armed hit count is reached it first runs the crash callback
(which closes every link the server holds, exactly what power loss does
to TCP connections) and then raises :class:`ServerCrashed` to unwind the
server out of whatever it was doing.

Because delivery in the simulator is synchronous, the unwind is visible
to the client as its own ``send`` failing: the server's attempt to reply
over the now-closed link raises ``LinkDown``, which propagates back down
the nested delivery stack into the caller.  No reply is ever generated —
the same observable as a real crash, where the response packet simply
never arrives.

Crash points are deliberately few and named for the protocol window they
interrupt (see docs/PROTOCOLS.md, "Crash and recovery semantics"):

* ``mid-handshake``  — inside ENCRYPT, after key agreement, before the
  reply carrying the server's key halves is sent;
* ``after-write``    — after a WRITE has been applied to the file
  system, before its reply (client must replay; data was volatile);
* ``before-commit``  — just before a COMMIT executes (preceding
  unstable writes are provably lost);
* ``lease-fanout``   — while invalidation callbacks are being sent to
  lease holders;
* ``mid-resync``     — while serving a channel resync control record.
"""

from __future__ import annotations

from typing import Callable, Iterable

#: The named crash points the server code instruments.
CRASH_POINTS = (
    "mid-handshake",
    "after-write",
    "before-commit",
    "lease-fanout",
    "mid-resync",
)


class ServerCrashed(ConnectionError):
    """The simulated server lost power at a crash point.

    A :class:`ConnectionError` because that is what the failure looks
    like from every observer's perspective: connections are gone and
    nothing on the machine answers.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"server crashed at {point} (hit {hit})")
        self.point = point
        self.hit = hit


class CrashInjector:
    """Schedules :class:`ServerCrashed` faults at named crash points.

    *schedule* is an iterable of ``(point, nth)`` pairs: crash on the
    *nth* time (1-based) execution reaches *point*.  The same point may
    appear several times with different counts (crash, recover, crash
    again).  ``on_crash(point)`` runs before the exception is raised so
    the machine's links are already dead when the unwind starts.
    """

    def __init__(self, schedule: Iterable[tuple[str, int]] = (),
                 on_crash: Callable[[str], None] | None = None) -> None:
        self._armed: dict[str, list[int]] = {}
        for point, nth in schedule:
            if point not in CRASH_POINTS:
                raise ValueError(f"unknown crash point: {point!r}")
            if nth < 1:
                raise ValueError("hit counts are 1-based")
            self._armed.setdefault(point, []).append(nth)
        for counts in self._armed.values():
            counts.sort()
        self.on_crash = on_crash
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, int]] = []

    def arm(self, point: str, nth: int = 1) -> None:
        """Add one more scheduled crash (e.g. between test phases)."""
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point: {point!r}")
        counts = self._armed.setdefault(point, [])
        counts.append(nth)
        counts.sort()

    @property
    def pending(self) -> int:
        """Scheduled crashes that have not fired yet."""
        return sum(len(counts) for counts in self._armed.values())

    def hit(self, point: str) -> None:
        """Record that execution reached *point*; crash if scheduled."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        counts = self._armed.get(point)
        if not counts or counts[0] != count:
            return
        counts.pop(0)
        self.fired.append((point, count))
        if self.on_crash is not None:
            self.on_crash(point)
        raise ServerCrashed(point, count)
