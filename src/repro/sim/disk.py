"""A simple disk timing model.

Models a late-90s SCSI disk (the paper used an IBM 18ES): average seek,
half-rotation latency, and sequential transfer bandwidth, with a
write-back cache so that only synchronous operations (file closes, NFS
COMMIT, metadata updates in FFS) pay the mechanical cost immediately.

The model does not simulate data placement; it distinguishes sequential
from random access by whether the accessed block follows the previous
one, which captures the paper's observation that "disk seeks push
throughput below 1 Mbyte/sec on anything but sequential accesses".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.registry import NULL_REGISTRY
from .clock import Clock


@dataclass
class DiskParameters:
    """Timing constants (seconds / bytes-per-second)."""

    average_seek: float = 0.0065
    rotational_latency: float = 0.003
    transfer_rate: float = 12_500_000.0  # ~12.5 MB/s sequential media rate
    block_size: int = 8192

    @classmethod
    def ibm_18es(cls) -> "DiskParameters":
        """The 9 GB SCSI disk from the paper's testbed (approximate)."""
        return cls()


class Disk:
    """Charges simulated time for disk requests against a :class:`Clock`.

    The write-back cache is modelled explicitly: asynchronous writes
    enter a dirty set (keyed by caller-supplied *tag*, typically an
    inode number) and leave it only when a sync covers their tag.  A
    :meth:`crash` empties the cache, so whatever was dirty is counted
    as lost — the honest version of "async writes cost nothing now".
    """

    def __init__(self, clock: Clock, params: DiskParameters | None = None,
                 metrics=None) -> None:
        self._clock = clock
        self._params = params or DiskParameters()
        self._last_block: int | None = None
        self.reads = 0
        self.writes = 0
        self.syncs = 0
        #: dirty write-back cache: tag -> count of un-flushed writes
        self._dirty: dict[int, int] = {}
        self._torn_countdown = 0
        self._torn_pending = False
        self.torn_syncs = 0
        self.lost_writes = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_reads = self._metrics.counter("disk.reads")
        self._m_writes = self._metrics.counter("disk.writes")
        self._m_syncs = self._metrics.counter("disk.syncs")
        self._m_lost = self._metrics.counter("disk.lost_writes")
        self._m_torn = self._metrics.counter("disk.torn_syncs")

    @property
    def params(self) -> DiskParameters:
        return self._params

    def _access(self, block: int, nbytes: int) -> None:
        layers = self._metrics.layers
        layers.push("disk")
        try:
            params = self._params
            sequential = (self._last_block is not None
                          and block == self._last_block + 1)
            if not sequential:
                self._clock.advance(
                    params.average_seek + params.rotational_latency
                )
            self._clock.advance(nbytes / params.transfer_rate)
            self._last_block = block + max(0, (nbytes - 1) // params.block_size)
        finally:
            layers.pop()

    def read(self, block: int, nbytes: int) -> None:
        """Charge for a read of *nbytes* starting at *block*."""
        self.reads += 1
        self._m_reads.inc()
        self._access(block, nbytes)

    def write(self, block: int, nbytes: int, sync: bool = False,
              tag: int = 0) -> None:
        """Charge for a write; asynchronous writes cost nothing now.

        Asynchronous writes land in the write-back cache (dirty under
        *tag*) and are assumed to be flushed during otherwise-idle
        rotations, mirroring how the paper's FFS hides async data
        writes but pays for sync metadata.  They stay dirty until a
        :meth:`sync` covers them — or a :meth:`crash` loses them.
        """
        self.writes += 1
        self._m_writes.inc()
        if sync:
            self.syncs += 1
            self._m_syncs.inc()
            self._access(block, nbytes)
        else:
            self._dirty[tag] = self._dirty.get(tag, 0) + 1

    def sync(self, nbytes: int = 0, tag: int | None = None) -> None:
        """Charge for an explicit flush of *nbytes* of dirty data.

        With *tag* given only that tag's dirty writes are flushed (an
        NFS COMMIT covers one file); without it the whole cache drains.
        """
        self.syncs += 1
        self._m_syncs.inc()
        if not self._mark_synced():
            if tag is None:
                self._dirty.clear()
            else:
                self._dirty.pop(tag, None)
        layers = self._metrics.layers
        layers.push("disk")
        try:
            params = self._params
            self._clock.advance(params.average_seek + params.rotational_latency)
            if nbytes:
                self._clock.advance(nbytes / params.transfer_rate)
            self._last_block = None
        finally:
            layers.pop()

    # -- failure model --

    def arm_torn_write(self, countdown: int = 1) -> None:
        """Make the *countdown*-th subsequent explicit :meth:`sync` tear.

        A torn flush charges its full mechanical cost but does not make
        the data durable: the dirty set keeps its entries and the
        caller can observe the tear with :meth:`consume_torn` (MemFs
        marks the matching journal record so recovery discards it).
        Synchronous writes (metadata, FILE_SYNC data) never tear — only
        the multi-block cache flush behind COMMIT is at risk, which is
        the scenario journaling exists for.
        """
        if countdown < 1:
            raise ValueError("countdown is 1-based")
        self._torn_countdown = countdown

    def _mark_synced(self) -> bool:
        """Account one flush against the torn-write schedule.

        Returns True if this flush tore (in which case the dirty set
        must NOT be cleared by the caller path).
        """
        if self._torn_countdown > 0:
            self._torn_countdown -= 1
            if self._torn_countdown == 0:
                self._torn_pending = True
                self.torn_syncs += 1
                self._m_torn.inc()
                return True
        return False

    def consume_torn(self) -> bool:
        """Report and clear whether the last sync tore."""
        torn = self._torn_pending
        self._torn_pending = False
        return torn

    def dirty_writes(self, tag: int | None = None) -> int:
        """Count of un-flushed writes (for *tag*, or in total)."""
        if tag is not None:
            return self._dirty.get(tag, 0)
        return sum(self._dirty.values())

    def mark_flushed(self, tag: int) -> None:
        """Bookkeeping only: *tag*'s dirty writes became durable via a
        path that already charged its own time (a FILE_SYNC data write,
        a file removal freeing the blocks)."""
        self._dirty.pop(tag, None)

    def crash(self) -> int:
        """Power loss: the write-back cache evaporates.

        Returns the number of dirty writes lost (also counted on the
        ``disk.lost_writes`` metric).  Charges no time — a crash is
        instantaneous as far as the disk arm is concerned.
        """
        lost = sum(self._dirty.values())
        self._dirty.clear()
        self._last_block = None
        self._torn_pending = False
        if lost:
            self.lost_writes += lost
            self._m_lost.inc(lost)
        return lost
