"""A simple disk timing model.

Models a late-90s SCSI disk (the paper used an IBM 18ES): average seek,
half-rotation latency, and sequential transfer bandwidth, with a
write-back cache so that only synchronous operations (file closes, NFS
COMMIT, metadata updates in FFS) pay the mechanical cost immediately.

The model does not simulate data placement; it distinguishes sequential
from random access by whether the accessed block follows the previous
one, which captures the paper's observation that "disk seeks push
throughput below 1 Mbyte/sec on anything but sequential accesses".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.registry import NULL_REGISTRY
from .clock import Clock


@dataclass
class DiskParameters:
    """Timing constants (seconds / bytes-per-second)."""

    average_seek: float = 0.0065
    rotational_latency: float = 0.003
    transfer_rate: float = 12_500_000.0  # ~12.5 MB/s sequential media rate
    block_size: int = 8192

    @classmethod
    def ibm_18es(cls) -> "DiskParameters":
        """The 9 GB SCSI disk from the paper's testbed (approximate)."""
        return cls()


class Disk:
    """Charges simulated time for disk requests against a :class:`Clock`."""

    def __init__(self, clock: Clock, params: DiskParameters | None = None,
                 metrics=None) -> None:
        self._clock = clock
        self._params = params or DiskParameters()
        self._last_block: int | None = None
        self.reads = 0
        self.writes = 0
        self.syncs = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_reads = self._metrics.counter("disk.reads")
        self._m_writes = self._metrics.counter("disk.writes")
        self._m_syncs = self._metrics.counter("disk.syncs")

    @property
    def params(self) -> DiskParameters:
        return self._params

    def _access(self, block: int, nbytes: int) -> None:
        layers = self._metrics.layers
        layers.push("disk")
        try:
            params = self._params
            sequential = (self._last_block is not None
                          and block == self._last_block + 1)
            if not sequential:
                self._clock.advance(
                    params.average_seek + params.rotational_latency
                )
            self._clock.advance(nbytes / params.transfer_rate)
            self._last_block = block + max(0, (nbytes - 1) // params.block_size)
        finally:
            layers.pop()

    def read(self, block: int, nbytes: int) -> None:
        """Charge for a read of *nbytes* starting at *block*."""
        self.reads += 1
        self._m_reads.inc()
        self._access(block, nbytes)

    def write(self, block: int, nbytes: int, sync: bool = False) -> None:
        """Charge for a write; asynchronous writes cost nothing now.

        Asynchronous writes land in the write-back cache and are assumed
        to be flushed during otherwise-idle rotations, mirroring how the
        paper's FFS hides async data writes but pays for sync metadata.
        """
        self.writes += 1
        self._m_writes.inc()
        if sync:
            self.syncs += 1
            self._m_syncs.inc()
            self._access(block, nbytes)

    def sync(self, nbytes: int = 0) -> None:
        """Charge for an explicit flush of *nbytes* of dirty data."""
        self.syncs += 1
        self._m_syncs.inc()
        layers = self._metrics.layers
        layers.push("disk")
        try:
            params = self._params
            self._clock.advance(params.average_seek + params.rotational_latency)
            if nbytes:
                self._clock.advance(nbytes / params.transfer_rate)
            self._last_block = None
        finally:
            layers.pop()
