"""A virtual network implementing the paper's threat model.

"SFS assumes that malicious parties entirely control the network.
Attackers can intercept packets, tamper with them, and inject new packets
onto the network." (paper section 2.1.2)

The network delivers framed records synchronously between endpoint pairs
(one :class:`Link` per TCP-connection analogue), charging latency and
bandwidth to the virtual clock, and routes every record through an
optional :class:`Adversary` that may observe, modify, drop, reorder, or
inject records.  Security tests use adversaries to prove that the SFS
secure channel rejects all of this; benchmarks use a passive network with
the paper's 100 Mbit switched-Ethernet timing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..obs.registry import NULL_REGISTRY
from .clock import Clock

#: A message handler: receives raw record bytes.
Handler = Callable[[bytes], None]


@dataclass
class NetworkParameters:
    """Per-message latency and bandwidth of a link."""

    latency: float = 0.0001  # 100 usec switched-Ethernet round-trip half
    bandwidth: float = 12_500_000.0  # 100 Mbit/s in bytes/sec
    per_message_overhead: int = 100  # Ethernet/IP/TCP framing bytes

    @classmethod
    def lan_100mbit(cls) -> "NetworkParameters":
        return cls()

    @classmethod
    def nfs_udp(cls) -> "NetworkParameters":
        """NFS-over-UDP timing: minimal framing, lowest latency."""
        return cls(latency=0.00008, bandwidth=12_500_000.0,
                   per_message_overhead=50)

    @classmethod
    def nfs_tcp(cls) -> "NetworkParameters":
        """NFS-over-TCP timing: ack/stream overheads cost a little more.

        The paper measured 220 usec vs UDP's 200 usec for a null-ish RPC
        and lower streaming throughput on FreeBSD 3.3.
        """
        return cls(latency=0.00009, bandwidth=10_500_000.0,
                   per_message_overhead=90)

    @classmethod
    def wan(cls) -> "NetworkParameters":
        """Cross-Internet timing: ~20 ms one-way, T3-ish bandwidth.

        The paper's motivation is a file system that spans the Internet;
        at WAN latencies the lease caches are what make that usable.
        """
        return cls(latency=0.020, bandwidth=5_000_000.0,
                   per_message_overhead=100)

    @classmethod
    def instant(cls) -> "NetworkParameters":
        """Zero-cost network for pure protocol tests."""
        return cls(latency=0.0, bandwidth=float("inf"), per_message_overhead=0)


class Adversary:
    """Base adversary: sees every record, passes it through unchanged.

    Subclasses override :meth:`process` to tamper, drop (return None),
    replay, or inject (return multiple records).  The adversary sits on
    the wire *outside* the secure channel, exactly where the paper's
    attacker lives.
    """

    def process(self, data: bytes, direction: str) -> list[bytes]:
        """Return the records to deliver in place of *data*.

        *direction* is ``"a->b"`` or ``"b->a"`` so an adversary can target
        one flow.  Return ``[]`` to drop, ``[data]`` to pass through,
        multiple entries to inject.
        """
        return [data]


class TamperAdversary(Adversary):
    """Flips a bit in the Nth record matching a direction filter."""

    def __init__(self, target_index: int = 0, direction: str | None = None,
                 bit: int = 0) -> None:
        self._target = target_index
        self._direction = direction
        self._bit = bit
        self._seen = 0
        self.tampered = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        index = self._seen
        self._seen += 1
        if index != self._target or not data:
            return [data]
        corrupted = bytearray(data)
        corrupted[(self._bit // 8) % len(corrupted)] ^= 1 << (self._bit % 8)
        self.tampered += 1
        return [bytes(corrupted)]


class ReplayAdversary(Adversary):
    """Records every message and replays an earlier one after the Nth."""

    def __init__(self, replay_after: int = 2, replay_index: int = 0,
                 direction: str | None = None) -> None:
        self._replay_after = replay_after
        self._replay_index = replay_index
        self._direction = direction
        self._log: list[bytes] = []
        self.replayed = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        self._log.append(data)
        if len(self._log) - 1 == self._replay_after and self._replay_index < len(self._log):
            self.replayed += 1
            return [data, self._log[self._replay_index]]
        return [data]


class DropAdversary(Adversary):
    """Silently drops the Nth record (denial of service)."""

    def __init__(self, target_index: int, direction: str | None = None) -> None:
        self._target = target_index
        self._direction = direction
        self._seen = 0
        self.dropped = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        index = self._seen
        self._seen += 1
        if index == self._target:
            self.dropped += 1
            return []
        return [data]


class RandomDropAdversary(Adversary):
    """Drops each record independently with probability *rate*.

    Seeded with a caller-supplied ``random.Random`` so every run of a
    fault-injection test sees exactly the same loss pattern.
    """

    def __init__(self, rate: float, rng: random.Random,
                 direction: str | None = None) -> None:
        self._rate = rate
        self._rng = rng
        self._direction = direction
        self.seen = 0
        self.dropped = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        self.seen += 1
        if self._rng.random() < self._rate:
            self.dropped += 1
            return []
        return [data]


class BurstLossAdversary(Adversary):
    """Gilbert-Elliott burst loss: correlated outages, not lone drops.

    In the good state each record enters a burst with probability
    *enter_rate*; during a burst every record is dropped and the burst
    ends with probability *exit_rate* per record.  Models the cable-pull
    / route-flap failures that defeat naive single-retransmit schemes.
    """

    def __init__(self, enter_rate: float, exit_rate: float,
                 rng: random.Random, direction: str | None = None) -> None:
        self._enter = enter_rate
        self._exit = exit_rate
        self._rng = rng
        self._direction = direction
        self.in_burst = False
        self.bursts = 0
        self.dropped = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        if self.in_burst:
            self.dropped += 1
            if self._rng.random() < self._exit:
                self.in_burst = False
            return []
        if self._rng.random() < self._enter:
            self.in_burst = True
            self.bursts += 1
            self.dropped += 1
            return []
        return [data]


class BitFlipAdversary(Adversary):
    """Flips one seeded-random bit per record with probability *rate*.

    Unlike :class:`TamperAdversary` (which targets one chosen record for
    protocol tests), this models a lossy medium corrupting records at a
    steady background rate.
    """

    def __init__(self, rate: float, rng: random.Random,
                 direction: str | None = None) -> None:
        self._rate = rate
        self._rng = rng
        self._direction = direction
        self.corrupted = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        if not data or self._rng.random() >= self._rate:
            return [data]
        corrupted = bytearray(data)
        bit = self._rng.randrange(len(corrupted) * 8)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        self.corrupted += 1
        return [bytes(corrupted)]


class DuplicateAdversary(Adversary):
    """Delivers a record twice, back to back, with probability *rate*.

    A duplicated record pushes the receiver's streams *ahead* of the
    sender — the mirror image of a drop — so recovery must handle both.
    """

    def __init__(self, rate: float, rng: random.Random,
                 direction: str | None = None) -> None:
        self._rate = rate
        self._rng = rng
        self._direction = direction
        self.duplicated = 0

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        if self._rng.random() < self._rate:
            self.duplicated += 1
            return [data, data]
        return [data]


class ChaosAdversary(Adversary):
    """A composite hostile network: drop, corrupt, and duplicate at
    independent seeded rates.  One shared rng keeps the whole fault
    schedule reproducible from a single seed."""

    def __init__(self, rng: random.Random, drop_rate: float = 0.0,
                 corrupt_rate: float = 0.0, duplicate_rate: float = 0.0,
                 direction: str | None = None) -> None:
        self._rng = rng
        self._drop = drop_rate
        self._corrupt = corrupt_rate
        self._duplicate = duplicate_rate
        self._direction = direction
        self.seen = 0
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0

    @property
    def faults(self) -> int:
        return self.dropped + self.corrupted + self.duplicated

    def process(self, data: bytes, direction: str) -> list[bytes]:
        if self._direction is not None and direction != self._direction:
            return [data]
        self.seen += 1
        if self._rng.random() < self._drop:
            self.dropped += 1
            return []
        if data and self._rng.random() < self._corrupt:
            corrupted = bytearray(data)
            bit = self._rng.randrange(len(corrupted) * 8)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            self.corrupted += 1
            data = bytes(corrupted)
        if self._rng.random() < self._duplicate:
            self.duplicated += 1
            return [data, data]
        return [data]


class RecordingAdversary(Adversary):
    """A passive eavesdropper; keeps a transcript for offline analysis.

    Used by tests that check forward secrecy and that no plaintext
    appears on the wire.
    """

    def __init__(self) -> None:
        self.transcript: list[tuple[str, bytes]] = []

    def process(self, data: bytes, direction: str) -> list[bytes]:
        self.transcript.append((direction, data))
        return [data]


class LinkDown(ConnectionError):
    """Raised when sending on a closed link.

    Subclasses :class:`ConnectionError` so transport-level failure is
    distinguishable from protocol errors: the RPC layer converts it to
    an immediate :class:`~repro.rpc.peer.RpcTransportDown` rather than
    retransmitting into a dead link.
    """


class Medium:
    """Shared serialization state: one transmission on the wire at a time.

    Links that share a Medium (all the links terminating at one server's
    NIC) contend for its bandwidth: a record sent while the medium is
    still carrying an earlier record queues behind it, and the sender is
    charged the queueing delay on top of its own latency.  Transmission
    time accrues on :attr:`busy_until` rather than being charged to the
    global clock, so concurrent flows genuinely overlap-and-contend
    instead of each paying full serialization independently.

    Links *without* a medium keep the original independent
    latency+bandwidth charge, so every single-client figure benchmark is
    bit-identical to the uncontended model.
    """

    __slots__ = ("name", "busy_until")

    def __init__(self, name: str = "medium") -> None:
        self.name = name
        self.busy_until = 0.0

    def occupy(self, now: float, tx_seconds: float) -> float:
        """Claim the medium for *tx_seconds*; returns the queueing wait."""
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + tx_seconds
        return start - now


@dataclass
class _Endpoint:
    handler: Handler | None = None


class Link:
    """A bidirectional record pipe between two endpoints ("a" and "b").

    Delivery is synchronous: ``send_a(data)`` invokes b's handler before
    returning (possibly multiple times if an adversary injects records).
    Latency and bandwidth are charged to the clock per delivered record.
    """

    def __init__(
        self,
        clock: Clock,
        params: NetworkParameters | None = None,
        adversary: Adversary | None = None,
        metrics=None,
        media: "dict[str, Medium] | None" = None,
        pipelined: bool = False,
    ) -> None:
        self._clock = clock
        self._params = params or NetworkParameters.instant()
        self._adversary = adversary
        self._a = _Endpoint()
        self._b = _Endpoint()
        self._open = True
        #: Pipelined delivery: instead of charging the *sender* the
        #: full latency+transmission inline (nested synchronous
        #: delivery), the record departs immediately and arrives via a
        #: clock timer at ``depart + tx + latency``.  Transmissions in
        #: one direction serialize on the wire (per-direction
        #: ``busy_until``), but propagation, remote processing, and the
        #: return path all overlap across in-flight records — what
        #: windowed RPC pipelining exploits.  Off by default: the
        #: synchronous model stays bit-identical for every existing
        #: test and figure.
        self.pipelined = pipelined
        self._busy_until = {"a->b": 0.0, "b->a": 0.0}
        #: Advisory RPC send-window depth for peers built over this
        #: link (None = unwindowed); set by World.enable_pipelining and
        #: surfaced to RpcPeer via ``suggested_window_depth``.
        self.window_depth: "int | None" = None
        #: Optional per-direction shared media ({"a->b": ..., "b->a": ...});
        #: see :class:`Medium`.  None = independent per-message charges.
        self._media = media or {}
        #: Optional progress pump (Scheduler.pump_once) that RpcPeer
        #: picks up as its reply_waiter via ``suggested_reply_waiter``;
        #: lets synchronous calls wait out a queued server.
        self.pump = None
        #: Called (once each) when the link closes; RpcPeer hangs the
        #: failure of its in-flight call futures here.
        self._close_handlers: list[Callable[[], None]] = []
        self.messages = 0
        self.bytes_carried = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_messages = self._metrics.counter("net.messages")
        self._m_bytes = self._metrics.counter("net.bytes")
        # Fault-injection visibility: adversaries stay metrics-agnostic;
        # the link infers what happened by diffing their output.
        self._m_dropped = self._metrics.counter("net.faults.dropped")
        self._m_injected = self._metrics.counter("net.faults.injected")
        self._m_tampered = self._metrics.counter("net.faults.tampered")
        self._m_medium_waits = self._metrics.counter("net.medium_waits")
        self._m_medium_wait_s = self._metrics.histogram(
            "net.medium_wait_seconds"
        )
        # Pipelined-delivery visibility: total wire time spent off the
        # sender's critical path (queueing + transmission + propagation),
        # record count, and records lost because the link closed while
        # they were in flight.  ``wire_seconds`` is what the bench
        # attribution table cites to show the network time that a
        # depth-N window overlapped instead of serializing.
        self._m_wire_records = self._metrics.counter("net.pipelined.records")
        self._m_wire_seconds = self._metrics.counter(
            "net.pipelined.wire_seconds"
        )
        self._m_inflight_lost = self._metrics.counter(
            "net.pipelined.lost_in_flight"
        )

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def metrics(self):
        return self._metrics

    #: Location name this link was dialed to, tagged by World.connector;
    #: lets scenario events re-profile "every open link to host X".
    location: str | None = None

    def set_adversary(self, adversary: Adversary | None) -> None:
        self._adversary = adversary

    def set_params(self, params: NetworkParameters) -> None:
        """Re-time this link in place (a route change mid-connection).

        Records already delivered keep their original charges; every
        later record pays the new latency/bandwidth.  This is how a
        scenario turns a LAN link into a lossy WAN link mid-run without
        tearing the connection down.
        """
        self._params = params

    def on_receive_a(self, handler: Handler) -> None:
        """Install the handler for records arriving at endpoint a."""
        self._a.handler = handler

    def on_receive_b(self, handler: Handler) -> None:
        """Install the handler for records arriving at endpoint b."""
        self._b.handler = handler

    def on_close(self, handler: Callable[[], None]) -> None:
        """Register a handler to run when the link closes."""
        self._close_handlers.append(handler)

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        handlers, self._close_handlers = self._close_handlers, []
        for handler in handlers:
            handler()

    @property
    def is_open(self) -> bool:
        return self._open

    def _charge(self, nbytes: int, direction: str) -> None:
        layers = self._metrics.layers
        layers.push("network")
        try:
            params = self._params
            total = nbytes + params.per_message_overhead
            tx = (total / params.bandwidth
                  if params.bandwidth != float("inf") else 0.0)
            medium = self._media.get(direction)
            if medium is None:
                # Uncontended: the original independent charge.
                self._clock.advance(params.latency + tx)
                return
            # Contended: transmission occupies the shared medium; the
            # sender is charged propagation latency plus however long
            # the medium stays busy with *earlier* records.
            wait = medium.occupy(self._clock.now, tx)
            if wait > 0:
                self._m_medium_waits.inc()
                self._m_medium_wait_s.observe(wait)
            self._clock.advance(params.latency + wait)
        finally:
            layers.pop()

    def _deliver(self, endpoint: _Endpoint, data: bytes, direction: str) -> None:
        if not self._open:
            raise LinkDown("link is closed")
        records = [data]
        if self._adversary is not None:
            records = self._adversary.process(data, direction)
            if not records:
                self._m_dropped.inc()
            else:
                if len(records) > 1:
                    self._m_injected.inc(len(records) - 1)
                if records[0] != data:
                    self._m_tampered.inc()
        for record in records:
            self.messages += 1
            self.bytes_carried += len(record)
            self._m_messages.inc()
            self._m_bytes.inc(len(record))
            if self.pipelined:
                self._schedule_arrival(endpoint, record, direction)
                continue
            self._charge(len(record), direction)
            if endpoint.handler is None:
                raise LinkDown("no handler installed at destination")
            endpoint.handler(record)

    def _schedule_arrival(self, endpoint: _Endpoint, record: bytes,
                          direction: str) -> None:
        """Pipelined delivery: depart now, arrive via a clock timer.

        The sender pays nothing inline.  Transmission serializes per
        direction (shared :class:`Medium` when present, otherwise this
        link's own ``busy_until``), then the record propagates for
        ``latency`` and is handed to the destination handler when the
        clock crosses the arrival time.  Records in flight when the
        link closes are lost silently — exactly a cable pull.
        """
        params = self._params
        total = len(record) + params.per_message_overhead
        tx = (total / params.bandwidth
              if params.bandwidth != float("inf") else 0.0)
        now = self._clock.now
        medium = self._media.get(direction)
        if medium is not None:
            wait = medium.occupy(now, tx)
        else:
            busy = self._busy_until[direction]
            start = busy if busy > now else now
            self._busy_until[direction] = start + tx
            wait = start - now
        if wait > 0:
            self._m_medium_waits.inc()
            self._m_medium_wait_s.observe(wait)
        arrival = now + wait + tx + params.latency
        self._m_wire_records.inc()
        self._m_wire_seconds.inc(arrival - now)

        def arrive() -> None:
            if not self._open or endpoint.handler is None:
                self._m_inflight_lost.inc()
                return
            endpoint.handler(record)

        self._clock.call_at(arrival, arrive)

    def send_a(self, data: bytes) -> None:
        """Send from endpoint a to endpoint b."""
        self._deliver(self._b, data, "a->b")

    def send_b(self, data: bytes) -> None:
        """Send from endpoint b to endpoint a."""
        self._deliver(self._a, data, "b->a")


class LinkSide:
    """One side of a link presented as a simple send/receive object."""

    @property
    def synchronous_delivery(self) -> bool:
        """Whether a reply can arrive via nested handler invocation
        before ``send`` returns.  True on the classic synchronous
        network; False on a pipelined link, where records only arrive
        when the clock crosses their arrival timer.  RpcPeer reads this
        to tell a genuinely lost record from a transport that simply
        has no way to wait.
        """
        return not self._link.pipelined

    def __init__(self, link: Link, side: str) -> None:
        if side not in ("a", "b"):
            raise ValueError("side must be 'a' or 'b'")
        self._link = link
        self._side = side

    @property
    def link(self) -> Link:
        return self._link

    @property
    def suggested_clock(self) -> Clock:
        """The virtual clock; retry backoff charges delay here instead
        of sleeping, the same way the link charges latency."""
        return self._link.clock

    @property
    def suggested_metrics(self):
        """The link's metrics registry; wrapper pipes (secure channel,
        switchable pipe) pass this through so RpcPeer and friends land
        their counters in the owning World's registry."""
        return self._link.metrics

    @property
    def suggested_window_depth(self) -> "int | None":
        """Advisory RPC send-window depth for this link (None = off)."""
        return self._link.window_depth

    @property
    def suggested_rtt(self) -> float:
        """Round-trip propagation estimate (2x one-way latency).

        RPC peers floor their retransmission timers at twice this, so
        pipelined links with real wire time don't retransmit calls
        whose replies are still in flight."""
        return 2.0 * self._link._params.latency

    @property
    def suggested_reply_waiter(self):
        """The link's progress pump (a Scheduler.pump_once), if any.

        With a queued server, a reply only arrives once a worker task
        runs; synchronous callers wait by pumping the scheduler instead
        of timing out.  None on plain links — behavior unchanged.
        """
        return self._link.pump

    def send(self, data: bytes) -> None:
        if self._side == "a":
            self._link.send_a(data)
        else:
            self._link.send_b(data)

    def on_receive(self, handler: Handler) -> None:
        if self._side == "a":
            self._link.on_receive_a(handler)
        else:
            self._link.on_receive_b(handler)

    def on_close(self, handler: Callable[[], None]) -> None:
        self._link.on_close(handler)

    def close(self) -> None:
        self._link.close()

    @property
    def is_open(self) -> bool:
        return self._link.is_open


def link_pair(
    clock: Clock,
    params: NetworkParameters | None = None,
    adversary: Adversary | None = None,
    metrics=None,
    media: dict[str, Medium] | None = None,
    pipelined: bool = False,
) -> tuple[LinkSide, LinkSide]:
    """Create a link and return its two sides (client side first)."""
    link = Link(clock, params, adversary, metrics, media=media,
                pipelined=pipelined)
    return LinkSide(link, "a"), LinkSide(link, "b")
