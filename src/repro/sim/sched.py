"""A deterministic cooperative task engine over the virtual clock.

The simulator's calls have so far been fully synchronous — one client,
one RPC at a time, delivered by nested function calls.  Concurrency
(many clients queueing against one server) needs tasks that can *wait*
without blocking the whole world.  This module provides them without
threads: a :class:`Task` wraps a generator that ``yield``\\ s what it is
waiting for — a :class:`Future` (an RPC reply, a queue wakeup) or a
:class:`Sleep` (think time, backoff) — and the :class:`Scheduler` steps
whichever tasks are runnable, advancing the :class:`~repro.sim.clock.
Clock` to the next timer deadline whenever everyone is waiting.

Determinism: when several tasks are runnable the scheduler picks among
them with its own seeded ``random.Random``, so every interleaving is a
pure function of the seed.  Nothing here reads wall-clock time.

Re-entrancy: the synchronous call paths (session handshakes, the crash
failover engine) still run *inside* a task step.  They make progress by
pumping the scheduler — :meth:`Scheduler.pump_once` steps one *other*
runnable task or advances the clock — which is why a task being stepped
is never in the ready queue.  When nothing can run and no timer is
pending, :meth:`pump_once` raises :class:`SchedulerStalled`; the RPC
layer treats that exactly like an elapsed retransmission timer.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable

from ..obs.registry import NULL_REGISTRY
from .clock import Clock


class SchedulerStalled(RuntimeError):
    """``pump_once`` found no runnable task and no pending timer.

    Whatever the caller is waiting for cannot arrive without outside
    help (e.g. a retransmission): the record carrying it was lost.
    The message names the blocked tasks (and what each one is waiting
    on) plus the oldest pending timer deadline, so a wedged
    1024-client run points at its culprit instead of shrugging.
    """


class Sleep:
    """Yielded by a task to wait *seconds* of simulated time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.seconds = seconds


class Future:
    """A one-shot value (or error) a task can wait on.

    ``resolve``/``fail`` are idempotent-ish in the way timers need:
    the first call wins, later calls are ignored — a retransmission
    timeout racing a late reply must not clobber it.
    """

    __slots__ = ("name", "done", "value", "exception", "_callbacks")

    def __init__(self, name: str = "future") -> None:
        self.name = name
        self.done = False
        self.value: Any = None
        self.exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def resolve(self, value: Any = None) -> bool:
        if self.done:
            return False
        self.done = True
        self.value = value
        self._fire()
        return True

    def fail(self, exception: BaseException) -> bool:
        if self.done:
            return False
        self.done = True
        self.exception = exception
        self._fire()
        return True


def gather(futures: "Iterable[Future]", name: str = "gather") -> Future:
    """One Future that completes when *all* of ``futures`` have.

    Resolves with the list of values in input order.  The first
    failure wins immediately (matching Future's first-call-wins rule),
    so a window of pipelined calls collapses as soon as one of them
    dies — the callers' cleanup runs instead of waiting out the rest.
    An empty iterable resolves at once with ``[]``.
    """
    futures = list(futures)
    combined = Future(name)
    if not futures:
        combined.resolve([])
        return combined
    remaining = [len(futures)]

    def on_done(future: Future) -> None:
        if future.exception is not None:
            combined.fail(future.exception)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.resolve([f.value for f in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return combined


class Task:
    """One cooperative task: a generator plus its lifecycle state."""

    __slots__ = ("name", "daemon", "gen", "finished", "failed", "result",
                 "exception", "waiting_on", "_running", "_queued",
                 "_pending_resume")

    def __init__(self, gen: Generator, name: str, daemon: bool) -> None:
        self.name = name
        #: Daemon tasks (server queue workers) serve the others; they
        #: never count toward run-loop liveness and are simply abandoned
        #: at drain, like OS daemon threads.
        self.daemon = daemon
        self.gen = gen
        self.finished = False
        self.failed = False
        self.result: Any = None
        self.exception: BaseException | None = None
        #: What the task last parked on ("future:<name>" or
        #: "sleep until <t>"); stall and drain reports print it.
        self.waiting_on: str | None = None
        self._running = False
        self._queued = False
        self._pending_resume: Future | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("done" if self.finished else
                 "running" if self._running else
                 "ready" if self._queued else "waiting")
        return f"<Task {self.name} {state}>"


class Scheduler:
    """Runs tasks to completion with seeded, reproducible interleaving."""

    def __init__(self, clock: Clock, seed: int = 0, metrics=None) -> None:
        self.clock = clock
        self.rng = random.Random(seed)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._ready: list[Task] = []
        self.tasks: list[Task] = []
        self.steps = 0
        #: The task currently being stepped, if any — how re-entrant
        #: (legacy sync) code can tell it is running inside a task.
        self.current: Task | None = None
        #: With strict_pump on, :meth:`legacy_pump` asserts it is only
        #: reached from true sync entry points (no task mid-step) — the
        #: task-native worlds turn it on to prove their hot paths never
        #: fall back to pump re-entrancy.
        self.strict_pump = False
        self._pump_allowances = 0
        self._m_steps = self.metrics.counter("sched.steps")
        self._m_spawned = self.metrics.counter("sched.tasks_spawned")
        self._m_failed = self.metrics.counter("sched.tasks_failed")
        self._m_legacy_pumps = self.metrics.counter("sched.legacy_pumps")

    # -- task creation ----------------------------------------------------

    def spawn(self, gen: Generator, name: str = "task",
              daemon: bool = False) -> Task:
        """Register a generator as a runnable task."""
        task = Task(gen, name, daemon)
        self.tasks.append(task)
        self._m_spawned.inc()
        self._enqueue(task)
        return task

    def _enqueue(self, task: Task) -> None:
        if task.finished or task._queued or task._running:
            return
        task._queued = True
        self._ready.append(task)

    # -- stepping ---------------------------------------------------------

    def _take_ready(self) -> Task | None:
        """Pop one runnable task, chosen by the seeded rng."""
        while self._ready:
            index = (self.rng.randrange(len(self._ready))
                     if len(self._ready) > 1 else 0)
            task = self._ready.pop(index)
            task._queued = False
            if not task.finished:
                return task
        return None

    def _step(self, task: Task, send: Any = None,
              throw: BaseException | None = None) -> None:
        """Resume *task* once and park it on whatever it yields next."""
        self.steps += 1
        self._m_steps.inc()
        task._running = True
        task.waiting_on = None
        previous, self.current = self.current, task
        try:
            if throw is not None:
                waited = task.gen.throw(throw)
            else:
                waited = task.gen.send(send)
        except StopIteration as stop:
            task.finished = True
            task.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            task.finished = True
            task.failed = True
            task.exception = exc
            self._m_failed.inc()
            return
        finally:
            task._running = False
            self.current = previous
        self._park(task, waited)

    def _park(self, task: Task, waited: Any) -> None:
        if isinstance(waited, Future):
            task.waiting_on = f"future:{waited.name}"

            def wake(future: Future, task=task) -> None:
                self._resume_with(task, future)
            waited.add_done_callback(wake)
            return
        if isinstance(waited, Sleep):
            seconds = waited.seconds
        elif isinstance(waited, (int, float)):
            seconds = float(waited)
        else:
            self._step(task, throw=TypeError(
                f"task {task.name} yielded {waited!r}; expected a "
                "Future, Sleep, or a number of seconds"
            ))
            return
        # Timer callbacks only *enqueue*: the task runs on the next
        # scheduler step, never from inside Clock.advance, so a timer
        # firing mid-charge cannot re-enter a task that is mid-step.
        deadline = self.clock.now + seconds
        task.waiting_on = f"sleep until {deadline:.6f}"
        self.clock.call_at(deadline, lambda: self._enqueue(task))

    def _resume_with(self, task: Task, future: Future) -> None:
        """Queue *task* to resume with the future's (immutable) outcome."""
        task._pending_resume = future
        self._enqueue(task)

    def _resume_args(self, task: Task) -> tuple[Any, BaseException | None]:
        future, task._pending_resume = task._pending_resume, None
        if future is None:
            return None, None
        if future.exception is not None:
            return None, future.exception
        return future.value, None

    # -- run loops --------------------------------------------------------

    def _live(self) -> list[Task]:
        return [t for t in self.tasks if not t.finished and not t.daemon]

    def _describe_blocked(self, limit: int = 8) -> str:
        """Render who is stuck on what, for stall/drain messages."""
        blocked = [t for t in self._live()
                   if not t._queued and not t._running]
        if self.current is not None:
            blocked.insert(0, self.current)
        if not blocked:
            return "no live tasks"
        parts = [f"{t.name}({t.waiting_on or 'mid-step'})"
                 for t in blocked[:limit]]
        if len(blocked) > limit:
            parts.append(f"... {len(blocked) - limit} more")
        return ", ".join(parts)

    def pump_once(self) -> None:
        """Make one unit of progress: step a ready task or advance time.

        Raises :class:`SchedulerStalled` when neither is possible —
        the caller's awaited event cannot occur without intervention.
        """
        task = self._take_ready()
        if task is not None:
            send, throw = self._resume_args(task)
            self._step(task, send, throw)
            return
        deadline = self.clock.next_deadline()
        if deadline is None:
            raise SchedulerStalled(
                "no runnable task and no pending timer; blocked: "
                f"{self._describe_blocked()}; oldest pending timer: none "
                f"(now={self.clock.now:.6f})"
            )
        self.clock.advance(max(0.0, deadline - self.clock.now))

    def legacy_pump(self) -> None:
        """Deprecation shim around :meth:`pump_once` for sync callers.

        This is what :class:`~repro.kernel.world.World` wires into
        ``link.pump``: legacy synchronous entry points (handshakes run
        outside any task, tests) still make progress by pumping, but
        every use is counted (``sched.legacy_pumps``), and under
        ``strict_pump`` a pump *from inside a task step* — the
        re-entrancy the task-native core exists to retire — is an
        assertion failure naming the offending task.
        """
        self._m_legacy_pumps.inc()
        if (self.strict_pump and self.current is not None
                and not self._pump_allowances):
            raise AssertionError(
                "legacy scheduler pump reached from inside task "
                f"{self.current.name!r}: this path must be task-native "
                "(yield on a Future/Sleep) under strict_pump"
            )
        self.pump_once()

    @contextmanager
    def allow_legacy_pump(self):
        """Permit :meth:`legacy_pump` inside a task for this scope.

        The explicit cold-path escape hatch under ``strict_pump``: crash
        recovery (redial, HostID re-verification, key renegotiation) is
        a synchronous engine by design, and a worker task that trips
        over a dead transport runs it inline rather than dying.  Scoping
        the allowance keeps the strict check meaningful everywhere else
        — a hot-path pump still fails loudly.
        """
        self._pump_allowances += 1
        try:
            yield
        finally:
            self._pump_allowances -= 1

    def run(self) -> list[Task]:
        """Run until every non-daemon task finishes or nothing can move.

        Returns the list of *blocked* non-daemon tasks (empty on a clean
        run): tasks still waiting on futures that can no longer resolve.
        """
        while self._live():
            try:
                self.pump_once()
            except SchedulerStalled:
                break
        return self._live()

    def drain(self) -> None:
        """Assert a clean shutdown: no blocked or unfinished tasks."""
        blocked = self.run()
        if blocked:
            names = ", ".join(
                f"{t.name}({t.waiting_on or 'never ran'})" for t in blocked
            )
            raise AssertionError(f"tasks hung at drain: {names}")

    # -- helpers ----------------------------------------------------------

    def run_all(self, gens: Iterable[Generator],
                name: str = "task") -> list[Task]:
        """Spawn every generator, run to completion, return the tasks."""
        tasks = [self.spawn(gen, name=f"{name}-{i}")
                 for i, gen in enumerate(gens)]
        self.run()
        return tasks
