"""Virtual clock for the simulated machine.

The paper's evaluation ran on real hardware (550 MHz Pentium IIIs, 100
Mbit Ethernet, SCSI disks).  Our substrate is a simulator, so benchmark
time is accounted as:

    reported time = measured CPU time + accumulated simulated device time

Components (the disk model, the network links) charge their latencies to
the clock with :meth:`Clock.advance`; CPU work simply takes real time that
the harness measures around the workload.  This keeps benchmarks fast to
run while preserving the *shape* of the paper's results: latency-bound
phases are dominated by network round trips, sync-write phases by disk
time, and crypto/user-level relay costs show up as genuine Python CPU
time.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Clock:
    """Accumulates simulated time, in seconds.

    Callbacks registered with :meth:`call_at` fire from inside
    :meth:`advance` once the clock passes their deadline.  That is the
    only notion of "elapsed wall time" a single-threaded simulation has:
    a server restart scheduled for t=5 happens during whatever sleep or
    device charge crosses t=5 (e.g. a client's reconnect backoff).
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._timers: list[tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0
        self._firing = False

    @property
    def now(self) -> float:
        """Total simulated seconds advanced so far."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule *callback* to run when simulated time reaches *when*.

        Deadlines already in the past fire on the next :meth:`advance`
        (including ``advance(0)``).  Ties fire in registration order.
        """
        self._timer_seq += 1
        heapq.heappush(self._timers, (when, self._timer_seq, callback))

    def next_deadline(self) -> float | None:
        """The earliest pending timer deadline, or None when idle.

        The cooperative scheduler (:mod:`repro.sim.sched`) uses this to
        jump virtual time forward when every task is waiting on a timer:
        it advances straight to the next deadline rather than polling.
        """
        return self._timers[0][0] if self._timers else None

    def advance(self, seconds: float) -> None:
        """Charge *seconds* of simulated device time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        self._fire_due()

    def _fire_due(self) -> None:
        # Re-entrant by design: a callback that advances the clock (a
        # relay synchronously waiting out a pipelined reply arrival,
        # say) drains the newly-due timers right there, from the inner
        # frame.  Each timer is popped before its callback runs, so no
        # frame can double-fire one, and the heap hands out deadlines
        # earliest-first no matter which frame is draining — global
        # firing order is exactly what a single flat drain would give.
        # Nesting depth is bounded by the relay chain (kernel -> sfscd
        # -> sfssd), not by message count.
        self._firing = True
        try:
            while self._timers and self._timers[0][0] <= self._now:
                _when, _seq, callback = heapq.heappop(self._timers)
                callback()
        finally:
            self._firing = False

    def reset(self) -> None:
        self._now = 0.0
        self._timers.clear()


class Stopwatch:
    """Captures a span of simulated time against a clock."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now

    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> None:
        self._start = self._clock.now
