"""Virtual clock for the simulated machine.

The paper's evaluation ran on real hardware (550 MHz Pentium IIIs, 100
Mbit Ethernet, SCSI disks).  Our substrate is a simulator, so benchmark
time is accounted as:

    reported time = measured CPU time + accumulated simulated device time

Components (the disk model, the network links) charge their latencies to
the clock with :meth:`Clock.advance`; CPU work simply takes real time that
the harness measures around the workload.  This keeps benchmarks fast to
run while preserving the *shape* of the paper's results: latency-bound
phases are dominated by network round trips, sync-write phases by disk
time, and crypto/user-level relay costs show up as genuine Python CPU
time.
"""

from __future__ import annotations


class Clock:
    """Accumulates simulated time, in seconds."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Total simulated seconds advanced so far."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Charge *seconds* of simulated device time."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds

    def reset(self) -> None:
        self._now = 0.0


class Stopwatch:
    """Captures a span of simulated time against a clock."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now

    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> None:
        self._start = self._clock.now
