"""Simulated machine substrate: virtual clock, disk model, and a network
implementing the paper's attacker-controls-the-wire threat model."""

from .clock import Clock, Stopwatch
from .disk import Disk, DiskParameters
from .network import (
    Adversary,
    DropAdversary,
    Link,
    LinkDown,
    LinkSide,
    NetworkParameters,
    RecordingAdversary,
    ReplayAdversary,
    TamperAdversary,
    link_pair,
)

__all__ = [
    "Adversary",
    "Clock",
    "Disk",
    "DiskParameters",
    "DropAdversary",
    "Link",
    "LinkDown",
    "LinkSide",
    "NetworkParameters",
    "RecordingAdversary",
    "ReplayAdversary",
    "Stopwatch",
    "TamperAdversary",
    "link_pair",
]
