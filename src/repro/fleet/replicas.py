"""The untrusted read-only replica tier: client-side mirror selection.

"It also frees read-only servers from the need to keep any on-line
copies of their private keys, which in turn allows read-only file
systems to be replicated on untrusted machines" (paper section 2.4).
This module is the client half of that claim at fleet scale: a
:class:`ReplicaSet` fronts N mirrors of one signed image and picks the
one to fetch from by *observed* latency and health.

The security model does not change one bit — every blob is still
verified against its digest (here, *before* the byte leaves this
module) and the root signature is still checked against the pathname's
HostID by :class:`~repro.core.readonly.ReadOnlyClient`.  What the set
adds is availability policy:

* **selection** — healthy replicas are ranked by an EWMA of observed
  fetch latency; an unprobed replica ranks first so every mirror gets
  measured once.  Ties break by the caller's seeded RNG.
* **demotion** — a dead mirror (transport error) or one missing a blob
  is demoted for a cooldown and redialed later; a *tampering* mirror
  (digest mismatch on a blob it did return) is banned outright.  A
  tampered blob never escapes: the fetch fails over to the next mirror
  and the caller sees correct bytes or ReadOnlyError, never garbage.
* **reselection** — when every replica is down, the shared
  :class:`~repro.core.backoff.BackoffPolicy` paces re-probing (with
  jitter, so a fleet of clients does not stampede recovering mirrors),
  exactly like the read-write failover engine it composes with.
"""

from __future__ import annotations

import random
from typing import Callable

from ..core import proto
from ..core.backoff import BackoffPolicy
from ..core.readonly import ReadOnlyError
from ..crypto.sha1 import sha1
from ..obs.registry import NULL_REGISTRY
from ..rpc.peer import RpcError
from ..rpc.xdr import Record, VOID
from ..sim.clock import Clock

#: A transient failure sidelines a replica for this many (simulated)
#: seconds before it becomes eligible for redial.
DEFAULT_COOLDOWN = 1.0

#: EWMA smoothing for observed fetch latency.
LATENCY_ALPHA = 0.3

#: dial() -> (fetch_root, fetch_data); raises ConnectionError/RpcError.
Dialer = Callable[[], tuple[Callable[[], Record],
                            Callable[[bytes], "bytes | None"]]]


class ReplicaMisconductError(Exception):
    """A mirror answered with something no honest-but-stale mirror
    could: a public key that does not hash to the pathname's HostID.
    The replica set treats this like a digest mismatch — permanent ban."""


def dial_readonly(connector, location: str, path, ephemeral_keys, rng):
    """Dial *location* and speak the read-only dialect for *path*.

    The dial location and the pathname's Location may differ — that is
    the whole replica tier: an untrusted mirror at ``mirror7.volunteer``
    serves an image published for ``sfs.lcs.mit.edu``, and the client
    still verifies against the original name (the ServInfo carries the
    *publisher's* key, which must hash to the pathname's HostID).
    """
    # Runtime import: core.client lazily imports this module too.
    from ..core.client import MountError, SecurityError, ServerSession

    link = connector(location, proto.SERVICE_READONLY)
    try:
        outcome = ServerSession.connect(link, path, ephemeral_keys, rng,
                                        service=proto.SERVICE_READONLY,
                                        encrypt=False)
    except SecurityError as exc:
        # Wrong key for the HostID: an impostor, not an outage.
        raise ReplicaMisconductError(f"{location}: {exc}") from None
    except MountError as exc:
        # The mirror is up but no longer carries the export — stale,
        # which is an availability problem, not a security one.
        raise ConnectionError(f"{location}: {exc}") from None
    if not isinstance(outcome, ServerSession) \
            or outcome.servinfo.dialect != proto.DIALECT_RO:
        raise ConnectionError(
            f"{location} does not serve the read-only dialect for "
            f"{path.mount_name}"
        )
    peer = outcome.peer

    def fetch_root() -> Record:
        res = peer.call(
            proto.SFS_RO_PROGRAM, proto.SFS_VERSION, proto.PROC_GETROOT,
            VOID, None, proto.GetRootRes,
        )
        res.public_key = outcome.servinfo.public_key
        return res

    def fetch_data(digest: bytes) -> bytes | None:
        disc, body = peer.call(
            proto.SFS_RO_PROGRAM, proto.SFS_VERSION, proto.PROC_GETDATA,
            proto.GetDataArgs, proto.GetDataArgs.make(digest=digest),
            proto.GetDataRes,
        )
        return body if disc == proto.GETDATA_OK else None

    return fetch_root, fetch_data


class Replica:
    """One mirror: a dialer, its health state, and latency history."""

    def __init__(self, name: str, dial: Dialer, clock: Clock,
                 cooldown: float = DEFAULT_COOLDOWN) -> None:
        self.name = name
        self._dial = dial
        self.clock = clock
        self.cooldown = cooldown
        self._fetchers = None
        #: EWMA of observed fetch latency; None until first probe.
        self.latency: float | None = None
        #: Additive rank penalty (simulated seconds) steered in by the
        #: control plane: a positive bias makes this mirror look slower
        #: than measured, shifting selection toward its peers without
        #: touching health state (a ban still trumps any bias).
        self.steering_bias = 0.0
        self.fetches = 0
        self.failures = 0
        self.banned = False
        self.down_until = 0.0

    def usable(self) -> bool:
        return not self.banned and self.clock.now >= self.down_until

    def rank(self) -> float:
        """Selection score: lower is better; unprobed ranks first."""
        base = -1.0 if self.latency is None else self.latency
        return base + self.steering_bias

    def _connected(self):
        if self._fetchers is None:
            self._fetchers = self._dial()
        return self._fetchers

    def _observe(self, seconds: float) -> None:
        if self.latency is None:
            self.latency = seconds
        else:
            self.latency = (LATENCY_ALPHA * seconds
                            + (1.0 - LATENCY_ALPHA) * self.latency)

    def fetch_root(self) -> Record:
        fetch_root, _ = self._connected()
        start = self.clock.now
        res = fetch_root()
        self._observe(self.clock.now - start)
        self.fetches += 1
        return res

    def fetch_data(self, digest: bytes) -> bytes | None:
        _, fetch_data = self._connected()
        start = self.clock.now
        blob = fetch_data(digest)
        self._observe(self.clock.now - start)
        self.fetches += 1
        return blob

    def sideline(self) -> None:
        """Transient demotion: cooldown, then eligible for redial."""
        self.failures += 1
        self.down_until = self.clock.now + self.cooldown
        self._fetchers = None  # force a fresh dial on reuse

    def ban(self) -> None:
        """Permanent demotion: the mirror returned a digest-mismatched
        blob, which no network fault can explain."""
        self.failures += 1
        self.banned = True
        self._fetchers = None

    def stats(self) -> dict:
        return {
            "name": self.name,
            "latency_ewma": self.latency,
            "steering_bias": self.steering_bias,
            "fetches": self.fetches,
            "failures": self.failures,
            "banned": self.banned,
            "usable": self.usable(),
        }


class ReplicaSet:
    """Verified fetching with latency-ranked selection over mirrors.

    Drop-in transport for :class:`~repro.core.readonly.ReadOnlyClient`:
    pass :meth:`fetch_root` and :meth:`fetch_data` as its callbacks.
    ``fetch_data`` verifies the digest *before* returning, so a
    tampering mirror costs one extra round trip, never a wrong byte
    (the ReadOnlyClient re-checks, making the invariant double-entry).
    """

    def __init__(self, replicas: list[Replica], clock: Clock,
                 rng: random.Random,
                 backoff: BackoffPolicy | None = None,
                 metrics=NULL_REGISTRY) -> None:
        if not replicas:
            raise ValueError("a replica set needs at least one replica")
        self.replicas = list(replicas)
        self.clock = clock
        self.rng = rng
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._m_fetches = metrics.counter("fleet.replica.fetches")
        self._m_failovers = metrics.counter("fleet.replica.failovers")
        self._m_demotions = metrics.counter("fleet.replica.demotions")
        self._m_bans = metrics.counter("fleet.replica.bans")
        self._m_corrupt = metrics.counter("fleet.replica.corrupt_blobs")
        self._m_backoff_waits = metrics.counter(
            "fleet.replica.backoff_waits"
        )
        self._m_steering = metrics.counter("fleet.replica.steering_updates")

    # -- steering ------------------------------------------------------------

    def set_steering_bias(self, name: str, bias: float) -> None:
        """Steer selection away from (bias > 0) or back toward (0) the
        named replica.  The bias composes with, never overrides, health
        state: a banned mirror stays banned and a sidelined one stays
        sidelined no matter the bias — steering is a *preference*, the
        demotion rules are *policy* (PROTOCOLS.md §13/§14).
        """
        for replica in self.replicas:
            if replica.name == name:
                if replica.steering_bias != bias:
                    replica.steering_bias = bias
                    self._m_steering.inc()
                return
        raise KeyError(f"no replica named {name!r} in this set")

    def clear_steering(self) -> None:
        """Drop every steering bias (rankings return to raw EWMA)."""
        for replica in self.replicas:
            if replica.steering_bias:
                replica.steering_bias = 0.0
                self._m_steering.inc()

    # -- selection ----------------------------------------------------------

    def select(self) -> Replica | None:
        """The healthy replica with the best observed latency."""
        usable = [replica for replica in self.replicas if replica.usable()]
        if not usable:
            return None
        best = min(replica.rank() for replica in usable)
        tied = [replica for replica in usable if replica.rank() == best]
        return tied[0] if len(tied) == 1 else self.rng.choice(tied)

    def _candidates(self):
        """Yield usable replicas best-first until none remain, pacing
        full-set outages with the jittered backoff policy."""
        tried: set[str] = set()
        while True:
            usable = sorted(
                (replica for replica in self.replicas
                 if replica.usable() and replica.name not in tried),
                key=lambda replica: (replica.rank(), replica.name),
            )
            if usable:
                tried.add(usable[0].name)
                yield usable[0]
                continue
            # Everyone left is sidelined (or already tried and failed
            # this round): wait out cooldowns under backoff, then allow
            # a fresh round over anything that recovered.
            recovered = False
            for delay in self.backoff.delays(self.rng):
                if delay:
                    self._m_backoff_waits.inc()
                    self.clock.advance(delay)
                if any(replica.usable() for replica in self.replicas):
                    recovered = True
                    break
            if not recovered:
                return
            tried.clear()

    # -- the ReadOnlyClient transport surface -------------------------------

    def fetch_root(self) -> Record:
        """GETROOT from the best mirror, failing over past dead ones."""
        first = True
        for replica in self._candidates():
            if not first:
                self._m_failovers.inc()
            first = False
            try:
                res = replica.fetch_root()
            except (ConnectionError, OSError, RpcError):
                self._demote(replica)
                continue
            except ReplicaMisconductError:
                self._ban(replica)
                continue
            self._m_fetches.inc()
            return res
        raise ReadOnlyError("no replica answered GETROOT")

    def fetch_data(self, digest: bytes) -> bytes | None:
        """One verified blob: correct bytes from *some* mirror, or an
        error — never unverified data, whatever any mirror does."""
        first = True
        for replica in self._candidates():
            if not first:
                self._m_failovers.inc()
            first = False
            try:
                blob = replica.fetch_data(digest)
            except (ConnectionError, OSError, RpcError):
                self._demote(replica)
                continue
            except ReplicaMisconductError:
                self._ban(replica)
                continue
            if blob is None:
                # A mirror of a signed image that lacks one of its
                # blobs is stale or lying; either way, not servable.
                self._demote(replica)
                continue
            if sha1(blob) != digest:
                self._m_corrupt.inc()
                self._ban(replica)
                continue
            self._m_fetches.inc()
            return blob
        raise ReadOnlyError(
            f"no healthy replica holds {digest.hex()[:12]} "
            f"({sum(r.banned for r in self.replicas)} banned, "
            f"{len(self.replicas)} total)"
        )

    # -- demotion ------------------------------------------------------------

    def _demote(self, replica: Replica) -> None:
        replica.sideline()
        self._m_demotions.inc()

    def _ban(self, replica: Replica) -> None:
        replica.ban()
        self._m_demotions.inc()
        self._m_bans.inc()

    def stats(self) -> list[dict]:
        return [replica.stats() for replica in self.replicas]
