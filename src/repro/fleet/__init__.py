"""Fleet federation: sharded namespace + untrusted replica tier.

See :mod:`repro.fleet.fleet` for the big picture.  The pieces:

* :mod:`~repro.fleet.sharding` — consistent hashing over HostIDs.
* :mod:`~repro.fleet.fleet` — N shard servers behind one CA namespace.
* :mod:`~repro.fleet.replicas` — verified fetching over untrusted
  mirrors with latency-ranked selection and tamper demotion.
* :mod:`~repro.fleet.bench` — the ``bench fleet`` scaling figure.
"""

from .fleet import Fleet, Shard
from .replicas import (
    Replica,
    ReplicaMisconductError,
    ReplicaSet,
    dial_readonly,
)
from .sharding import HashRing

__all__ = [
    "Fleet",
    "HashRing",
    "Replica",
    "ReplicaMisconductError",
    "ReplicaSet",
    "Shard",
    "dial_readonly",
]
