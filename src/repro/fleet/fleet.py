"""Fleet federation: one namespace, many servers, zero extra trust.

The paper's namespace composes by construction — "CAs are nothing more
than ordinary file systems serving symbolic links", and a symbolic link
can point at *any* self-certifying pathname.  A :class:`Fleet` takes
that literally at scale:

* **shards** — N ordinary SFS servers, each with its own key pair and
  read-write export.  No shard knows the others exist; there is no
  fleet-wide secret and no inter-server protocol.
* **placement** — each provisioned name is owned by the shard that the
  consistent-hash ring (:class:`~repro.fleet.sharding.HashRing` over
  the shards' HostIDs) assigns it; growing the fleet moves ~1/N names.
* **namespace** — a certification authority serves one symlink per
  name, ``/<name> -> /sfs/<shard-Location>:<HostID>/<name>``.  The CA
  tree is published as a signed read-only image, so it can be mirrored
  by machines nobody trusts, and the mirrors form the client's
  :class:`~repro.fleet.replicas.ReplicaSet`.

A client resolves ``/sfs/<ca>:<HostID>/alice`` by reading a verified
symlink (possibly from the nearest untrusted mirror), follows it, and
lands on alice's shard with the full read-write security of a direct
mount — key management and namespace placement stay out of the file
systems' trust story, which is the paper's thesis applied to topology.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pathnames import SelfCertifyingPath, hostid_to_text
from ..fs import pathops
from ..keymgmt.ca import CertificationAuthority
from ..sim.network import NetworkParameters
from .sharding import DEFAULT_VNODES, HashRing

DEFAULT_KEY_BITS = 768


@dataclass
class Shard:
    """One fleet member: an ordinary server plus its export's identity."""

    server: object               # kernel.world.ServerMachine
    path: SelfCertifyingPath     # the shard export's self-certifying name
    export: str                  # export name on the server

    @property
    def location(self) -> str:
        return self.server.location

    @property
    def hostid_text(self) -> str:
        return hostid_to_text(self.path.hostid)

    @property
    def fs(self):
        return self.server.exports[self.export][1]


class Fleet:
    """N shard servers behind one CA-served, mirrorable namespace."""

    def __init__(self, world, count: int, name: str = "fleet",
                 key_bits: int = DEFAULT_KEY_BITS,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if count < 1:
            raise ValueError("a fleet needs at least one shard")
        self.world = world
        self.name = name
        self.key_bits = key_bits
        self.shards: list[Shard] = []          # in creation order
        self.ring = HashRing(vnodes=vnodes)
        self._by_hostid: dict[str, Shard] = {}
        self._m_shards = world.metrics.gauge("fleet.shards")
        self._m_provisioned = world.metrics.counter("fleet.provisioned")
        self._m_republished = world.metrics.counter(
            "fleet.namespace_publications"
        )
        for index in range(count):
            self.add_shard(f"shard{index}.{name}")
        self.ca = CertificationAuthority(f"ca.{name}", world.rng,
                                         key_bits=key_bits)
        self.ca_server = None
        self.mirror_locations: list[str] = []
        #: name -> owning shard Location, in provision order.
        self.assignments: dict[str, str] = {}
        self.image = None

    # -- topology ------------------------------------------------------------

    def add_shard(self, location: str) -> Shard:
        """Grow the fleet by one server; existing names stay put (the
        ring only re-homes ~1/N of *future* lookups, so republishing
        the namespace after growth invalidates a minimal slice)."""
        server = self.world.add_server(location)
        path = server.export_fs(name=f"{self.name}-shard",
                                key_bits=self.key_bits)
        shard = Shard(server=server, path=path, export=f"{self.name}-shard")
        self.ring.add(shard.hostid_text)
        self._by_hostid[shard.hostid_text] = shard
        self.shards.append(shard)
        self._m_shards.set(len(self.shards))
        return shard

    def shard_for(self, name: str) -> Shard:
        """The shard owning *name* under the current ring."""
        return self._by_hostid[self.ring.lookup(name)]

    # -- provisioning ----------------------------------------------------------

    def provision(self, name: str) -> str:
        """Create *name*'s directory on its shard and certify the link.

        Returns the symlink target — the full self-certifying pathname
        of the directory, e.g. ``/sfs/shard2.fleet:HOSTID/alice``.
        """
        shard = self.shard_for(name)
        pathops.mkdirs(shard.fs, "/" + name)
        target = f"/sfs/{shard.path.mount_name}/{name}"
        self.ca.certify(name, target)
        self.assignments[name] = shard.location
        self._m_provisioned.inc()
        return target

    # -- publication -----------------------------------------------------------

    def publish(self, mirrors: int = 0,
                mirror_params: NetworkParameters | None = None
                ) -> SelfCertifyingPath:
        """Sign the namespace and serve it, optionally via mirrors.

        The CA's own server plus *mirrors* untrusted machines each get
        a copy of the signed image (``replicate()``: bytes, no keys).
        *mirror_params* gives the mirror links their own network
        parameters — e.g. WAN mirrors in a LAN world, so the clients'
        latency-ranked selection has something to rank.
        """
        self.image = self.ca.publish_image()
        self._m_republished.inc()
        if self.ca_server is None:
            self.ca_server = self.world.add_server(self.ca.location,
                                                   with_disk=False)
        self.ca_server.master.add_ro_export(self.image,
                                            name=f"{self.name}-namespace")
        for index in range(mirrors):
            location = f"mirror{index}.{self.name}"
            if location not in self.world.servers:
                mirror = self.world.add_server(location, with_disk=False)
                if mirror_params is not None:
                    self.world.set_link_params(location, mirror_params)
                self.mirror_locations.append(location)
            else:
                mirror = self.world.servers[location]
            mirror.master.add_ro_export(self.image.replicate(),
                                        name=f"{self.name}-namespace")
        return self.ca.path

    @property
    def namespace_path(self) -> SelfCertifyingPath:
        return self.ca.path

    @property
    def replica_locations(self) -> tuple[str, ...]:
        """Everywhere the namespace is served: CA first, then mirrors."""
        return (self.ca.location, *self.mirror_locations)

    # -- clients ---------------------------------------------------------------

    def attach(self, client) -> SelfCertifyingPath:
        """Point a ClientMachine's sfscd at the namespace replica tier.

        After this, any mount of the namespace path fetches through a
        latency-ranked ReplicaSet over the CA and its mirrors.
        """
        if self.image is None:
            raise RuntimeError("publish() the namespace before attaching "
                               "clients")
        client.sfscd.register_replicas(self.ca.path,
                                       self.replica_locations)
        return self.ca.path

    # -- diagnostics ------------------------------------------------------------

    def placement(self) -> dict[str, int]:
        """Provisioned names per shard Location (balance check)."""
        counts = {shard.location: 0 for shard in self.shards}
        for location in self.assignments.values():
            counts[location] += 1
        return counts
