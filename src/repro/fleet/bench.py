"""The ``bench fleet`` figure: aggregate throughput vs. fleet size.

Not a paper figure — the paper measures one server — but the paper's
architecture *predicts* this one: because the namespace composes out of
ordinary symlinks and no server knows the others exist, capacity should
scale by adding servers, with clients spread across shards by the
consistent-hash placement.  The figure fixes the client population and
sweeps the server count; aggregate ops/s rises until the clients (not
the servers) are the bottleneck, and per-shard p99 falls as each shard's
queue drains faster than it fills.

Two phases per run, both fully simulated and deterministic per seed:

* **namespace** — a real client machine mounts the fleet's signed
  namespace through the untrusted replica tier and resolves every
  provisioned name, verifying each symlink against the placement the
  fleet recorded at provision time.
* **data path** — N closed-loop clients (the PR-4 load harness pattern:
  think, call, repeat) drive their names' owning shards through each
  shard's bounded request queue.

:func:`run_tamper_demo` is the security half of the figure: the fastest
mirror of the namespace serves bit-flipped blobs, and the client bans it
on the first digest mismatch while every resolved link stays correct —
demotion costs a round trip, never a byte.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core import proto
from ..core.client import ServerSession
from ..core.keyneg import EphemeralKeyCache
from ..fs import pathops
from ..fs.memfs import Cred
from ..kernel.world import World
from ..load.workload import DEFAULT_MIX, FILE_SIZE, OpMix, OpStream
from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types
from ..rpc.peer import RetryPolicy, RpcError
from ..sim.network import NetworkParameters
from ..sim.sched import Sleep


@dataclass
class FleetLoadConfig:
    """One fleet run: topology, namespace size, and the offered load."""

    servers: int = 4
    clients: int = 16
    ops_per_client: int = 20
    seed: int = 2026
    #: Mean think time between a client's operations.  Short on purpose:
    #: the sweep wants the *servers* to be the bottleneck at small fleet
    #: sizes, so adding shards shows up as aggregate throughput.
    think_time: float = 0.002
    io_size: int = 4096
    mix: OpMix = DEFAULT_MIX
    #: Provisioned names (directories spread over shards by the ring).
    names: int = 32
    #: Untrusted mirrors of the namespace image.
    mirrors: int = 2
    workers: int = 2
    service_time: float = 0.005
    max_depth: int = 64
    rpc_timeout: float = 1.0
    encrypt: bool = True


@dataclass
class ShardReport:
    """One shard's share of a run."""

    location: str
    names: int = 0
    clients: int = 0
    ops_completed: int = 0
    p50: float = 0.0
    p99: float = 0.0
    peak_queue_depth: int = 0
    latencies: list[float] = field(default_factory=list, repr=False)

    def finish(self) -> None:
        self.ops_completed = len(self.latencies)
        if self.latencies:
            ordered = sorted(self.latencies)
            self.p50 = _percentile(ordered, 0.50)
            self.p99 = _percentile(ordered, 0.99)


@dataclass
class FleetReport:
    """One fleet run's outcome, all figures in simulated seconds."""

    servers: int
    clients: int
    ops_completed: int = 0
    op_errors: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    unfinished_tasks: int = 0
    shards: list[ShardReport] = field(default_factory=list)
    #: Namespace-tier counters (fleet.replica.*) from the resolve phase.
    namespace: dict = field(default_factory=dict)
    #: Symlinks resolved through the replica tier, all verified.
    names_resolved: int = 0
    latencies: list[float] = field(default_factory=list, repr=False)

    def finish(self, duration: float) -> None:
        self.duration = duration
        self.ops_completed = len(self.latencies)
        if duration > 0:
            self.throughput = self.ops_completed / duration
        if self.latencies:
            ordered = sorted(self.latencies)
            self.p50 = _percentile(ordered, 0.50)
            self.p95 = _percentile(ordered, 0.95)
            self.p99 = _percentile(ordered, 0.99)
        for shard in self.shards:
            shard.finish()

    def worst_shard_p99(self) -> float:
        return max((s.p99 for s in self.shards if s.latencies), default=0.0)


def _percentile(ordered: list[float], q: float) -> float:
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class FleetHarness:
    """Owns the world, the fleet, and the per-shard client sessions."""

    def __init__(self, config: FleetLoadConfig) -> None:
        self.config = config
        self.world = World(seed=config.seed)
        self.scheduler = self.world.enable_concurrency(seed=config.seed)
        self.world.enable_contention()
        self.fleet = self.world.add_fleet(config.servers)
        self.names = [f"proj{index:02d}" for index in range(config.names)]
        self.targets: dict[str, str] = {}
        for name in self.names:
            self.targets[name] = self.fleet.provision(name)
            self._seed_file(name)
        self.fleet.publish(mirrors=config.mirrors)
        self.names_resolved = self._resolve_namespace()
        self.queues = {
            shard.location: shard.server.enable_queueing(
                max_depth=config.max_depth, workers=config.workers,
                service_time=config.service_time,
            )
            for shard in self.fleet.shards
        }
        self._shard_reports = {
            shard.location: ShardReport(location=shard.location)
            for shard in self.fleet.shards
        }
        for location in self.fleet.assignments.values():
            self._shard_reports[location].names += 1
        self._m_shard_ops = self.world.metrics.family("fleet.shard.ops")
        self._m_op_seconds = self.world.metrics.histogram("fleet.op_seconds")
        #: client index -> (session, shard report, file handle)
        self._clients: list[tuple[ServerSession, ShardReport, bytes]] = []
        self._connect_clients()

    # -- setup -------------------------------------------------------------

    def _seed_file(self, name: str) -> None:
        """A world-accessible data file in the name's directory, so the
        anonymous (authno 0) load clients skip the login protocol — the
        figure measures the data path, not authentication."""
        shard = self.fleet.shard_for(name)
        fs = shard.fs
        owner = Cred(uid=0, gid=0)
        directory = pathops.resolve(fs, "/" + name)
        content = bytes(range(256)) * (FILE_SIZE // 256)
        inode = fs.create(directory.ino, "data", owner, mode=0o666)
        fs.write(inode.ino, 0, content, owner)
        fs.commit(inode.ino)

    def _resolve_namespace(self) -> int:
        """Mount the namespace through the replica tier and resolve
        every provisioned name, verifying each link against the
        placement recorded at provision time."""
        client = self.world.add_client("bench-client", with_disk=False)
        self.fleet.attach(client)
        process = client.root_process()
        prefix = f"/sfs/{self.fleet.namespace_path.mount_name}"
        resolved = 0
        for name in self.names:
            link = process.readlink(f"{prefix}/{name}")
            if link != self.targets[name]:
                raise AssertionError(
                    f"namespace resolved {name} to {link}, "
                    f"expected {self.targets[name]}"
                )
            resolved += 1
        return resolved

    def _connect_clients(self) -> None:
        """One session per load client, dialed at its name's owning
        shard.  A shared ephemeral-key cache plays N identical client
        machines without paying N key generations."""
        config = self.config
        shared_keys = EphemeralKeyCache(self.world.rng)
        handles: dict[str, bytes] = {}
        for index in range(config.clients):
            name = self.names[index % len(self.names)]
            shard = self.fleet.shard_for(name)
            link = self.world.connector(shard.location,
                                        proto.SERVICE_FILESERVER)
            outcome = ServerSession.connect(
                link, shard.path, shared_keys, self.world.rng,
                encrypt=config.encrypt,
            )
            assert isinstance(outcome, ServerSession)
            outcome.peer.retry_policy = RetryPolicy(
                base_delay=config.rpc_timeout, multiplier=2.0,
                max_delay=4.0 * config.rpc_timeout,
            )
            if name not in handles:
                handles[name] = self._lookup_data(outcome, name)
            report = self._shard_reports[shard.location]
            report.clients += 1
            self._clients.append((outcome, report, handles[name]))

    def _lookup_data(self, session: ServerSession, name: str) -> bytes:
        """Resolve /<name>/data once; the export's handle map is a pure
        function of its durable key, so the handle works on every
        session to the same shard."""

        def lookup(dir_handle: bytes, entry: str) -> bytes:
            status, body = session.call_nfs(
                nfs_const.NFSPROC3_LOOKUP,
                nfs_types.LookupArgs.make(
                    what=nfs_types.DirOpArgs.make(dir=dir_handle,
                                                  name=entry)
                ),
                authno=0,
            )
            assert status == nfs_const.NFS3_OK, f"lookup({entry}): {status}"
            return body.object

        root = lookup(bytes(24), ".")  # the RW dialect's mount convention
        return lookup(lookup(root, name), "data")

    # -- the closed loop ---------------------------------------------------

    def _run_op(self, session: ServerSession, stream: OpStream,
                report: FleetReport, shard: ShardReport):
        proc, args = stream.next_op()
        clock = self.world.clock
        start = clock.now
        try:
            status, _body = yield from session.call_nfs_task(proc, args, 0)
        except RpcError:
            report.op_errors += 1
            return
        if status != nfs_const.NFS3_OK:
            report.op_errors += 1
            return
        latency = clock.now - start
        report.latencies.append(latency)
        shard.latencies.append(latency)
        self._m_op_seconds.observe(latency)
        self._m_shard_ops.labels(shard.location).inc()

    def _client(self, index: int, report: FleetReport):
        config = self.config
        session, shard, handle = self._clients[index]
        stream = OpStream([handle], config.mix, config.io_size,
                          seed=(config.seed << 8) ^ index)
        think_rng = random.Random((config.seed << 16) ^ index)
        for _op in range(config.ops_per_client):
            if config.think_time > 0:
                yield Sleep(think_rng.expovariate(1.0 / config.think_time))
            yield from self._run_op(session, stream, report, shard)

    def run(self) -> FleetReport:
        config = self.config
        report = FleetReport(servers=config.servers, clients=config.clients)
        report.shards = [self._shard_reports[shard.location]
                         for shard in self.fleet.shards]
        report.names_resolved = self.names_resolved
        start = self.world.clock.now
        for index in range(config.clients):
            self.scheduler.spawn(self._client(index, report),
                                 name=f"fleet-client-{index}")
        blocked = self.scheduler.run()
        report.unfinished_tasks = len(blocked)
        report.op_errors += sum(
            1 for task in self.scheduler.tasks
            if task.failed and not task.daemon
        )
        for location, queue in self.queues.items():
            self._shard_reports[location].peak_queue_depth = queue.peak_depth
        metrics = self.world.metrics
        report.namespace = {
            key: metrics.counter(f"fleet.replica.{key}").value
            for key in ("fetches", "failovers", "demotions", "bans",
                        "corrupt_blobs", "backoff_waits")
        }
        report.finish(self.world.clock.now - start)
        return report


# -- the tamper demonstration ----------------------------------------------


@dataclass
class TamperReport:
    """Outcome of resolving the namespace past a tampering mirror."""

    names_resolved: int = 0
    wrong_links: int = 0
    corrupt_blobs: int = 0
    bans: int = 0
    failovers: int = 0
    banned_replicas: list[str] = field(default_factory=list)
    replicas: list[dict] = field(default_factory=list)


def run_tamper_demo(seed: int = 2026, names: int = 6,
                    mirrors: int = 2) -> TamperReport:
    """The fastest mirror serves bit-flipped blobs; the client bans it
    on the first digest mismatch and every resolved link stays correct.

    The tampering mirror is *preferred* by construction — the CA and the
    honest mirrors sit behind WAN links while the tamperer is on the
    LAN — so the demotion is exercised on the primary path, not a
    fallback nobody takes.
    """
    world = World(seed=seed)
    fleet = world.add_fleet(2, name="fleet")
    expected = {}
    for index in range(names):
        name = f"proj{index:02d}"
        expected[name] = fleet.provision(name)
    fleet.publish(mirrors=mirrors)
    wan = NetworkParameters.wan()
    world.set_link_params(fleet.ca.location, wan)
    for location in fleet.mirror_locations[1:]:
        world.set_link_params(location, wan)
    tamperer = fleet.mirror_locations[0]
    store = world.servers[tamperer].master._ro[
        fleet.namespace_path.hostid].store.image.store
    for digest, blob in list(store.items()):
        store[digest] = bytes([blob[0] ^ 0x01]) + blob[1:]

    client = world.add_client("victim", with_disk=False)
    fleet.attach(client)
    process = client.root_process()
    prefix = f"/sfs/{fleet.namespace_path.mount_name}"
    report = TamperReport()
    for name, target in expected.items():
        link = process.readlink(f"{prefix}/{name}")
        if link == target:
            report.names_resolved += 1
        else:
            report.wrong_links += 1
    replica_set = client.sfscd.replica_sets[fleet.namespace_path.hostid]
    report.replicas = replica_set.stats()
    report.banned_replicas = [entry["name"] for entry in report.replicas
                              if entry["banned"]]
    metrics = world.metrics
    report.corrupt_blobs = metrics.counter(
        "fleet.replica.corrupt_blobs").value
    report.bans = metrics.counter("fleet.replica.bans").value
    report.failovers = metrics.counter("fleet.replica.failovers").value
    return report
