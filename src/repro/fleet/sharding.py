"""Consistent hashing over HostIDs: the fleet's namespace sharder.

The paper's namespace is symbolic links all the way down — a
certification authority "is nothing more than an ordinary file system
serving symbolic links", and nothing stops those links from spreading
one logical tree across many servers.  The ring decides *which* link a
name gets: each shard (identified by its export's HostID, the only
stable server name SFS has) is hashed onto a circle at ``vnodes``
points, and a key belongs to the first shard point at or clockwise
from the key's own hash.

Consistent hashing is what makes the fleet growable: adding a shard
moves only ~1/N of the keys, so republishing the CA's link directory
after a topology change invalidates a minimal slice of client
bookmarks.  All hashing is SHA-1 (the repo's one digest), so placement
is a pure function of the membership — every client, server, and test
computes the same ring with no coordination.
"""

from __future__ import annotations

from bisect import bisect_right

from ..crypto.sha1 import sha1

DEFAULT_VNODES = 64


class HashRing:
    """Consistent hash ring mapping keys to member ids.

    Members are opaque strings (the fleet uses HostID hex).  Lookup is
    O(log(members * vnodes)); membership changes rebuild nothing but
    the changed member's points.
    """

    def __init__(self, members: list[str] | None = None,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("need at least one virtual node per member")
        self.vnodes = vnodes
        self._points: list[tuple[int, str]] = []
        self._members: set[str] = set()
        for member in members or []:
            self.add(member)

    @staticmethod
    def _hash(data: bytes) -> int:
        return int.from_bytes(sha1(data)[:8], "big")

    def add(self, member: str) -> None:
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        self._members.add(member)
        for index in range(self.vnodes):
            point = self._hash(f"{member}#{index}".encode())
            self._points.append((point, member))
        self._points.sort()

    def remove(self, member: str) -> None:
        if member not in self._members:
            raise KeyError(member)
        self._members.remove(member)
        self._points = [(point, m) for point, m in self._points
                        if m != member]

    @property
    def members(self) -> set[str]:
        return set(self._members)

    def lookup(self, key: str | bytes) -> str:
        """The member owning *key* (first point clockwise of its hash)."""
        if not self._points:
            raise LookupError("ring has no members")
        data = key.encode() if isinstance(key, str) else key
        target = self._hash(data)
        index = bisect_right(self._points, (target, ""))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._points[index][1]

    def distribution(self, keys: list[str | bytes]) -> dict[str, int]:
        """How many of *keys* each member owns (balance diagnostics)."""
        counts: dict[str, int] = {member: 0 for member in self._members}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
