"""Accelerated backends for the from-scratch primitives.

Every algorithm in :mod:`repro.crypto` is implemented from scratch and
those implementations are the *reference*: the test suite verifies them
against published vectors and, where possible, against the standard
library.  Where a bit-identical faster implementation exists, this
module lets the hot paths delegate to it so that benchmark results
reflect the paper's relative costs rather than pure-Python speed:

* ``use_fast_sha1`` — one-shot SHA-1/HMAC go through hashlib's C code.
* ``use_fast_arc4`` — ARC4 keystream blocks come from
  :mod:`repro.crypto.arc4kernel` (OpenSSL's RC4 when its layout
  self-check passes, else the unrolled pure-Python block loop) instead
  of the reference per-byte loop.
* ``use_fast_marshal`` — XDR codecs with an installed flat fast path
  (:mod:`repro.nfs3.fastpath`) marshal via precompiled struct formats
  instead of per-field codec dispatch.

The delegation is sound precisely because the outputs are identical —
``tests/unit/test_sha1.py`` asserts equality between the from-scratch
SHA-1 and hashlib on randomized inputs, and the golden wire-vector
suite (``tests/unit/test_wire_vectors.py``) asserts that channel records
and the hot NFS3 marshals are bit-for-bit the same under both settings —
so flipping these flags cannot change any protocol bytes, only speed.

Call :func:`set_fast` to switch globally (e.g. ``set_fast(False)`` in
tests that exercise the reference implementations end to end).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

#: When True (default), one-shot SHA-1/HMAC use hashlib's C implementation.
use_fast_sha1 = True

#: When True (default), ARC4 keystream generation uses the block kernel.
use_fast_arc4 = True

#: When True (default), codecs with flat fast paths use them.
use_fast_marshal = True


def set_fast(enabled: bool, *, sha1: bool | None = None,
             arc4: bool | None = None,
             marshal: bool | None = None) -> None:
    """Globally enable/disable the accelerated backends.

    The positional flag flips everything at once (the common case in
    tests); keyword overrides pin individual backends, e.g.
    ``set_fast(True, arc4=False)`` to benchmark the pure-Python cipher
    under fast hashing.
    """
    global use_fast_sha1, use_fast_arc4, use_fast_marshal
    use_fast_sha1 = enabled if sha1 is None else sha1
    use_fast_arc4 = enabled if arc4 is None else arc4
    use_fast_marshal = enabled if marshal is None else marshal


def fast_sha1(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()


def fast_hmac_sha1(key: bytes, message: bytes) -> bytes:
    return _hmac.new(key, message, hashlib.sha1).digest()


def fast_hmac_sha1_parts(key: bytes, *parts: bytes) -> bytes:
    """HMAC over the concatenation of *parts* without concatenating.

    Bit-identical to ``fast_hmac_sha1(key, b"".join(parts))``; the
    channel MAC uses it to authenticate length‖message without building
    a copy of every payload.
    """
    mac = _hmac.new(key, digestmod=hashlib.sha1)
    for part in parts:
        mac.update(part)
    return mac.digest()
