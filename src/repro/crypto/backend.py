"""Accelerated backends for the from-scratch primitives.

Every algorithm in :mod:`repro.crypto` is implemented from scratch and
those implementations are the *reference*: the test suite verifies them
against published vectors and, where possible, against the standard
library.  For primitives where the standard library happens to contain a
bit-identical implementation (SHA-1, HMAC-SHA1), this module lets the hot
paths delegate to it so that benchmark results reflect the paper's
relative costs rather than pure-Python hashing speed.

The delegation is sound precisely because the outputs are identical —
``tests/unit/test_sha1.py`` asserts equality between the from-scratch
SHA-1 and hashlib on randomized inputs, so flipping
:data:`use_fast_sha1` cannot change any protocol bytes, only speed.

Call :func:`set_fast` to switch globally (e.g. ``set_fast(False)`` in
tests that exercise the reference implementations end to end).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

#: When True (default), one-shot SHA-1/HMAC use hashlib's C implementation.
use_fast_sha1 = True


def set_fast(enabled: bool) -> None:
    """Globally enable/disable the accelerated SHA-1 backend."""
    global use_fast_sha1
    use_fast_sha1 = enabled


def fast_sha1(data: bytes) -> bytes:
    return hashlib.sha1(data).digest()


def fast_hmac_sha1(key: bytes, message: bytes) -> bytes:
    return _hmac.new(key, message, hashlib.sha1).digest()
