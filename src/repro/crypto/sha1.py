"""SHA-1 implemented from scratch per FIPS 180-1.

SFS uses SHA-1 everywhere: HostID computation (with deliberately duplicated
input, paper section 2.2), session-key derivation, the per-message MAC, the
DSS pseudo-random generator, and AuthID hashing.  This implementation offers
the familiar ``update() / digest() / hexdigest() / copy()`` streaming
interface and is verified against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


class SHA1:
    """Streaming SHA-1 hash object."""

    digest_size = 20
    block_size = 64
    name = "sha1"

    def __init__(self, data: bytes = b"") -> None:
        self._h = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb more message bytes."""
        self._length += len(data)
        self._buffer += data
        nblocks = len(self._buffer) // 64
        for i in range(nblocks):
            self._compress(self._buffer[i * 64 : (i + 1) * 64])
        self._buffer = self._buffer[nblocks * 64 :]

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            e = d
            d = c
            c = _rotl(b, 30)
            b = a
            a = temp
        self._h = (
            (self._h[0] + a) & _MASK,
            (self._h[1] + b) & _MASK,
            (self._h[2] + c) & _MASK,
            (self._h[3] + d) & _MASK,
            (self._h[4] + e) & _MASK,
        )

    def digest(self) -> bytes:
        """Return the 20-byte digest of the data absorbed so far."""
        clone = self.copy()
        bit_length = clone._length * 8
        clone.update(b"\x80")
        while len(clone._buffer) != 56:
            clone.update(b"\x00")
        # Append the length directly so it is not counted in _length.
        clone._buffer += struct.pack(">Q", bit_length)
        clone._compress(clone._buffer)
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    def copy(self) -> "SHA1":
        """Return an independent copy of this hash object."""
        clone = SHA1.__new__(SHA1)
        clone._h = self._h
        clone._buffer = self._buffer
        clone._length = self._length
        return clone


def sha1(data: bytes) -> bytes:
    """One-shot SHA-1 digest.

    Delegates to the (bit-identical, test-verified) hashlib backend when
    :data:`repro.crypto.backend.use_fast_sha1` is set; the from-scratch
    :class:`SHA1` above is always available as the reference.
    """
    from . import backend

    if backend.use_fast_sha1:
        return backend.fast_sha1(data)
    return SHA1(data).digest()


def sha1_concat(*parts: bytes) -> bytes:
    """SHA-1 over the concatenation of *parts* (protocol convenience)."""
    return sha1(b"".join(parts))
