"""Blowfish block cipher implemented from scratch.

SFS uses Blowfish in CBC mode with a 20-byte key to encrypt NFS file
handles before they leave the server (paper section 3.3), and eksblowfish
(the expensive-key-schedule variant, :mod:`repro.crypto.eksblowfish`) to
harden user passwords (section 2.5.2).

Blowfish's initial P-array and S-boxes are defined as the hexadecimal
digits of pi.  Rather than embedding four kilobytes of constants, this
module computes pi to 8,336 hex digits at first use with Machin's formula
on fixed-point integers — everything stays from scratch and the well-known
value ``P[0] == 0x243f6a88`` is asserted (and re-checked by unit tests
against published Blowfish test vectors).
"""

from __future__ import annotations

_N_ROUNDS = 16
_PI_WORDS_NEEDED = 18 + 4 * 256

_pi_words_cache: list[int] | None = None


def _arctan_inv(x: int, one: int) -> int:
    """Fixed-point arctan(1/x) scaled by *one* (Gregory series)."""
    power = one // x
    total = power
    x_squared = x * x
    divisor = 1
    sign = 1
    while power:
        power //= x_squared
        divisor += 2
        sign = -sign
        total += sign * (power // divisor)
    return total


def pi_hex_digits(ndigits: int) -> str:
    """Fractional hexadecimal digits of pi, computed with Machin's formula.

    ``pi = 16*atan(1/5) - 4*atan(1/239)``, evaluated on integers scaled by
    ``16**(ndigits + guard)``.
    """
    guard = 10
    scale = 16 ** (ndigits + guard)
    pi_scaled = 16 * _arctan_inv(5, scale) - 4 * _arctan_inv(239, scale)
    fraction = pi_scaled - 3 * scale
    if not 0 < fraction < scale:
        raise ArithmeticError("pi computation out of range")
    return format(fraction, "x").zfill(ndigits + guard)[:ndigits]


def _pi_words() -> list[int]:
    """The 1042 32-bit words of pi that initialize Blowfish."""
    global _pi_words_cache
    if _pi_words_cache is None:
        digits = pi_hex_digits(_PI_WORDS_NEEDED * 8)
        words = [int(digits[i * 8 : (i + 1) * 8], 16) for i in range(_PI_WORDS_NEEDED)]
        if words[0] != 0x243F6A88:
            raise ArithmeticError("pi digit computation failed self-check")
        _pi_words_cache = words
    return _pi_words_cache


class Blowfish:
    """Blowfish cipher with 8-byte blocks and 1-56 byte keys.

    ``expand=False`` builds the raw pi state without keying, which
    eksblowfish needs to drive its own schedule.
    """

    block_size = 8

    def __init__(self, key: bytes = b"", expand: bool = True) -> None:
        words = _pi_words()
        self._p = words[:18]
        self._s = [words[18 + box * 256 : 18 + (box + 1) * 256] for box in range(4)]
        if expand:
            if not 1 <= len(key) <= 56:
                raise ValueError("Blowfish key must be 1..56 bytes")
            self.expand_key(key)

    def expand_key(self, key: bytes, salt: bytes = b"\x00" * 16) -> None:
        """The (eks)Blowfish ExpandKey step.

        With an all-zero *salt* this is the classic Blowfish key schedule;
        with a real 16-byte salt it is bcrypt's salted variant.
        """
        if len(salt) != 16:
            raise ValueError("salt must be 16 bytes")
        p = self._p
        for n in range(18):
            word = int.from_bytes(
                bytes(key[(n * 4 + i) % len(key)] for i in range(4)), "big"
            )
            p[n] ^= word
        salt_words = [int.from_bytes(salt[i * 4 : (i + 1) * 4], "big") for i in range(4)]
        left = right = 0
        idx = 0
        for n in range(9):
            left ^= salt_words[idx % 4]
            right ^= salt_words[(idx + 1) % 4]
            idx += 2
            left, right = self._encrypt_words(left, right)
            p[2 * n] = left
            p[2 * n + 1] = right
        for box in self._s:
            for n in range(128):
                left ^= salt_words[idx % 4]
                right ^= salt_words[(idx + 1) % 4]
                idx += 2
                left, right = self._encrypt_words(left, right)
                box[2 * n] = left
                box[2 * n + 1] = right

    def _encrypt_words(self, left: int, right: int) -> tuple[int, int]:
        p = self._p
        s0, s1, s2, s3 = self._s
        for n in range(_N_ROUNDS):
            left ^= p[n]
            f = (s0[left >> 24] + s1[(left >> 16) & 0xFF]) & 0xFFFFFFFF
            f ^= s2[(left >> 8) & 0xFF]
            f = (f + s3[left & 0xFF]) & 0xFFFFFFFF
            right ^= f
            left, right = right, left
        left, right = right, left
        right ^= p[16]
        left ^= p[17]
        return left, right

    def _decrypt_words(self, left: int, right: int) -> tuple[int, int]:
        p = self._p
        s0, s1, s2, s3 = self._s
        for n in range(17, 1, -1):
            left ^= p[n]
            f = (s0[left >> 24] + s1[(left >> 16) & 0xFF]) & 0xFFFFFFFF
            f ^= s2[(left >> 8) & 0xFF]
            f = (f + s3[left & 0xFF]) & 0xFFFFFFFF
            right ^= f
            left, right = right, left
        left, right = right, left
        right ^= p[1]
        left ^= p[0]
        return left, right

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block (ECB)."""
        if len(block) != 8:
            raise ValueError("Blowfish block must be 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self._encrypt_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block (ECB)."""
        if len(block) != 8:
            raise ValueError("Blowfish block must be 8 bytes")
        left = int.from_bytes(block[:4], "big")
        right = int.from_bytes(block[4:], "big")
        left, right = self._decrypt_words(left, right)
        return left.to_bytes(4, "big") + right.to_bytes(4, "big")

    def encrypt_cbc(self, data: bytes, iv: bytes) -> bytes:
        """CBC-mode encryption; *data* must be a multiple of 8 bytes."""
        if len(iv) != 8:
            raise ValueError("IV must be 8 bytes")
        if len(data) % 8:
            raise ValueError("CBC input must be a multiple of the block size")
        out = bytearray()
        prev = iv
        for i in range(0, len(data), 8):
            block = bytes(a ^ b for a, b in zip(data[i : i + 8], prev))
            prev = self.encrypt_block(block)
            out += prev
        return bytes(out)

    def decrypt_cbc(self, data: bytes, iv: bytes) -> bytes:
        """CBC-mode decryption; *data* must be a multiple of 8 bytes."""
        if len(iv) != 8:
            raise ValueError("IV must be 8 bytes")
        if len(data) % 8:
            raise ValueError("CBC input must be a multiple of the block size")
        out = bytearray()
        prev = iv
        for i in range(0, len(data), 8):
            block = data[i : i + 8]
            plain = self.decrypt_block(block)
            out += bytes(a ^ b for a, b in zip(plain, prev))
            prev = block
        return bytes(out)
