"""The Secure Remote Password protocol (SRP), as used by sfskey/authserv.

The paper (section 2.4, "Password authentication") uses SRP to let users
securely download self-certifying pathnames with nothing but a password:
"SRP permits a client and server sharing a weak secret to negotiate a
strong session key without exposing the weak secret to off-line guessing
attacks."

This is an SRP-6a-shaped implementation built on our from-scratch SHA-1,
with the private exponent *x* derived through eksblowfish (paper section
2.5.2) so that even a compromised verifier database costs an attacker
``2**cost`` Blowfish expansions per password guess.

Message flow (client C, server S, user identity I):

1. C -> S: I, A = g^a
2. S -> C: salt, B = k*v + g^b
3. both:   u = H(A, B);  S_c = (B - k*g^x)^(a + u*x);  S_s = (A * v^u)^b
4. C -> S: M1 = H(A, B, K)   (proof of session key K = H(S))
5. S -> C: M2 = H(A, M1, K)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .eksblowfish import harden_password
from .sha1 import sha1
from .util import bytes_to_int, constant_time_eq, int_to_bytes

#: 1024-bit safe-prime group from RFC 5054 (appendix A).
GROUP_N = int(
    "EEAF0AB9ADB38DD69C33F80AFA8FC5E86072618775FF3C0B9EA2314C"
    "9C256576D674DF7496EA81D3383B4813D692C6E0E0D5D8E250B98BE4"
    "8E495C1D6089DAD15DC7D7B46154D6B6CE8EF4AD69B15D4982559B29"
    "7BCF1885C529F566660E57EC68EDBC3C05726CC02FD4CBF4976EAA9A"
    "FD5138FE8376435B9FC61D2FC0EB06E3",
    16,
)
GROUP_G = 2

DEFAULT_COST = 6


class SRPError(Exception):
    """Raised on protocol violations or failed proofs."""


def _hash_int(*parts: bytes) -> int:
    h = sha1(b"".join(parts))
    return bytes_to_int(h)


def _pad(value: int) -> bytes:
    return int_to_bytes(value, (GROUP_N.bit_length() + 7) // 8)


def _multiplier() -> int:
    """SRP-6a multiplier k = H(N, g)."""
    return _hash_int(_pad(GROUP_N), _pad(GROUP_G))


def private_exponent(identity: str, password: bytes, salt: bytes, cost: int) -> int:
    """Derive the SRP private exponent x from the hardened password."""
    hardened = harden_password(password, salt + identity.encode(), cost)
    return bytes_to_int(sha1(salt + hardened)) % GROUP_N


@dataclass(frozen=True)
class Verifier:
    """The server-side SRP record for one user (never password-equivalent
    by itself — recovering the password from *v* requires discrete log or
    an eksblowfish-paced guessing attack)."""

    identity: str
    salt: bytes
    v: int
    cost: int

    @classmethod
    def from_password(
        cls,
        identity: str,
        password: bytes,
        rng: random.Random,
        cost: int = DEFAULT_COST,
    ) -> "Verifier":
        salt = bytes(rng.getrandbits(8) for _ in range(16))
        x = private_exponent(identity, password, salt, cost)
        return cls(identity, salt, pow(GROUP_G, x, GROUP_N), cost)


class SRPClient:
    """Client half of the SRP exchange."""

    def __init__(self, identity: str, password: bytes, rng: random.Random) -> None:
        self._identity = identity
        self._password = password
        self._rng = rng
        self._a = 0
        self._A = 0
        self._key: bytes | None = None
        self._m1: bytes | None = None

    @property
    def identity(self) -> str:
        return self._identity

    def start(self) -> int:
        """Step 1: produce the client public value A."""
        while True:
            self._a = self._rng.randrange(2, GROUP_N - 1)
            self._A = pow(GROUP_G, self._a, GROUP_N)
            if self._A % GROUP_N:
                return self._A

    def process_challenge(self, salt: bytes, B: int, cost: int) -> bytes:
        """Step 3/4: absorb the server challenge, return proof M1."""
        if B % GROUP_N == 0:
            raise SRPError("server sent an illegal B")
        if not self._A:
            raise SRPError("start() must be called first")
        u = _hash_int(_pad(self._A), _pad(B))
        if u == 0:
            raise SRPError("hash scrambler u is zero")
        x = private_exponent(self._identity, self._password, salt, cost)
        k = _multiplier()
        base = (B - k * pow(GROUP_G, x, GROUP_N)) % GROUP_N
        secret = pow(base, self._a + u * x, GROUP_N)
        self._key = sha1(_pad(secret))
        self._m1 = sha1(_pad(self._A) + _pad(B) + self._key)
        return self._m1

    def verify_server(self, m2: bytes) -> None:
        """Step 5: check the server's proof M2."""
        if self._key is None or self._m1 is None:
            raise SRPError("process_challenge() must be called first")
        expected = sha1(_pad(self._A) + self._m1 + self._key)
        if not constant_time_eq(m2, expected):
            raise SRPError("server proof M2 does not verify")

    @property
    def session_key(self) -> bytes:
        """The negotiated 20-byte session key (after a successful run)."""
        if self._key is None:
            raise SRPError("no session key negotiated yet")
        return self._key


class SRPServer:
    """Server half of the SRP exchange, driven by a stored verifier."""

    def __init__(self, verifier: Verifier, rng: random.Random) -> None:
        self._verifier = verifier
        self._rng = rng
        self._b = 0
        self._B = 0
        self._A = 0
        self._key: bytes | None = None

    def challenge(self, A: int) -> tuple[bytes, int, int]:
        """Step 2: absorb A, return (salt, B, cost)."""
        if A % GROUP_N == 0:
            raise SRPError("client sent an illegal A")
        self._A = A
        k = _multiplier()
        while True:
            self._b = self._rng.randrange(2, GROUP_N - 1)
            self._B = (k * self._verifier.v + pow(GROUP_G, self._b, GROUP_N)) % GROUP_N
            if self._B:
                break
        return self._verifier.salt, self._B, self._verifier.cost

    def verify_client(self, m1: bytes) -> bytes:
        """Step 4/5: check the client's proof, return our proof M2."""
        if not self._A:
            raise SRPError("challenge() must be called first")
        u = _hash_int(_pad(self._A), _pad(self._B))
        secret = pow(self._A * pow(self._verifier.v, u, GROUP_N), self._b, GROUP_N)
        self._key = sha1(_pad(secret))
        expected = sha1(_pad(self._A) + _pad(self._B) + self._key)
        if not constant_time_eq(m1, expected):
            self._key = None
            raise SRPError("client proof M1 does not verify (wrong password?)")
        return sha1(_pad(self._A) + m1 + self._key)

    @property
    def session_key(self) -> bytes:
        """The negotiated 20-byte session key (after a successful run)."""
        if self._key is None:
            raise SRPError("no session key negotiated yet")
        return self._key
