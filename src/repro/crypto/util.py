"""Small cryptographic utilities shared across the crypto package.

This module provides the byte/integer conversions used throughout the
protocol code, a constant-time comparison primitive, and the SFS base-32
encoding used for HostIDs in self-certifying pathnames.

The paper (section 2.3) specifies the base-32 alphabet precisely: the 32
digits and lower-case letters remaining after omitting the easily confused
characters ``l`` (lower-case L), ``1`` (one), ``0`` (zero) and ``o``.
"""

from __future__ import annotations

import hmac as _hmac

#: The SFS base-32 alphabet: digits and lower-case letters minus l, 1, 0, o.
SFS_BASE32_ALPHABET = "23456789abcdefghijkmnpqrstuvwxyz"

assert len(SFS_BASE32_ALPHABET) == 32

_B32_VALUE = {char: index for index, char in enumerate(SFS_BASE32_ALPHABET)}


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Convert a non-negative integer to big-endian bytes.

    If *length* is omitted the minimal number of bytes is used (at least
    one, so ``int_to_bytes(0) == b"\\x00"``).
    """
    if value < 0:
        raise ValueError("cannot convert negative integer to bytes")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Convert big-endian bytes to a non-negative integer."""
    return int.from_bytes(data, "big")


def constant_time_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without leaking where they differ."""
    return _hmac.compare_digest(a, b)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal-length inputs")
    return bytes(x ^ y for x, y in zip(a, b))


def sfs_base32_encode(data: bytes) -> str:
    """Encode bytes with the SFS base-32 alphabet.

    A 20-byte HostID (160 bits) encodes to exactly 32 characters.  The
    encoding is a straight big-endian base conversion with the bit count
    preserved by left-padding, so it round-trips for any input length.
    """
    if not data:
        return ""
    bits = len(data) * 8
    ndigits = (bits + 4) // 5
    value = bytes_to_int(data)
    chars = []
    for shift in range(ndigits - 1, -1, -1):
        chars.append(SFS_BASE32_ALPHABET[(value >> (shift * 5)) & 0x1F])
    return "".join(chars)


def sfs_base32_decode(text: str, length: int | None = None) -> bytes:
    """Decode an SFS base-32 string back to bytes.

    *length* gives the expected byte count; if omitted it is inferred as
    ``floor(5 * ndigits / 8)`` which matches the inverse of
    :func:`sfs_base32_encode` for all byte lengths.
    """
    value = 0
    for char in text:
        try:
            value = (value << 5) | _B32_VALUE[char]
        except KeyError:
            raise ValueError(f"invalid SFS base-32 character {char!r}") from None
    if length is None:
        length = (len(text) * 5) // 8
    if value >> (length * 8):
        raise ValueError("SFS base-32 value overflows the expected length")
    return int_to_bytes(value, length) if length else b""
