"""SHA-1-based message authentication, including SFS's re-keyed MAC.

Two constructions live here:

* :func:`hmac_sha1` — standard HMAC over our from-scratch SHA-1, used
  where a conventional keyed MAC is wanted (tested against RFC 2202
  vectors).
* :class:`SessionMAC` — the paper's construction (section 3.1.3): the MAC
  is re-keyed *for each message* with 32 bytes pulled from a dedicated
  ARC4 keystream (bytes that are never used for encryption), and is
  computed over the length and plaintext contents of each RPC message.
"""

from __future__ import annotations

from .arc4 import ARC4
from .sha1 import sha1
from .util import constant_time_eq

MAC_LEN = 20
_REKEY_BYTES = 32
_BLOCK = 64


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """RFC 2104 HMAC with SHA-1.

    Uses the accelerated backend when enabled (identical output; see
    :mod:`repro.crypto.backend`), else the from-scratch construction.
    """
    from . import backend

    if backend.use_fast_sha1:
        return backend.fast_hmac_sha1(key, message)
    if not isinstance(message, bytes):
        message = bytes(message)  # from-scratch sha1 wants real bytes
    if len(key) > _BLOCK:
        key = sha1(key)
    key = key.ljust(_BLOCK, b"\x00")
    inner = sha1(bytes(b ^ 0x36 for b in key) + message)
    return sha1(bytes(b ^ 0x5C for b in key) + inner)


class SessionMAC:
    """Per-message re-keyed MAC fed from an ARC4 stream.

    Both channel endpoints construct a SessionMAC from the same session
    key; every :meth:`compute`, :meth:`verify` (successful *or not*), and
    :meth:`skip` consumes exactly 32 keystream bytes, so the two sides
    stay in lock-step exactly as the long-running ARC4 stream does in
    SFS.  Consuming on failed verification is deliberate: the record
    occupied a message slot on the wire whether or not its tag checked
    out, and rewinding the keystream for bad records would let an
    attacker probe tags against a stationary key.
    """

    def __init__(self, key: bytes) -> None:
        # A separate ARC4 instance from the encryption stream: the paper
        # pulls MAC keys from the same stream, "not used for the purposes
        # of encryption"; a dedicated keystream keyed by a derived key is
        # the cleanest equivalent that keeps MAC and cipher independent.
        self._stream = ARC4(sha1(b"SFS-MAC-stream" + key))
        #: Message slots consumed so far (compute + verify + skip).
        self.slots_consumed = 0

    def compute(self, message: bytes) -> bytes:
        """MAC over the length and plaintext of *message*.

        The fast backend streams length and message into the HMAC
        separately, so sealing a record never copies the payload just to
        prepend four bytes; output is identical either way.
        """
        from . import backend

        per_message_key = self._stream.keystream(_REKEY_BYTES)
        self.slots_consumed += 1
        length = len(message).to_bytes(4, "big")
        if backend.use_fast_sha1:
            return backend.fast_hmac_sha1_parts(per_message_key, length,
                                                message)
        return hmac_sha1(per_message_key, length + bytes(message))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Verify *tag*; consumes the message slot whether or not it
        matches (see the class docstring for why)."""
        expected = self.compute(message)
        return constant_time_eq(tag, expected)

    def skip(self) -> None:
        """Burn one message slot without computing a MAC.

        The channel calls this for records it rejects *before* MAC
        verification (short body, bad length field) so the MAC keystream
        advances in lock-step with the cipher keystream, which already
        consumed the record's bytes during decryption.
        """
        self._stream.keystream(_REKEY_BYTES)
        self.slots_consumed += 1
