"""Block keystream kernels behind :class:`repro.crypto.arc4.ARC4`.

The per-byte PRGA loop in :mod:`repro.crypto.arc4` is the *reference*
implementation; it stays the testable ground truth.  This module holds
the two interchangeable fast kernels the wire path uses instead, both of
which advance the identical (state, i, j) machine and therefore produce
bit-identical keystream:

* :data:`LIBCRYPTO` — OpenSSL's C implementation, driven through ctypes.
  ARC4's state machine is fully described by the 256-byte permutation
  plus the two indices, and OpenSSL's ``RC4_KEY`` struct is exactly that
  (``{RC4_INT x, y; RC4_INT data[256]}``), so we can run *our* key
  schedule — including SFS's one-spin-per-128-key-bits rule, which no
  library KSA implements — in Python, inject the resulting state, and
  let C crank the stream.  The struct layout is probed **empirically**
  at load time: we call ``RC4_set_key`` with a known key and check the
  buffer against our own single-spin schedule, then run a PRGA vector
  through ``RC4`` and compare it with the reference loop.  If either
  check fails (different RC4_INT width, RC4 compiled out, no libcrypto),
  the kernel reports unavailable and the pure-Python block kernel is
  used instead.  This is the same soundness argument as
  :mod:`repro.crypto.backend`'s hashlib delegation: equivalence is
  verified, not assumed.

* :data:`PYBLOCK` — a locals-bound, partially unrolled pure-Python loop.
  Same machine, fewer interpreter touches per byte than the reference
  loop (single-assignment swap instead of tuple packing, one state
  lookup per index).  It is the fallback wherever libcrypto is missing.

Both kernels share the module-level :class:`KernelStats`, which the
bench layer surfaces (keystream bytes per kernel) so Fig. 5's
attribution can say *which* crank generated the bytes.
"""

from __future__ import annotations

import ctypes
import struct

_STATE_WORDS = struct.Struct("<258I")  # x, y, data[256] as 32-bit ints


class KernelStats:
    """Process-wide keystream production counters (all ARC4 streams)."""

    __slots__ = ("libcrypto_bytes", "pyblock_bytes", "reference_bytes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.libcrypto_bytes = 0
        self.pyblock_bytes = 0
        self.reference_bytes = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "libcrypto_bytes": self.libcrypto_bytes,
            "pyblock_bytes": self.pyblock_bytes,
            "reference_bytes": self.reference_bytes,
        }


STATS = KernelStats()


def reference_crank(state: list[int], i: int, j: int,
                    n: int) -> tuple[bytes, int, int]:
    """The ground-truth per-byte PRGA loop (also the probe oracle)."""
    out = bytearray(n)
    for k in range(n):
        i = (i + 1) & 0xFF
        j = (j + state[i]) & 0xFF
        state[i], state[j] = state[j], state[i]
        out[k] = state[(state[i] + state[j]) & 0xFF]
    return bytes(out), i, j


def key_schedule(key: bytes, spins: int) -> list[int]:
    """The KSA, including SFS's multi-spin variant (arc4.py's rules)."""
    state = list(range(256))
    j = 0
    for _ in range(spins):
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
    return state


# ---------------------------------------------------------------------------
# Pure-Python block kernel
# ---------------------------------------------------------------------------

def _pyblock_crank(state: list[int], i: int, j: int,
                   n: int) -> tuple[bytes, int, int]:
    """Locals-bound, reduced-op PRGA: one lookup per index, plain-store
    swap, list-append output.  Bit-identical to :func:`reference_crank`
    (the swap leaves ``state[i] == sj`` and ``state[j] == si``, so the
    output index ``(si + sj) & 255`` reads the same cell)."""
    s = state
    out: list[int] = []
    append = out.append
    for _ in range(n):
        i = (i + 1) & 255
        si = s[i]
        j = (j + si) & 255
        sj = s[j]
        s[i] = sj
        s[j] = si
        append(s[(si + sj) & 255])
    return bytes(out), i, j


def pyblock_crank(state: list[int], i: int, j: int,
                  n: int) -> tuple[bytes, int, int]:
    STATS.pyblock_bytes += n
    return _pyblock_crank(state, i, j, n)


# ---------------------------------------------------------------------------
# libcrypto kernel
# ---------------------------------------------------------------------------

class _LibcryptoKernel:
    """ctypes binding to OpenSSL's RC4, state round-tripped per crank."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._rc4 = lib.RC4
        self._rc4.argtypes = [ctypes.c_char_p, ctypes.c_size_t,
                              ctypes.c_char_p, ctypes.c_char_p]
        self._rc4.restype = None
        self._set_key = lib.RC4_set_key
        self._set_key.argtypes = [ctypes.c_char_p, ctypes.c_int,
                                  ctypes.c_char_p]
        self._set_key.restype = None
        # One reusable RC4_KEY-sized scratch buffer; oversized so that a
        # wider-than-expected RC4_INT cannot make RC4_set_key scribble
        # past the end during the probe.
        self._key_buf = ctypes.create_string_buffer(4096)
        self._zeros = bytes(65536)

    def self_check(self) -> bool:
        """Prove the struct layout and the PRGA match the reference.

        Layout: RC4_set_key with a known single-spin key must leave
        ``x = y = 0`` and ``data[]`` equal to our own KSA when read as
        little-endian 32-bit words.  PRGA: an injected two-spin SFS
        state must produce the reference keystream and leave the same
        (i, j).  Any mismatch disables the kernel.
        """
        try:
            probe_key = bytes(range(1, 17))
            self._set_key(self._key_buf, len(probe_key), probe_key)
            words = _STATE_WORDS.unpack_from(self._key_buf.raw, 0)
            if words[0] != 0 or words[1] != 0:
                return False
            if list(words[2:]) != key_schedule(probe_key, 1):
                return False
            state = key_schedule(b"arc4-kernel-probe-20", 2)
            expected, exp_i, exp_j = reference_crank(list(state), 0, 0, 512)
            got, got_i, got_j = self._crank(state, 0, 0, 512)
            return got == expected and (got_i, got_j) == (exp_i, exp_j)
        except Exception:  # noqa: BLE001 - any ctypes surprise: fall back
            return False

    def _crank(self, state: list[int], i: int, j: int,
               n: int) -> tuple[bytes, int, int]:
        buf = self._key_buf
        _STATE_WORDS.pack_into(buf, 0, i, j, *state)
        zeros = self._zeros if n <= len(self._zeros) else bytes(n)
        out = ctypes.create_string_buffer(n)
        self._rc4(buf, n, zeros, out)
        words = _STATE_WORDS.unpack_from(buf.raw, 0)
        state[:] = words[2:]
        return out.raw, words[0], words[1]

    def crank(self, state: list[int], i: int, j: int,
              n: int) -> tuple[bytes, int, int]:
        STATS.libcrypto_bytes += n
        return self._crank(state, i, j, n)


def _load_libcrypto() -> _LibcryptoKernel | None:
    for name in ("libcrypto.so.3", "libcrypto.so.1.1", "libcrypto.so",
                 "libcrypto.dylib"):
        try:
            lib = ctypes.CDLL(name)
        except OSError:
            continue
        if not (hasattr(lib, "RC4") and hasattr(lib, "RC4_set_key")):
            continue
        kernel = _LibcryptoKernel(lib)
        if kernel.self_check():
            return kernel
    return None


_LIBCRYPTO = _load_libcrypto()

#: Name of the kernel block generation goes through when the fast path
#: is enabled ("libcrypto" or "pyblock") — surfaced in bench output.
FAST_KERNEL = "libcrypto" if _LIBCRYPTO is not None else "pyblock"


def fast_crank(state: list[int], i: int, j: int,
               n: int) -> tuple[bytes, int, int]:
    """Generate *n* keystream bytes with the best available kernel."""
    if _LIBCRYPTO is not None:
        return _LIBCRYPTO.crank(state, i, j, n)
    return pyblock_crank(state, i, j, n)
