"""From-scratch cryptographic primitives used by SFS.

Every primitive the paper names is implemented here in pure Python:
SHA-1, ARC4 (with SFS's key-schedule spinning), Blowfish and eksblowfish,
the Rabin-Williams public-key system, SRP, the DSS pseudo-random
generator, and the re-keyed SHA-1 session MAC.
"""

from .arc4 import ARC4
from .blowfish import Blowfish
from .eksblowfish import bcrypt_hash, eksblowfish_setup, harden_password
from .mac import MAC_LEN, SessionMAC, hmac_sha1
from .prg import DSSRandom, EntropyPool, system_random
from .rabin import (
    DEFAULT_KEY_BITS,
    PrivateKey,
    PublicKey,
    RabinError,
    generate_key,
)
from .sha1 import SHA1, sha1, sha1_concat
from .srp import SRPClient, SRPError, SRPServer, Verifier
from .util import (
    SFS_BASE32_ALPHABET,
    constant_time_eq,
    sfs_base32_decode,
    sfs_base32_encode,
)

__all__ = [
    "ARC4",
    "Blowfish",
    "DEFAULT_KEY_BITS",
    "DSSRandom",
    "EntropyPool",
    "MAC_LEN",
    "PrivateKey",
    "PublicKey",
    "RabinError",
    "SFS_BASE32_ALPHABET",
    "SHA1",
    "SRPClient",
    "SRPError",
    "SRPServer",
    "SessionMAC",
    "Verifier",
    "bcrypt_hash",
    "constant_time_eq",
    "eksblowfish_setup",
    "generate_key",
    "harden_password",
    "hmac_sha1",
    "sfs_base32_decode",
    "sfs_base32_encode",
    "sha1",
    "sha1_concat",
    "system_random",
]
