"""Number-theoretic primitives for the Rabin-Williams cryptosystem.

Everything here is implemented from scratch on Python integers: modular
exponentiation helpers, the extended Euclidean algorithm, Miller-Rabin
primality testing, prime generation with congruence constraints (Rabin
-Williams needs ``p = 3 mod 8`` and ``q = 7 mod 8``), Jacobi symbols, and
square roots modulo Blum-type primes combined with the CRT.
"""

from __future__ import annotations

import random
from typing import Callable

# Witnesses proving primality deterministically for all n < 3.3 * 10**24.
_SMALL_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES: list[int] = []


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = b"\x00" * len(flags[i * i :: i])
    return [i for i, keep in enumerate(flags) if keep]


def small_primes() -> list[int]:
    """Primes below 2000, used for cheap trial division."""
    global _SMALL_PRIMES
    if not _SMALL_PRIMES:
        _SMALL_PRIMES = _sieve(2000)
    return _SMALL_PRIMES


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of *a* modulo *m* (raises if not coprime)."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic for n < 3.3e24 via fixed witnesses; probabilistic with
    *rounds* random witnesses beyond that.
    """
    if n < 2:
        return False
    for p in small_primes():
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_composite(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                return False
        return True

    if n < 3_317_044_064_679_887_385_961_981:
        return not any(witness_composite(a) for a in _SMALL_WITNESSES if a < n - 1)
    rng = rng or random
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        if witness_composite(a):
            return False
    return True


def gen_prime(
    bits: int,
    rng: random.Random,
    condition: Callable[[int], bool] | None = None,
) -> int:
    """Generate a *bits*-bit prime, optionally satisfying *condition*.

    The top two bits are forced to 1 so that the product of two such
    primes always has exactly ``2 * bits`` bits, as public-key code
    expects.
    """
    if bits < 8:
        raise ValueError("refusing to generate primes below 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if condition is not None and not condition(candidate):
            continue
        if is_probable_prime(candidate):
            return candidate


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a / n) for odd positive n."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def sqrt_mod_blum_prime(a: int, p: int) -> int:
    """Square root of *a* modulo a prime ``p = 3 (mod 4)``.

    Returns a root ``r`` with ``r*r = a (mod p)``; the caller is
    responsible for *a* actually being a quadratic residue.
    """
    if p % 4 != 3:
        raise ValueError("prime must be 3 mod 4")
    return pow(a, (p + 1) // 4, p)


def crt_pair(rp: int, p: int, rq: int, q: int) -> int:
    """Combine residues mod *p* and *q* into a residue mod ``p*q``."""
    q_inv = modinv(q, p)
    diff = (rp - rq) * q_inv % p
    return (rq + q * diff) % (p * q)
