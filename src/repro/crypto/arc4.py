"""The ARC4 stream cipher, including SFS's key-schedule variant.

The paper assumes ARC4 (alleged RC4) is a pseudo-random generator and uses
it to encrypt all read-write file system traffic.  Section 3.1.3 notes two
implementation particulars which we reproduce:

* SFS uses 20-byte keys "by spinning the ARC4 key schedule once for each
  128 bits of key data" — i.e. a 160-bit key runs the key-setup loop twice.
* SFS keeps one ARC4 stream running for the whole session, pulling 32 bytes
  of MAC key per message from the same stream (see :mod:`repro.crypto.mac`).
"""

from __future__ import annotations


class ARC4:
    """ARC4 keystream generator / stream cipher.

    *spins* controls how many times the key-schedule loop runs; ``None``
    selects the SFS rule of one spin per 128 bits of key material (so a
    standard 16-byte key gets the classic single spin and the 20-byte SFS
    session keys get two).
    """

    def __init__(self, key: bytes, spins: int | None = None) -> None:
        if not key:
            raise ValueError("ARC4 key must be non-empty")
        if len(key) > 256:
            raise ValueError("ARC4 key must be at most 256 bytes")
        if spins is None:
            spins = max(1, (len(key) * 8 + 127) // 128)
        state = list(range(256))
        j = 0
        for _ in range(spins):
            for i in range(256):
                j = (j + state[i] + key[i % len(key)]) & 0xFF
                state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, length: int) -> bytes:
        """Produce *length* keystream bytes, advancing the cipher state."""
        state = self._state
        i, j = self._i, self._j
        out = bytearray(length)
        for n in range(length):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out[n] = state[(state[i] + state[j]) & 0xFF]
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt *data* (XOR with the keystream).

        The XOR runs on big integers, which is dramatically faster in
        CPython than a per-byte loop and bit-identical.
        """
        if not data:
            return b""
        stream = self.keystream(len(data))
        value = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        return value.to_bytes(len(data), "big")

    # Encryption and decryption are the same operation for a stream cipher,
    # but both names read better at call sites.
    encrypt = process
    decrypt = process
