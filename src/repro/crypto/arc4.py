"""The ARC4 stream cipher, including SFS's key-schedule variant.

The paper assumes ARC4 (alleged RC4) is a pseudo-random generator and uses
it to encrypt all read-write file system traffic.  Section 3.1.3 notes two
implementation particulars which we reproduce:

* SFS uses 20-byte keys "by spinning the ARC4 key schedule once for each
  128 bits of key data" — i.e. a 160-bit key runs the key-setup loop twice.
* SFS keeps one ARC4 stream running for the whole session, pulling 32 bytes
  of MAC key per message from the same stream (see :mod:`repro.crypto.mac`).

Keystream generation is a block operation: draws are served from a
lazily-refilled lookahead buffer so the per-message 32-byte MAC rekey
draws and the bulk `process` calls share amortized block generation.
Blocks come from the best kernel in :mod:`repro.crypto.arc4kernel`
(OpenSSL's C PRGA when its layout self-check passes, else a locals-bound
pure-Python block loop); with :func:`repro.crypto.backend.set_fast`
switched off, every byte instead comes from the reference per-byte loop
below, which remains the ground truth the kernels are tested against.
All three advance the identical (state, i, j) machine, so the choice can
never change a wire byte — only speed.
"""

from __future__ import annotations

from . import arc4kernel, backend

#: Lookahead block size for small draws.  One refill covers 32 MAC rekey
#: draws, so a session's MAC stream touches the kernel once per 32
#: records instead of once per record.
_REFILL = 1024


class ARC4:
    """ARC4 keystream generator / stream cipher.

    *spins* controls how many times the key-schedule loop runs; ``None``
    selects the SFS rule of one spin per 128 bits of key material (so a
    standard 16-byte key gets the classic single spin and the 20-byte SFS
    session keys get two).
    """

    def __init__(self, key: bytes, spins: int | None = None) -> None:
        if not key:
            raise ValueError("ARC4 key must be non-empty")
        if len(key) > 256:
            raise ValueError("ARC4 key must be at most 256 bytes")
        if spins is None:
            spins = max(1, (len(key) * 8 + 127) // 128)
        self._state = arc4kernel.key_schedule(key, spins)
        self._i = 0
        self._j = 0
        #: Keystream generated ahead of consumption.  ``_state``/``_i``/
        #: ``_j`` always describe the *generated* frontier; the logical
        #: stream position trails it by ``len(_pending) - _pending_pos``
        #: bytes.  Draining the buffer before generating keeps the
        #: stream continuous even if the backend flag flips mid-session.
        self._pending = b""
        self._pending_pos = 0

    def _generate(self, length: int) -> bytes:
        """Advance the machine by *length* bytes with the active kernel."""
        if backend.use_fast_arc4:
            out, self._i, self._j = arc4kernel.fast_crank(
                self._state, self._i, self._j, length
            )
            return out
        arc4kernel.STATS.reference_bytes += length
        out, self._i, self._j = arc4kernel.reference_crank(
            self._state, self._i, self._j, length
        )
        return out

    def keystream(self, length: int) -> bytes:
        """Produce *length* keystream bytes, advancing the cipher state."""
        pending = self._pending
        pos = self._pending_pos
        buffered = len(pending) - pos
        if buffered >= length:
            # Entirely from the lookahead buffer.
            self._pending_pos = pos + length
            if self._pending_pos == len(pending):
                self._pending = b""
                self._pending_pos = 0
            return pending[pos : pos + length]
        need = length - buffered
        head = pending[pos:] if buffered else b""
        self._pending = b""
        self._pending_pos = 0
        if backend.use_fast_arc4 and need < _REFILL:
            block = self._generate(_REFILL)
            self._pending = block
            self._pending_pos = need
            return head + block[:need] if head else block[:need]
        return head + self._generate(need) if head else self._generate(need)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt *data* (XOR with the keystream).

        The XOR runs on big integers, which is dramatically faster in
        CPython than a per-byte loop and bit-identical.
        """
        if not data:
            return b""
        stream = self.keystream(len(data))
        value = int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
        return value.to_bytes(len(data), "big")

    # Encryption and decryption are the same operation for a stream cipher,
    # but both names read better at call sites.
    encrypt = process
    decrypt = process
