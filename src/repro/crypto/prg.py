"""DSS-style SHA-1 pseudo-random generator and entropy pool.

The paper (section 3.1.3) chooses the FIPS 186 pseudo-random generator
"both because it is based on SHA-1 and because it cannot be run backwards
in the event that its state gets compromised", seeded from multiple
asynchronous sources hashed down to 512 bits.

The generator keeps a *b*-bit state ``XKEY`` and produces 20-byte blocks:

    x     = G(XKEY mod 2^b)
    XKEY  = (1 + XKEY + x) mod 2^b

where G is the SHA-1 compression-style function (we use SHA-1 itself with
a domain-separation tag, which preserves the one-wayness argument).
"""

from __future__ import annotations

import os
import time

from .sha1 import SHA1, sha1
from .util import bytes_to_int, int_to_bytes

_STATE_BITS = 512
_STATE_BYTES = _STATE_BITS // 8
_MOD = 1 << _STATE_BITS


class EntropyPool:
    """Accumulates entropy from several sources into a 512-bit seed.

    Mirrors the paper's sources: external program output, the OS random
    device, a seed file from the previous execution, nanosecond timers,
    and (for interactive programs) keystrokes with inter-keystroke timings.
    All sources are run through a SHA-1-based hash to produce the seed.
    """

    def __init__(self) -> None:
        self._hash = SHA1(b"SFS-entropy-pool")
        self._count = 0

    def add(self, label: str, data: bytes) -> None:
        """Mix in one source, tagged by *label* to keep sources distinct."""
        self._hash.update(len(label).to_bytes(4, "big"))
        self._hash.update(label.encode())
        self._hash.update(len(data).to_bytes(4, "big"))
        self._hash.update(data)
        self._count += 1

    def add_timer(self) -> None:
        """Mix in a nanosecond timestamp (process-scheduling entropy)."""
        self.add("timer", time.monotonic_ns().to_bytes(8, "big"))

    def add_system_sources(self) -> None:
        """Mix in the OS random device and clock, like SFS's startup."""
        self.add("os-random", os.urandom(64))
        self.add("pid", os.getpid().to_bytes(4, "big"))
        self.add_timer()

    def seed(self) -> bytes:
        """Produce the 64-byte (512-bit) seed from everything mixed in."""
        state = self._hash.copy()
        blocks = []
        for counter in range(_STATE_BYTES // 20 + 1):
            h = state.copy()
            h.update(counter.to_bytes(4, "big"))
            blocks.append(h.digest())
        return b"".join(blocks)[:_STATE_BYTES]


class DSSRandom:
    """FIPS 186-style PRG with a 512-bit key state.

    Offers the small slice of the :mod:`random` API the rest of the code
    base uses (``getrandbits`` / ``randrange`` / ``bytes``), so it can be
    passed anywhere a ``random.Random`` is expected.
    """

    def __init__(self, seed: bytes) -> None:
        if not seed:
            raise ValueError("seed must be non-empty")
        self._xkey = bytes_to_int(sha1(b"DSS-seed-0" + seed) + sha1(b"DSS-seed-1" + seed) + sha1(b"DSS-seed-2" + seed) + sha1(b"DSS-seed-3" + seed)[:4]) % _MOD
        self._buffer = b""

    @classmethod
    def from_pool(cls, pool: EntropyPool) -> "DSSRandom":
        return cls(pool.seed())

    def _step(self) -> bytes:
        x = sha1(b"DSS-G" + int_to_bytes(self._xkey, _STATE_BYTES))
        self._xkey = (1 + self._xkey + bytes_to_int(x)) % _MOD
        return x

    def bytes(self, length: int) -> bytes:
        """Return *length* pseudo-random bytes."""
        while len(self._buffer) < length:
            self._buffer += self._step()
        out, self._buffer = self._buffer[:length], self._buffer[length:]
        return out

    def getrandbits(self, bits: int) -> int:
        """Return a uniform integer in [0, 2**bits)."""
        if bits <= 0:
            return 0
        nbytes = (bits + 7) // 8
        value = bytes_to_int(self.bytes(nbytes))
        return value >> (nbytes * 8 - bits)

    def randrange(self, start: int, stop: int | None = None) -> int:
        """Return a uniform integer in [start, stop) (rejection sampled)."""
        if stop is None:
            start, stop = 0, start
        span = stop - start
        if span <= 0:
            raise ValueError("empty range for randrange")
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return start + candidate

    def random(self) -> float:
        """Return a float in [0.0, 1.0) (53 bits of precision)."""
        return self.getrandbits(53) / (1 << 53)


def system_random() -> DSSRandom:
    """A DSSRandom seeded from system entropy sources."""
    pool = EntropyPool()
    pool.add_system_sources()
    return DSSRandom.from_pool(pool)
