"""The Rabin-Williams public-key cryptosystem, from scratch.

The paper (section 3.1.3) uses Rabin for both encryption and signing:
"Like low-exponent RSA, encryption and signature verification are
particularly fast in Rabin because they do not require modular
exponentiation" — both are a single modular squaring.  Security rests only
on the hardness of factoring.

Key structure (Williams' variant): ``n = p*q`` with ``p = 3 (mod 8)`` and
``q = 7 (mod 8)``.  For such *n*, ``jacobi(-1, n) = 1`` with -1 a
non-residue mod both primes, and ``jacobi(2, n) = -1``; consequently for
any *m* coprime to *n* exactly one of ``m, -m, 2m, -2m`` is a quadratic
residue, which gives every (padded) message a square root after a cheap
"tweak".

* Encryption is OAEP-style (SHA-1 based, as in the plaintext-aware scheme
  the paper cites): pad, square mod n; decryption takes the four square
  roots via CRT and the padding check picks the right one.
* Signatures pad the message hash deterministically to the full modulus
  width (full-domain hash via MGF1/SHA-1), tweak it to a residue, and
  publish the root together with the two tweak bits.  Verification is one
  squaring plus a padding re-computation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numtheory import (
    crt_pair,
    gen_prime,
    jacobi,
    sqrt_mod_blum_prime,
)
from .sha1 import sha1
from .util import bytes_to_int, constant_time_eq, int_to_bytes

DEFAULT_KEY_BITS = 768


class RabinError(Exception):
    """Raised on malformed ciphertexts, signatures, or keys."""


def mgf1(seed: bytes, length: int) -> bytes:
    """MGF1 mask generation function built on SHA-1 (PKCS#1-style)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += sha1(seed + counter.to_bytes(4, "big"))
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class PublicKey:
    """A Rabin-Williams public key: just the modulus."""

    n: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        """Serialize as length-prefixed big-endian modulus."""
        raw = int_to_bytes(self.n)
        return len(raw).to_bytes(4, "big") + raw

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        if len(data) < 4:
            raise RabinError("truncated public key")
        length = int.from_bytes(data[:4], "big")
        if len(data) != 4 + length:
            raise RabinError("public key length mismatch")
        n = bytes_to_int(data[4:])
        if n < 3 or n % 2 == 0:
            raise RabinError("implausible public key modulus")
        return cls(n)

    # --- encryption -----------------------------------------------------

    def encrypt(self, message: bytes, rng: random.Random) -> bytes:
        """OAEP-pad *message* and square it modulo n."""
        padded = _oaep_encode(message, self.size, rng)
        m = bytes_to_int(padded)
        c = m * m % self.n
        return int_to_bytes(c, self.size)

    # --- signature verification ----------------------------------------

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a Rabin-Williams signature (squaring, no exponentiation)."""
        try:
            e, f, s = _split_signature(signature, self.size)
        except RabinError:
            return False
        if s >= self.n:
            return False
        target = _fdh_encode(message, self.n)
        # s*s = e * f * m (mod n), so recover m = e * f^-1 * s^2.  With
        # e in {1, -1} its own inverse and f in {1, 2}, f^-1 for f == 2 is
        # (n + 1) / 2 — still no modular exponentiation.
        f_inv = 1 if f == 1 else (self.n + 1) // 2
        candidate = s * s % self.n * e * f_inv % self.n
        return candidate == target


@dataclass(frozen=True)
class PrivateKey:
    """A Rabin-Williams private key: the factorization of n."""

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p % 8 != 3 or self.q % 8 != 7:
            raise RabinError("Rabin-Williams requires p=3 (mod 8), q=7 (mod 8)")

    @property
    def n(self) -> int:
        return self.p * self.q

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(self.p * self.q)

    def to_bytes(self) -> bytes:
        """Serialize both primes, length-prefixed."""
        rp = int_to_bytes(self.p)
        rq = int_to_bytes(self.q)
        return (
            len(rp).to_bytes(4, "big") + rp + len(rq).to_bytes(4, "big") + rq
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) < 8:
            raise RabinError("truncated private key")
        lp = int.from_bytes(data[:4], "big")
        p = bytes_to_int(data[4 : 4 + lp])
        rest = data[4 + lp :]
        lq = int.from_bytes(rest[:4], "big")
        q = bytes_to_int(rest[4 : 4 + lq])
        if rest[4 + lq :]:
            raise RabinError("trailing bytes in private key")
        return cls(p, q)

    # --- decryption -----------------------------------------------------

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Take the four square roots and return the one that OAEP-decodes."""
        n = self.n
        size = self.public_key.size
        if len(ciphertext) != size:
            raise RabinError("ciphertext has wrong length")
        c = bytes_to_int(ciphertext)
        if c >= n:
            raise RabinError("ciphertext out of range")
        for root in self._square_roots(c):
            try:
                return _oaep_decode(int_to_bytes(root, size), size)
            except RabinError:
                continue
        raise RabinError("no square root yields valid OAEP padding")

    def _square_roots(self, c: int) -> list[int]:
        rp = sqrt_mod_blum_prime(c % self.p, self.p)
        rq = sqrt_mod_blum_prime(c % self.q, self.q)
        if rp * rp % self.p != c % self.p or rq * rq % self.q != c % self.q:
            return []
        n = self.n
        roots = set()
        for sp in (rp, self.p - rp):
            for sq in (rq, self.q - rq):
                roots.add(crt_pair(sp, self.p, sq, self.q))
        return sorted(roots)

    # --- signing ---------------------------------------------------------

    def sign(self, message: bytes) -> bytes:
        """Sign: tweak the padded hash to a residue, take a square root.

        The signature is ``tweak_byte || root`` where the tweak byte
        encodes (e, f) with e in {1, -1} and f in {1, 2} such that
        ``e * f * m`` is a quadratic residue mod n.
        """
        n = self.n
        m = _fdh_encode(message, n)
        e, f = self._tweak(m)
        target = e * f % n * m % n
        rp = sqrt_mod_blum_prime(target % self.p, self.p)
        rq = sqrt_mod_blum_prime(target % self.q, self.q)
        s = crt_pair(rp, self.p, rq, self.q)
        if s * s % n != target:
            raise RabinError("internal error: padded hash not a residue")
        tweak = (0 if e == 1 else 2) | (0 if f == 1 else 1)
        return bytes([tweak]) + int_to_bytes(s, self.public_key.size)

    def _tweak(self, m: int) -> tuple[int, int]:
        """Choose (e, f) making ``e*f*m`` a residue mod both primes."""
        jp = jacobi(m % self.p, self.p)
        jq = jacobi(m % self.q, self.q)
        if jp == 0 or jq == 0:
            # Vanishingly unlikely: the hash shares a factor with n.
            raise RabinError("message hash not coprime to modulus")
        # Both primes are 3 (mod 4), so multiplying by -1 flips the symbol
        # modulo both.  2 is a non-residue mod p (p = 3 mod 8) but a residue
        # mod q (q = 7 mod 8), so multiplying by 2 flips only the p symbol,
        # and by -2 only the q symbol.
        if jp == 1 and jq == 1:
            return 1, 1
        if jp == -1 and jq == -1:
            return -1, 1
        if jp == -1 and jq == 1:
            return 1, 2
        return -1, 2


def _split_signature(signature: bytes, size: int) -> tuple[int, int, int]:
    if len(signature) != 1 + size:
        raise RabinError("signature has wrong length")
    tweak = signature[0]
    if tweak > 3:
        raise RabinError("invalid tweak byte")
    e = -1 if tweak & 2 else 1
    f = 2 if tweak & 1 else 1
    return e, f, bytes_to_int(signature[1:])


def generate_key(bits: int = DEFAULT_KEY_BITS, rng: random.Random | None = None) -> PrivateKey:
    """Generate a Rabin-Williams key pair with an n of roughly *bits* bits."""
    rng = rng or random.Random()
    half = bits // 2
    p = gen_prime(half, rng, condition=lambda c: c % 8 == 3)
    q = gen_prime(bits - half, rng, condition=lambda c: c % 8 == 7)
    while q == p:
        q = gen_prime(bits - half, rng, condition=lambda c: c % 8 == 7)
    return PrivateKey(p, q)


# --- padding -------------------------------------------------------------

_OAEP_SEED_LEN = 20
_OAEP_HASH_LEN = 20


def _oaep_encode(message: bytes, size: int, rng: random.Random) -> bytes:
    """EME-OAEP (SHA-1) producing ``size - 1`` bytes so the value < n.

    Layout: ``00 || masked_seed(20) || masked_db`` where
    ``db = lhash(20) || 00.. || 01 || message``.  The leading zero byte
    keeps the padded integer below the modulus.
    """
    db_len = size - 1 - _OAEP_SEED_LEN
    max_message = db_len - _OAEP_HASH_LEN - 1
    if max_message < 1:
        raise RabinError("modulus too small for OAEP")
    if len(message) > max_message:
        raise RabinError(
            f"message too long for OAEP ({len(message)} > {max_message})"
        )
    lhash = sha1(b"RabinOAEP")
    padding = b"\x00" * (max_message - len(message))
    db = lhash + padding + b"\x01" + message
    seed = bytes(rng.getrandbits(8) for _ in range(_OAEP_SEED_LEN))
    masked_db = bytes(a ^ b for a, b in zip(db, mgf1(seed, db_len)))
    masked_seed = bytes(
        a ^ b for a, b in zip(seed, mgf1(masked_db, _OAEP_SEED_LEN))
    )
    return b"\x00" + masked_seed + masked_db


def _oaep_decode(padded: bytes, size: int) -> bytes:
    if len(padded) != size:
        raise RabinError("padded block has wrong length")
    if padded[0] != 0:
        raise RabinError("bad OAEP leading byte")
    masked_seed = padded[1 : 1 + _OAEP_SEED_LEN]
    masked_db = padded[1 + _OAEP_SEED_LEN :]
    seed = bytes(
        a ^ b for a, b in zip(masked_seed, mgf1(masked_db, _OAEP_SEED_LEN))
    )
    db = bytes(a ^ b for a, b in zip(masked_db, mgf1(seed, len(masked_db))))
    lhash = sha1(b"RabinOAEP")
    if not constant_time_eq(db[:_OAEP_HASH_LEN], lhash):
        raise RabinError("bad OAEP label hash")
    rest = db[_OAEP_HASH_LEN:]
    index = rest.find(b"\x01")
    if index < 0 or any(rest[:index]):
        raise RabinError("bad OAEP padding separator")
    return rest[index + 1 :]


def _fdh_encode(message: bytes, n: int) -> int:
    """Deterministic full-domain hash of *message* into Z_n.

    Expands SHA-1(message) with MGF1 to one byte less than the modulus and
    clears the top bit, guaranteeing the value is below n.
    """
    size = (n.bit_length() + 7) // 8
    digest = sha1(b"RabinFDH" + message)
    expanded = bytearray(mgf1(digest, size - 1))
    expanded[0] &= 0x7F
    value = bytes_to_int(bytes(expanded))
    # Force odd so the value is coprime to n with overwhelming probability
    # (n is a product of two odd primes).
    return value | 1
