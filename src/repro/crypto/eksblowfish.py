"""Eksblowfish — the expensive-key-schedule Blowfish of Provos & Mazieres.

The paper (section 2.5.2) hardens user passwords with eksblowfish so that
off-line guessing attacks "continue to take almost a full second of CPU
time per account and candidate password tried", with a cost parameter that
administrators raise as hardware improves.  The same construction is the
core of OpenBSD's bcrypt password scheme; this module provides both the
raw eksblowfish state setup and a bcrypt-compatible hash (verified against
published bcrypt test vectors) plus the password-hardening helper that
:mod:`repro.core.authserv` and :mod:`repro.crypto.srp` use.
"""

from __future__ import annotations

from .blowfish import Blowfish
from .sha1 import sha1

_BCRYPT_B64 = "./ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
_BCRYPT_B64_VALUE = {char: index for index, char in enumerate(_BCRYPT_B64)}

#: The magic bcrypt plaintext, ECB-encrypted 64 times with the final state.
_MAGIC = b"OrpheanBeholderScryDoubt"


def eksblowfish_setup(cost: int, salt: bytes, key: bytes) -> Blowfish:
    """EksBlowfishSetup: build a Blowfish state at the given *cost*.

    The schedule mixes the salt once, then alternates ``2**cost`` unsalted
    expansions of the key and the salt — the deliberately expensive part.
    """
    if not 0 <= cost <= 31:
        raise ValueError("cost must be in 0..31")
    if len(salt) != 16:
        raise ValueError("salt must be 16 bytes")
    if not 1 <= len(key) <= 72:
        raise ValueError("key must be 1..72 bytes")
    cipher = Blowfish(expand=False)
    cipher.expand_key(key, salt)
    zero_salt = b"\x00" * 16
    for _ in range(1 << cost):
        cipher.expand_key(key, zero_salt)
        cipher.expand_key(salt, zero_salt)
    return cipher


def bcrypt_raw(password: bytes, salt: bytes, cost: int) -> bytes:
    """The 24-byte bcrypt core: eksblowfish setup + 64 magic encryptions.

    *password* should already include any variant-specific termination
    (the ``$2a$`` variant appends a NUL byte; see :func:`bcrypt_hash`).
    """
    cipher = eksblowfish_setup(cost, salt, password)
    data = _MAGIC
    for _ in range(64):
        data = b"".join(
            cipher.encrypt_block(data[i : i + 8]) for i in range(0, 24, 8)
        )
    return data


def bcrypt_b64encode(data: bytes) -> str:
    """bcrypt's nonstandard base-64 (no padding, '.' and '/' lead)."""
    out = []
    i = 0
    while i < len(data):
        c1 = data[i]
        i += 1
        out.append(_BCRYPT_B64[c1 >> 2])
        c1 = (c1 & 0x03) << 4
        if i >= len(data):
            out.append(_BCRYPT_B64[c1])
            break
        c2 = data[i]
        i += 1
        c1 |= c2 >> 4
        out.append(_BCRYPT_B64[c1])
        c1 = (c2 & 0x0F) << 2
        if i >= len(data):
            out.append(_BCRYPT_B64[c1])
            break
        c2 = data[i]
        i += 1
        c1 |= c2 >> 6
        out.append(_BCRYPT_B64[c1])
        out.append(_BCRYPT_B64[c2 & 0x3F])
    return "".join(out)


def bcrypt_b64decode(text: str, length: int) -> bytes:
    """Decode bcrypt base-64 into exactly *length* bytes."""
    bits = 0
    acc = 0
    out = bytearray()
    for char in text:
        try:
            acc = (acc << 6) | _BCRYPT_B64_VALUE[char]
        except KeyError:
            raise ValueError(f"invalid bcrypt base-64 character {char!r}") from None
        bits += 6
        if bits >= 8:
            bits -= 8
            out.append((acc >> bits) & 0xFF)
    return bytes(out[:length])


def bcrypt_hash(password: bytes, salt_string: str) -> str:
    """Compute a ``$2a$``-style bcrypt hash string.

    *salt_string* looks like ``$2a$05$<22 chars of bcrypt base-64>``.  The
    2a variant appends a NUL terminator to the password and truncates the
    result to 72 bytes.
    """
    if not salt_string.startswith("$2a$"):
        raise ValueError("only the $2a$ bcrypt variant is supported")
    cost = int(salt_string[4:6])
    salt = bcrypt_b64decode(salt_string[7:29], 16)
    key = (password + b"\x00")[:72]
    digest = bcrypt_raw(key, salt, cost)
    return f"$2a${cost:02d}${bcrypt_b64encode(salt)[:22]}{bcrypt_b64encode(digest[:23])}"


def harden_password(password: bytes, salt: bytes, cost: int) -> bytes:
    """Derive a 20-byte key from a password at eksblowfish cost *cost*.

    This is the transformation SFS applies before a password enters SRP or
    encrypts a private key: an attacker who steals the server's SRP data
    must pay ``2**cost`` Blowfish expansions per guess.  The salt may be
    any length; it is folded to the 16 bytes eksblowfish expects.
    """
    folded_salt = sha1(b"SaltFold" + salt)[:16]
    key = (password + b"\x00")[:72] if password else b"\x00"
    return sha1(b"PasswordHarden" + bcrypt_raw(key, folded_salt, cost))
