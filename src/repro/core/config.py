"""Dispatch configuration for server and client masters.

"A configuration file controls how client and server masters hand off
connections.  Thus, one can add new file system protocols to SFS without
changing any of the existing software.  Old and new versions of the same
protocols can run alongside each other." (paper section 3.2)

:class:`DispatchConfig` is the in-memory form of sfssd.conf: an ordered
rule list matched against (service, HostID, extensions).  Exports
register a default rule; operators can prepend custom rules, e.g. to
route an extension string to an experimental dialect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: A rule predicate: (service, hostid, extensions) -> matches?
Predicate = Callable[[int, bytes, list[str]], bool]


@dataclass
class DispatchRule:
    """One sfssd.conf line: predicate -> export name."""

    name: str
    export: str
    predicate: Predicate


class DispatchConfig:
    """Ordered dispatch rules; first match wins."""

    def __init__(self) -> None:
        self._rules: list[DispatchRule] = []

    def prepend_rule(self, name: str, export: str,
                     predicate: Predicate) -> None:
        """Install a high-priority custom rule (new protocol, etc.)."""
        self._rules.insert(0, DispatchRule(name, export, predicate))

    def add_export(self, export: str, hostid: bytes, dialect: str) -> None:
        """The default rule an export registers: match its own HostID."""
        def match(service: int, requested: bytes, extensions: list[str],
                  hostid: bytes = hostid) -> bool:
            return requested == hostid

        self._rules.append(DispatchRule(f"export:{export}", export, match))

    def dispatch(self, service: int, hostid: bytes,
                 extensions: list[str]) -> str | None:
        """The export that should serve this connection, or None."""
        for rule in self._rules:
            if rule.predicate(service, hostid, extensions):
                return rule.export
        return None

    def rules(self) -> list[str]:
        """Human-readable rule listing (sfssd.conf dump)."""
        return [f"{rule.name} -> {rule.export}" for rule in self._rules]

    def load(self, text: str) -> int:
        """Parse sfssd.conf-style rules; returns how many were added.

        Line format (comments with ``#``, blank lines ignored)::

            rule NAME export EXPORT [service=N] [hostid=BASE32]
                                    [extension=WORD]

        Conditions AND together; a rule with no conditions matches every
        connection.  Parsed rules are *prepended* in file order, so the
        first line of the file has the highest priority — matching how
        sfssd reads its configuration.
        """
        from .pathnames import hostid_from_text

        parsed: list[DispatchRule] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) < 4 or tokens[0] != "rule" or tokens[2] != "export":
                raise ValueError(f"sfssd.conf line {lineno}: bad syntax: {raw!r}")
            name, export = tokens[1], tokens[3]
            want_service: int | None = None
            want_hostid: bytes | None = None
            want_extension: str | None = None
            for condition in tokens[4:]:
                key, _, value = condition.partition("=")
                if not value:
                    raise ValueError(
                        f"sfssd.conf line {lineno}: bad condition {condition!r}"
                    )
                if key == "service":
                    want_service = int(value)
                elif key == "hostid":
                    want_hostid = hostid_from_text(value)
                elif key == "extension":
                    want_extension = value
                else:
                    raise ValueError(
                        f"sfssd.conf line {lineno}: unknown condition {key!r}"
                    )

            def predicate(service: int, hostid: bytes, extensions: list[str],
                          want_service=want_service, want_hostid=want_hostid,
                          want_extension=want_extension) -> bool:
                if want_service is not None and service != want_service:
                    return False
                if want_hostid is not None and hostid != want_hostid:
                    return False
                if want_extension is not None and want_extension not in extensions:
                    return False
                return True

            parsed.append(DispatchRule(name, export, predicate))
        for rule in reversed(parsed):
            self._rules.insert(0, rule)
        return len(parsed)
