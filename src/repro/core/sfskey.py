"""sfskey — the user's key-management utility.

This implements the paper's flagship usability flow (section 2.4): a user
at a strange machine types

    sfskey add alice@sfs.lcs.mit.edu

enters one password, and transparently gets secure access to her files —
"The process involves no system administrators, no certification
authorities, and no need for this user to have to think about anything
like public keys or self-certifying pathnames."

Mechanics:

* enrolment (:func:`register`) computes an SRP verifier from the
  eksblowfish-hardened password and uploads it with the user's public key
  and an encrypted copy of her private key ("a safe design because the
  server never sees any password-equivalent data");
* :func:`add` dials the server's authserv service, runs SRP over the
  (unverified) channel, unseals the server's self-certifying pathname and
  the private key, decrypts the key with the hardened password, loads it
  into the agent, and creates the ``Location -> /sfs/Location:HostID``
  symlink in /sfs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.eksblowfish import harden_password
from ..crypto.rabin import PrivateKey, generate_key
from ..crypto.srp import SRPClient, SRPError
from ..crypto.util import int_to_bytes
from ..rpc.xdr import XdrError
from . import proto
from .agent import Agent
from .client import Connector, ServerSession
from .keyneg import EphemeralKeyCache
from .pathnames import SelfCertifyingPath, parse_path
from .sealing import SealError, seal, unseal

DEFAULT_SRP_COST = 4  # low cost keeps the test suite fast; raiseable


class SfsKeyError(Exception):
    """A key-management operation failed."""


def encrypt_private_key(key: PrivateKey, password: bytes, salt: bytes,
                        cost: int) -> bytes:
    """Seal a private key under an eksblowfish-hardened password."""
    wrap = harden_password(password, salt + b"privkey", cost)
    return seal(wrap, key.to_bytes(), label=b"privkey")


def decrypt_private_key(blob: bytes, password: bytes, salt: bytes,
                        cost: int) -> PrivateKey:
    wrap = harden_password(password, salt + b"privkey", cost)
    try:
        return PrivateKey.from_bytes(unseal(wrap, blob, label=b"privkey"))
    except (SealError, Exception) as exc:
        raise SfsKeyError(f"could not decrypt private key: {exc}") from None


@dataclass
class Enrolment:
    """Everything register() uploads for one user."""

    user: str
    key: PrivateKey
    srp_salt: bytes
    srp_verifier: int
    srp_cost: int
    encrypted_privkey: bytes


def prepare_enrolment(user: str, password: bytes, rng: random.Random,
                      key: PrivateKey | None = None,
                      cost: int = DEFAULT_SRP_COST,
                      key_bits: int = 768) -> Enrolment:
    """Compute SRP data and the encrypted key, all client-side."""
    from ..crypto.srp import Verifier

    key = key or generate_key(key_bits, rng)
    verifier = Verifier.from_password(user, password, rng, cost)
    return Enrolment(
        user=user,
        key=key,
        srp_salt=verifier.salt,
        srp_verifier=verifier.v,
        srp_cost=cost,
        encrypted_privkey=encrypt_private_key(
            key, password, verifier.salt, cost
        ),
    )


def _dial_authserv(connector: Connector, location: str,
                   rng: random.Random) -> ServerSession:
    link = connector(location, proto.SERVICE_AUTHSERV)
    path = SelfCertifyingPath(location, bytes(20))
    session = ServerSession.connect(
        link, path, EphemeralKeyCache(rng), rng,
        service=proto.SERVICE_AUTHSERV, verify_hostid=False,
    )
    if not isinstance(session, ServerSession):
        raise SfsKeyError(f"{location} revoked or redirected the connection")
    return session


def register(connector: Connector, location: str, enrolment: Enrolment,
             unix_password: str, rng: random.Random) -> None:
    """First-time enrolment, authorized by the user's Unix password."""
    session = _dial_authserv(connector, location, rng)
    disc, _body = session.peer.call(
        proto.SFS_AUTHSERV_PROGRAM, proto.SFS_VERSION, proto.PROC_REGISTER,
        proto.RegisterArgs,
        proto.RegisterArgs.make(
            user=enrolment.user,
            public_key=enrolment.key.public_key.to_bytes(),
            srp_salt=enrolment.srp_salt,
            srp_verifier=int_to_bytes(enrolment.srp_verifier),
            srp_cost=enrolment.srp_cost,
            encrypted_privkey=enrolment.encrypted_privkey,
            unix_password=unix_password,
        ),
        proto.RegisterRes,
    )
    if disc != proto.REGISTER_OK:
        raise SfsKeyError(f"registration denied for {enrolment.user}")


@dataclass
class AddResult:
    """What `sfskey add user@location` produced."""

    pathname: str
    path: SelfCertifyingPath
    key: PrivateKey | None


def add(connector: Connector, agent: Agent, user: str, location: str,
        password: bytes, rng: random.Random) -> AddResult:
    """The travelling-user flow: password -> pathname + key + /sfs link.

    Runs SRP over an unauthenticated channel (SRP itself proves both
    sides know the password without exposing it to off-line guessing),
    unseals the self-certifying pathname, decrypts the private key, arms
    the agent, and drops the ``location`` symlink into the agent's /sfs
    view.
    """
    session = _dial_authserv(connector, location, rng)
    client = SRPClient(user, password, rng)
    A = client.start()
    disc, body = session.peer.call(
        proto.SFS_AUTHSERV_PROGRAM, proto.SFS_VERSION, proto.PROC_SRP_INIT,
        proto.SrpInitArgs,
        proto.SrpInitArgs.make(user=user, A=int_to_bytes(A)),
        proto.SrpInitRes,
    )
    if disc != proto.SRP_OK:
        raise SfsKeyError(f"no SRP data for {user}@{location}")
    try:
        m1 = client.process_challenge(
            body.salt, int.from_bytes(body.B, "big"), body.cost
        )
    except SRPError as exc:
        raise SfsKeyError(f"SRP failed: {exc}") from None
    disc, confirm = session.peer.call(
        proto.SFS_AUTHSERV_PROGRAM, proto.SFS_VERSION, proto.PROC_SRP_CONFIRM,
        proto.SrpConfirmArgs, proto.SrpConfirmArgs.make(m1=m1),
        proto.SrpConfirmRes,
    )
    if disc != proto.SRP_OK:
        raise SfsKeyError("server rejected the password")
    try:
        client.verify_server(confirm.m2)
    except SRPError as exc:
        raise SfsKeyError(f"server failed SRP verification: {exc}") from None
    try:
        payload_bytes = unseal(client.session_key, confirm.sealed_payload,
                               label=b"srp-payload")
        payload = proto.SrpPayload.unpack(payload_bytes)
    except (SealError, XdrError) as exc:
        raise SfsKeyError(f"bad sealed payload: {exc}") from None
    path = parse_path(payload.pathname)
    key: PrivateKey | None = None
    if payload.encrypted_privkey:
        key = decrypt_private_key(
            payload.encrypted_privkey, password, body.salt, body.cost
        )
        agent.add_key(key)
    # "The user's agent then creates a symbolic link
    #  /sfs/sfs.lcs.mit.edu -> /sfs/sfs.lcs.mit.edu:HOSTID"
    agent.add_link(location, str(path))
    return AddResult(pathname=payload.pathname, path=path, key=key)
