"""Shared exponential-backoff policy for redial and reconnect loops.

PR 1 gave the mounter a fixed three-attempt redial; crash recovery needs
the classic shape instead — exponential growth with a cap, plus jitter
so a fleet of clients does not hammer a restarting server in lockstep
(the thundering-herd problem).  One policy object now serves both the
mount-time handshake redial and the session reconnect engine, and is
constructor-injectable so tests can pin delays deterministically.

Delays come from :meth:`BackoffPolicy.delays`, which yields one delay
per *retry* (the first attempt is immediate).  All randomness flows
through the caller's seeded ``random.Random``, keeping runs
reproducible per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative growth, cap, and jitter.

    ``jitter`` is a fraction: each delay is scaled by a uniform factor
    in ``[1 - jitter, 1 + jitter]``.  Zero jitter gives exact delays
    for deterministic tests.
    """

    max_attempts: int = 6
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter is a fraction in [0, 1)")

    def delays(self, rng: random.Random | None) -> Iterator[float]:
        """Yield the pre-attempt delay for each attempt.

        The first yielded value is 0.0 (try immediately); each later
        value is the jittered, capped exponential wait before that
        retry.  ``max_attempts`` values are yielded in total.

        *rng* is required: a jittered policy without a randomness
        source would silently retry a whole fleet of clients in
        lockstep — the exact thundering herd jitter exists to prevent
        — so that combination raises instead of degrading.  Only a
        policy pinned to ``jitter=0.0`` (deterministic tests, NO_RETRY)
        may pass ``None``.
        """
        if rng is None and self.jitter:
            raise ValueError(
                "BackoffPolicy with jitter needs the caller's seeded "
                "random.Random; without one every client would retry in "
                "lockstep (pass rng, or pin jitter=0.0 for exact delays)"
            )
        return self._delays(rng)

    def _delays(self, rng: random.Random | None) -> Iterator[float]:
        delay = self.base_delay
        for attempt in range(self.max_attempts):
            if attempt == 0:
                yield 0.0
                continue
            scale = 1.0
            if self.jitter:
                scale = rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
            yield min(delay, self.max_delay) * scale
            delay = min(delay * self.multiplier, self.max_delay)


#: Immediate, single-shot policy (no retries) for tests and tools.
NO_RETRY = BackoffPolicy(max_attempts=1, jitter=0.0)
