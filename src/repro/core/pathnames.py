"""Self-certifying pathnames — the paper's central idea.

Every SFS file system is accessible under ``/sfs/Location:HostID`` where
*Location* names the server (DNS name or IP address) and *HostID* is a
cryptographic hash of the server's public key and Location:

    HostID = SHA-1("HostInfo", Location, PublicKey,
                   "HostInfo", Location, PublicKey)

The input is deliberately duplicated: "Any collision of the duplicate
input SHA-1 is also a collision of SHA-1.  Thus, duplicating SHA-1's
input certainly does not harm security; it could conceivably help
security in the event that simple SHA-1 falls to cryptanalysis."
(paper footnote 1)

HostIDs are rendered in the SFS base-32 alphabet (32 characters for 20
bytes).  Because the pathname pins the public key, *no key management
machinery is needed inside the file system*: the name itself suffices to
authenticate the server.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..crypto.rabin import PublicKey
from ..crypto.sha1 import SHA1
from ..crypto.util import sfs_base32_decode, sfs_base32_encode

SFS_ROOT = "/sfs"
HOSTID_LEN = 20
HOSTID_B32_LEN = 32

_LOCATION_RE = re.compile(r"^[a-zA-Z0-9][a-zA-Z0-9.\-]*$")


class PathnameError(ValueError):
    """Raised for malformed self-certifying pathnames."""


def compute_hostid(location: str, public_key: PublicKey) -> bytes:
    """The 20-byte HostID binding *location* to *public_key*."""
    if not _LOCATION_RE.match(location):
        raise PathnameError(f"invalid Location {location!r}")
    h = SHA1()
    key_bytes = public_key.to_bytes()
    for _ in range(2):  # the deliberate duplication
        h.update(b"HostInfo")
        h.update(len(location).to_bytes(4, "big"))
        h.update(location.encode())
        h.update(len(key_bytes).to_bytes(4, "big"))
        h.update(key_bytes)
    return h.digest()


def hostid_to_text(hostid: bytes) -> str:
    """Render a HostID in SFS base-32 (32 characters)."""
    if len(hostid) != HOSTID_LEN:
        raise PathnameError("HostID must be 20 bytes")
    return sfs_base32_encode(hostid)


def hostid_from_text(text: str) -> bytes:
    """Parse an SFS base-32 HostID."""
    if len(text) != HOSTID_B32_LEN:
        raise PathnameError(
            f"HostID must be {HOSTID_B32_LEN} base-32 characters, got {len(text)}"
        )
    try:
        return sfs_base32_decode(text, HOSTID_LEN)
    except ValueError as exc:
        raise PathnameError(str(exc)) from None


@dataclass(frozen=True)
class SelfCertifyingPath:
    """A parsed ``/sfs/Location:HostID[/rest]`` pathname."""

    location: str
    hostid: bytes
    rest: str = ""

    @property
    def hostid_text(self) -> str:
        return hostid_to_text(self.hostid)

    @property
    def mount_name(self) -> str:
        """The ``Location:HostID`` directory name under /sfs."""
        return f"{self.location}:{self.hostid_text}"

    def __str__(self) -> str:
        path = f"{SFS_ROOT}/{self.mount_name}"
        if self.rest:
            path += "/" + self.rest.lstrip("/")
        return path

    def matches_key(self, public_key: PublicKey) -> bool:
        """Does *public_key* (with our Location) hash to this HostID?

        This is the entire server-authentication check in SFS.
        """
        return compute_hostid(self.location, public_key) == self.hostid


def make_path(location: str, public_key: PublicKey, rest: str = "") -> SelfCertifyingPath:
    """Build the self-certifying pathname for a server's key."""
    return SelfCertifyingPath(location, compute_hostid(location, public_key), rest)


def parse_mount_name(name: str) -> SelfCertifyingPath | None:
    """Parse a ``Location:HostID`` component; None if it isn't one."""
    if ":" not in name:
        return None
    location, _, hostid_text = name.rpartition(":")
    if not location or not _LOCATION_RE.match(location):
        return None
    if len(hostid_text) != HOSTID_B32_LEN:
        return None
    try:
        hostid = hostid_from_text(hostid_text)
    except PathnameError:
        return None
    return SelfCertifyingPath(location, hostid)


def parse_path(path: str) -> SelfCertifyingPath:
    """Parse a full ``/sfs/Location:HostID/...`` pathname."""
    if not path.startswith(SFS_ROOT + "/"):
        raise PathnameError(f"not an /sfs path: {path!r}")
    remainder = path[len(SFS_ROOT) + 1 :]
    mount_name, _, rest = remainder.partition("/")
    parsed = parse_mount_name(mount_name)
    if parsed is None:
        raise PathnameError(f"not a self-certifying name: {mount_name!r}")
    return SelfCertifyingPath(parsed.location, parsed.hostid, rest)
