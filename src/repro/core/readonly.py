"""The SFS read-only dialect: file systems proven by offline signatures.

"We implemented a dialect of the SFS protocol that allows servers to
prove the contents of public, read-only file systems using precomputed
digital signatures.  This dialect makes the amount of cryptographic
computation required from read-only servers proportional to the file
system's size and rate of change, rather than to the number of clients
connecting.  It also frees read-only servers from the need to keep any
on-line copies of their private keys, which in turn allows read-only file
systems to be replicated on untrusted machines." (paper section 2.4)

Mechanics: :func:`publish` walks a file system bottom-up, storing every
node (file chunk lists, directories, symlinks) in a content-addressed
store keyed by SHA-1 digest, and signs only the root digest — offline,
once per version.  A :class:`ReadOnlyServer` (or any untrusted mirror
holding the same image) answers two procedures: GETROOT (the signed root)
and GETDATA (bytes for a digest).  The :class:`ReadOnlyClient` verifies
the root signature against the self-certifying pathname and every fetched
blob against its digest, so a tampering mirror is always detected.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..crypto.rabin import PrivateKey, PublicKey, RabinError
from ..crypto.sha1 import sha1
from ..fs.memfs import Cred, MemFs, NF_DIR, NF_LNK, NF_REG
from ..obs.registry import NULL_REGISTRY
from ..rpc.xdr import (
    Array,
    FixedOpaque,
    Record,
    String,
    Struct,
    UHyper,
    UInt32,
    Union,
    XdrError,
)
from . import proto
from .pathnames import SelfCertifyingPath, compute_hostid, make_path

CHUNK_SIZE = 8192

RO_REG = 1
RO_DIR = 2
RO_LNK = 3

#: Default budget for a client's verified-blob cache.  Under the
#: replica tier a long-lived client would otherwise mirror the whole
#: image in memory; the LRU bound keeps the working set and re-verifies
#: anything evicted on refetch.
DEFAULT_CACHE_BYTES = 4 * 1024 * 1024

RoFile = Struct(
    "RoFile",
    [("size", UHyper), ("mode", UInt32), ("chunks", Array(FixedOpaque(20)))],
)
RoDirEntry = Struct(
    "RoDirEntry", [("name", String(255)), ("digest", FixedOpaque(20))]
)
RoDir = Struct("RoDir", [("mode", UInt32), ("entries", Array(RoDirEntry))])
RoLink = Struct("RoLink", [("target", String(1024))])

RoNode = Union("RoNode", {RO_REG: RoFile, RO_DIR: RoDir, RO_LNK: RoLink})


class ReadOnlyError(Exception):
    """Verification failure or malformed read-only data."""


@dataclass
class ReadOnlyImage:
    """A published, signed, content-addressed file system image."""

    location: str
    root_bytes: bytes            # marshaled proto.ReadOnlyRoot
    signature: bytes
    store: dict[bytes, bytes] = field(default_factory=dict)
    public_key_bytes: bytes = b""
    #: How many blobs this publication created that the previous image
    #: did not already hold (0 when published without a predecessor —
    #: then every blob is "new" and counted in len(store)).
    new_blobs: int = 0

    @property
    def root_digest(self) -> bytes:
        return proto.ReadOnlyRoot.unpack(self.root_bytes).root_digest

    @property
    def serial(self) -> int:
        return proto.ReadOnlyRoot.unpack(self.root_bytes).serial

    def path(self) -> SelfCertifyingPath:
        return make_path(self.location, PublicKey.from_bytes(self.public_key_bytes))

    def replicate(self) -> "ReadOnlyImage":
        """Copy the image, as an untrusted mirror would."""
        return ReadOnlyImage(
            self.location, self.root_bytes, self.signature,
            dict(self.store), self.public_key_bytes,
        )


def publish(fs: MemFs, key: PrivateKey, location: str,
            serial: int = 1,
            previous: "ReadOnlyImage | None" = None) -> ReadOnlyImage:
    """Sign a file system into a read-only image (run offline by the owner).

    This is the only step that touches the private key; the resulting
    image can be served by machines that never see it.

    Passing the *previous* image makes publication incremental: unchanged
    content hashes to the same digests and is carried over without
    re-serialization, so — as the paper puts it — the cryptographic
    computation is "proportional to the file system's size and rate of
    change".  The returned image's :attr:`ReadOnlyImage.new_blobs` counts
    what actually changed.
    """
    store: dict[bytes, bytes] = {}
    reused: dict[bytes, bytes] = dict(previous.store) if previous else {}
    cred = Cred(0, 0)
    new_blobs = 0

    def put(blob: bytes) -> bytes:
        nonlocal new_blobs
        digest = sha1(blob)
        if digest not in store:
            if digest not in reused:
                new_blobs += 1
            store[digest] = blob
        return digest

    def encode_inode(ino: int) -> bytes:
        inode = fs.get_inode(ino)
        if inode.ftype == NF_REG:
            data, _eof = fs.read(ino, 0, inode.size, cred)
            chunks = [
                put(data[i : i + CHUNK_SIZE])
                for i in range(0, len(data), CHUNK_SIZE)
            ]
            node = (RO_REG, RoFile.make(
                size=inode.size, mode=inode.mode, chunks=chunks
            ))
        elif inode.ftype == NF_DIR:
            assert inode.entries is not None
            entries = [
                RoDirEntry.make(name=name, digest=encode_inode(child))
                for name, child in sorted(inode.entries.items())
            ]
            node = (RO_DIR, RoDir.make(mode=inode.mode, entries=entries))
        elif inode.ftype == NF_LNK:
            node = (RO_LNK, RoLink.make(target=inode.target))
        else:
            raise ReadOnlyError(f"unsupported file type {inode.ftype}")
        return put(RoNode.pack(node))

    root_digest = encode_inode(fs.root_ino)
    root_bytes = proto.ReadOnlyRoot.pack(
        proto.ReadOnlyRoot.make(
            msg_type="RoRoot", location=location,
            root_digest=root_digest, serial=serial,
        )
    )
    image = ReadOnlyImage(
        location=location,
        root_bytes=root_bytes,
        signature=key.sign(root_bytes),
        store=store,
        public_key_bytes=key.public_key.to_bytes(),
    )
    image.new_blobs = new_blobs
    return image


class ReadOnlyStore:
    """Server-side answering machine for GETROOT / GETDATA.

    Holds no private key — this is the whole point of the dialect.
    """

    def __init__(self, image: ReadOnlyImage) -> None:
        self.image = image
        self.getdata_calls = 0

    def get_root(self) -> Record:
        return proto.GetRootRes.make(
            root_bytes=self.image.root_bytes, signature=self.image.signature
        )

    def get_data(self, digest: bytes) -> bytes | None:
        self.getdata_calls += 1
        return self.image.store.get(digest)


class ReadOnlyClient:
    """Verifying client view of a read-only file system.

    *fetch_root* and *fetch_data* are transport callbacks (bound to RPC
    stubs by the client daemon, or directly to a store in tests).  Every
    byte returned by this class has been verified against the signed
    root: the root signature is checked against the public key that the
    self-certifying pathname commits to, and every blob is re-hashed.
    """

    def __init__(self, path: SelfCertifyingPath, fetch_root, fetch_data,
                 min_serial: int = 0,
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 metrics=NULL_REGISTRY) -> None:
        self._path = path
        self._fetch_data = fetch_data
        #: LRU over verified blobs, bounded by total byte size; an
        #: evicted blob is re-verified against its digest on refetch.
        self._cache: OrderedDict[bytes, bytes] = OrderedDict()
        self._cache_limit = cache_bytes
        self._cached_bytes = 0
        self._m_cache_hits = metrics.counter("readonly.cache_hits")
        self._m_cache_misses = metrics.counter("readonly.cache_misses")
        self._m_cache_evictions = metrics.counter("readonly.cache_evictions")
        root_res = fetch_root()
        try:
            public_key = PublicKey.from_bytes(
                # The server's key arrives out of band in the connect
                # step; for the read-only dialect the key is committed to
                # by the signature check below against the pathname.
                self._expect_key_bytes(root_res)
            )
        except RabinError as exc:
            raise ReadOnlyError(f"bad public key: {exc}") from None
        if compute_hostid(path.location, public_key) != path.hostid:
            raise ReadOnlyError("server key does not match pathname HostID")
        if not public_key.verify(root_res.root_bytes, root_res.signature):
            raise ReadOnlyError("root signature does not verify")
        try:
            root = proto.ReadOnlyRoot.unpack(root_res.root_bytes)
        except XdrError as exc:
            raise ReadOnlyError(f"malformed signed root: {exc}") from None
        if root.msg_type != "RoRoot" or root.location != path.location:
            raise ReadOnlyError("signed root is for a different file system")
        if root.serial < min_serial:
            # Rollback protection: a mirror replaying a stale (but
            # correctly signed) image is detected when the client knows
            # a newer serial exists.
            raise ReadOnlyError(
                f"stale image: serial {root.serial} < expected {min_serial}"
            )
        self.root_digest = root.root_digest
        self.serial = root.serial

    @staticmethod
    def _expect_key_bytes(root_res: Record) -> bytes:
        key_bytes = getattr(root_res, "public_key", None)
        if key_bytes is None:
            raise ReadOnlyError("transport did not supply the server key")
        return key_bytes

    # --- verified fetching ---------------------------------------------------

    def fetch(self, digest: bytes) -> bytes:
        """Fetch and verify one blob by digest."""
        cached = self._cache.get(digest)
        if cached is not None:
            self._cache.move_to_end(digest)
            self._m_cache_hits.inc()
            return cached
        self._m_cache_misses.inc()
        blob = self._fetch_data(digest)
        if blob is None:
            raise ReadOnlyError(f"server has no data for {digest.hex()[:12]}")
        if sha1(blob) != digest:
            raise ReadOnlyError("blob digest mismatch (tampered mirror?)")
        self._cache[digest] = blob
        self._cached_bytes += len(blob)
        while self._cached_bytes > self._cache_limit and len(self._cache) > 1:
            _evicted, old = self._cache.popitem(last=False)
            self._cached_bytes -= len(old)
            self._m_cache_evictions.inc()
        return blob

    def node(self, digest: bytes) -> tuple[int, Record]:
        """Fetch and decode a file system node."""
        try:
            return RoNode.unpack(self.fetch(digest))
        except XdrError as exc:
            raise ReadOnlyError(f"malformed node: {exc}") from None

    # --- navigation ------------------------------------------------------------

    def lookup(self, dir_digest: bytes, name: str) -> bytes:
        kind, body = self.node(dir_digest)
        if kind != RO_DIR:
            raise ReadOnlyError("lookup in a non-directory")
        for entry in body.entries:
            if entry.name == name:
                return entry.digest
        raise ReadOnlyError(f"no entry {name!r}")

    def listdir(self, dir_digest: bytes) -> list[tuple[str, bytes]]:
        kind, body = self.node(dir_digest)
        if kind != RO_DIR:
            raise ReadOnlyError("listdir on a non-directory")
        return [(entry.name, entry.digest) for entry in body.entries]

    def readlink(self, digest: bytes) -> str:
        kind, body = self.node(digest)
        if kind != RO_LNK:
            raise ReadOnlyError("readlink on a non-symlink")
        return body.target

    def read_file(self, digest: bytes, offset: int = 0,
                  count: int | None = None) -> bytes:
        kind, body = self.node(digest)
        if kind != RO_REG:
            raise ReadOnlyError("read of a non-file")
        # The root signature proves the publisher signed this node, not
        # that the publisher was honest: a malformed size/chunk-list
        # pair must surface as the tampered-mirror error contract, not
        # escape as an IndexError or as silently shifted bytes.
        size = body.size
        chunk_count = len(body.chunks)
        expected_chunks = (size + CHUNK_SIZE - 1) // CHUNK_SIZE
        if chunk_count != expected_chunks:
            raise ReadOnlyError(
                f"signed size {size} disagrees with chunk list "
                f"({chunk_count} chunks, expected {expected_chunks})"
            )
        if count is None:
            count = size
        end = min(size, offset + count)
        if offset >= end:
            return b""
        out = bytearray()
        first = offset // CHUNK_SIZE
        last = (end - 1) // CHUNK_SIZE
        for index in range(first, last + 1):
            chunk = self.fetch(body.chunks[index])
            expected_len = (CHUNK_SIZE if index < chunk_count - 1
                            else size - (chunk_count - 1) * CHUNK_SIZE)
            if len(chunk) != expected_len:
                # An over- or under-length chunk (digest-valid, since
                # the publisher signed it) would shift every byte after
                # it; reject rather than deliver misaligned data.
                raise ReadOnlyError(
                    f"chunk {index} is {len(chunk)} bytes, "
                    f"expected {expected_len}"
                )
            out += chunk
        skip = offset - first * CHUNK_SIZE
        return bytes(out[skip : skip + (end - offset)])

    def resolve_path(self, rest: str) -> bytes:
        """Walk a /-separated path from the root; returns the digest."""
        digest = self.root_digest
        for part in rest.split("/"):
            if part:
                digest = self.lookup(digest, part)
        return digest
