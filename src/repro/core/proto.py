"""SFS wire-protocol definitions (XDR structures and program numbers).

Everything SFS hashes, signs, or encrypts is defined as an XDR structure
and the cryptographic function is computed over the marshaled bytes
(paper section 3.2).  This module is the single source of truth for:

* the connection / key-negotiation program spoken in plaintext before
  the secure channel comes up (paper figure 3),
* the read-write file system program (NFS 3 procedures plus LOGIN — the
  paper's dialect with leases and callbacks),
* the client-side callback program (lease invalidation),
* the authserver program (LOGIN validation, SRP, key registration),
* the agent program (auth requests, /sfs name resolution, revocation
  checks), and
* revocation certificates and forwarding pointers (paper section 2.6).
"""

from __future__ import annotations

from ..nfs3 import types as nfs_types
from ..rpc.xdr import (
    Array,
    Bool,
    FixedOpaque,
    Opaque,
    Optional,
    String,
    Struct,
    UInt32,
    Union,
)  # noqa: F401 - Bool used by the libsfs structures below

# --- program numbers ------------------------------------------------------

SFS_CONNECT_PROGRAM = 344440  # plaintext: connect + key negotiation
SFS_RW_PROGRAM = 344444      # secure channel: NFS3-like + LOGIN
SFS_CB_PROGRAM = 344446      # server->client lease invalidation
SFS_AUTHSERV_PROGRAM = 344442  # authserver (reached via service dispatch)
SFS_AGENT_PROGRAM = 344448   # client->agent (local, per-user)
SFS_VERSION = 1

# Connection services (paper: "the service it requests (currently
# fileserver or authserver)").
SERVICE_FILESERVER = 1
SERVICE_AUTHSERV = 2
SERVICE_READONLY = 3

# Dialects a server master can hand connections to.
DIALECT_RW = "sfs-rw-1"
DIALECT_RO = "sfs-ro-1"

# RPC auth flavor carrying an SFS authentication number.
AUTH_SFS = 390000

# --- connect + key negotiation --------------------------------------------

HostIdOpaque = FixedOpaque(20)

ConnectArgs = Struct(
    "ConnectArgs",
    [
        ("service", UInt32),
        ("location", String(255)),
        ("hostid", HostIdOpaque),
        ("extensions", Array(String(255), 16)),
    ],
)

ServInfo = Struct(
    "ServInfo",
    [
        ("location", String(255)),
        ("public_key", Opaque()),
        ("dialect", String(64)),
        ("lease_duration", UInt32),
    ],
)

# Connect result discriminants
CONNECT_OK = 0
CONNECT_REDIRECT = 1
CONNECT_REVOKED = 2
CONNECT_NOENT = 3

SignedCertificate = Struct(
    "SignedCertificate",
    [("body", Opaque()), ("public_key", Opaque()), ("signature", Opaque())],
)

ConnectRes = Union(
    "ConnectRes",
    {
        CONNECT_OK: ServInfo,
        CONNECT_REDIRECT: SignedCertificate,
        CONNECT_REVOKED: SignedCertificate,
        CONNECT_NOENT: None,
    },
)

EncryptArgs = Struct(
    "EncryptArgs",
    [
        ("client_pubkey", Opaque()),        # short-lived K_C
        ("encrypted_keyhalves", Opaque()),  # {k_C1, k_C2} under K_S
    ],
)

EncryptRes = Struct(
    "EncryptRes",
    [
        ("encrypted_keyhalves", Opaque()),  # {k_S1, k_S2} under K_C
    ],
)

# Re-keying (channel resynchronization).  Shaped like ENCRYPT plus an
# HMAC-SHA1 tag keyed by the *current* SessionID over the new key
# material: only the endpoint of the existing session can produce it, so
# a network attacker who forces a desync cannot substitute their own
# negotiation and inherit the session's authnos.
RekeyArgs = Struct(
    "RekeyArgs",
    [
        ("client_pubkey", Opaque()),        # fresh or reused K_C
        ("encrypted_keyhalves", Opaque()),  # {k_C1, k_C2} under K_S
        ("auth", FixedOpaque(20)),          # HMAC(SessionID, pubkey ‖ halves)
    ],
)

REKEY_OK = 0
REKEY_DENIED = 1

RekeyRes = Union(
    "RekeyRes",
    {
        REKEY_OK: EncryptRes,
        REKEY_DENIED: None,
    },
)

PROC_CONNECT = 1
PROC_ENCRYPT = 2
PROC_REKEY = 3

# --- user authentication (paper figure 4) -----------------------------------

# AuthInfo identifies the session and file system being authenticated to;
# its SHA-1 hash is the AuthID the agent actually signs (together with the
# sequence number), binding every request to one session.
AuthInfo = Struct(
    "AuthInfo",
    [
        ("auth_type", String(16)),   # "AuthInfo"
        ("service", String(8)),      # "FS"
        ("location", String(255)),
        ("hostid", HostIdOpaque),
        ("sessionid", FixedOpaque(20)),
    ],
)

SignedAuthReq = Struct(
    "SignedAuthReq",
    [
        ("req_type", String(16)),    # "SignedAuthReq"
        ("authid", FixedOpaque(20)),
        ("seqno", UInt32),
    ],
)

AuthMsg = Struct(
    "AuthMsg",
    [
        ("signed_req", Opaque()),    # marshaled SignedAuthReq
        ("public_key", Opaque()),    # the user's K_U
        ("signature", Opaque()),     # Rabin signature over signed_req
    ],
)

LoginArgs = Struct(
    "LoginArgs",
    [("seqno", UInt32), ("authmsg", Opaque())],
)

LOGIN_OK = 0
LOGIN_FAILED = 1
LOGIN_MORE = 2  # multi-round protocols: an opaque challenge comes back

LoginOk = Struct("LoginOk", [("authno", UInt32)])
LoginRes = Union(
    "LoginRes",
    {LOGIN_OK: LoginOk, LOGIN_FAILED: None, LOGIN_MORE: Opaque()},
)

# Authentication messages other than the classic public-key AuthMsg are
# wrapped in an envelope naming their protocol; the file server relays
# them without interpretation ("a (possibly multi-round) protocol opaque
# to the file system software itself", section 2.5).
AUTH_ENVELOPE_MAGIC = "SFSAuthEnvelope"
AuthEnvelope = Struct(
    "AuthEnvelope",
    [
        ("magic", String(24)),
        ("protocol", String(32)),
        ("body", Opaque()),
    ],
)

PROC_LOGIN = 100
PROC_LOGOUT = 101
LogoutArgs = Struct("LogoutArgs", [("authno", UInt32)])

# --- libsfs id/name mapping (paper section 3.3) ------------------------------

IdToNameArgs = Struct(
    "IdToNameArgs", [("is_group", Bool), ("numeric_id", UInt32)]
)
NameToIdArgs = Struct(
    "NameToIdArgs", [("is_group", Bool), ("name", String(64))]
)
IDMAP_OK = 0
IDMAP_NOENT = 1
IdToNameRes = Union("IdToNameRes", {IDMAP_OK: String(64), IDMAP_NOENT: None})
NameToIdRes = Union("NameToIdRes", {IDMAP_OK: UInt32, IDMAP_NOENT: None})

PROC_IDTONAME = 102
PROC_NAMETOID = 103

# --- callback program (lease invalidation, paper section 3.3) ---------------

InvalidateArgs = Struct("InvalidateArgs", [("handle", Opaque(64))])
PROC_INVALIDATE = 1

# --- authserver program ------------------------------------------------------

Credentials = Struct(
    "Credentials",
    [
        ("user", String(64)),
        ("uid", UInt32),
        ("gid", UInt32),
        ("groups", Array(UInt32, 16)),
    ],
)

ValidateArgs = Struct(
    "ValidateArgs",
    [("authid", FixedOpaque(20)), ("seqno", UInt32), ("authmsg", Opaque())],
)

VALIDATE_OK = 0
VALIDATE_FAILED = 1

ValidateOk = Struct(
    "ValidateOk",
    [("credentials", Credentials), ("seqno", UInt32)],
)
ValidateRes = Union(
    "ValidateRes", {VALIDATE_OK: ValidateOk, VALIDATE_FAILED: None}
)

SrpInitArgs = Struct(
    "SrpInitArgs", [("user", String(64)), ("A", Opaque())]
)
SRP_OK = 0
SRP_FAILED = 1
SrpInitOk = Struct(
    "SrpInitOk",
    [("salt", Opaque(64)), ("B", Opaque()), ("cost", UInt32)],
)
SrpInitRes = Union("SrpInitRes", {SRP_OK: SrpInitOk, SRP_FAILED: None})

SrpConfirmArgs = Struct("SrpConfirmArgs", [("m1", FixedOpaque(20))])
SrpConfirmOk = Struct(
    "SrpConfirmOk",
    [
        ("m2", FixedOpaque(20)),
        # Sealed under the SRP session key: the server's self-certifying
        # pathname and (optionally) the user's encrypted private key.
        ("sealed_payload", Opaque()),
    ],
)
SrpConfirmRes = Union(
    "SrpConfirmRes", {SRP_OK: SrpConfirmOk, SRP_FAILED: None}
)

SrpPayload = Struct(
    "SrpPayload",
    [
        ("pathname", String(512)),
        ("encrypted_privkey", Opaque()),
    ],
)

RegisterArgs = Struct(
    "RegisterArgs",
    [
        ("user", String(64)),
        ("public_key", Opaque()),
        ("srp_salt", Opaque(64)),
        ("srp_verifier", Opaque()),
        ("srp_cost", UInt32),
        ("encrypted_privkey", Opaque()),
        ("unix_password", String(128)),  # for opt-in initial registration
    ],
)
REGISTER_OK = 0
REGISTER_DENIED = 1
RegisterRes = Union("RegisterRes", {REGISTER_OK: None, REGISTER_DENIED: None})

PROC_VALIDATE = 1
PROC_SRP_INIT = 2
PROC_SRP_CONFIRM = 3
PROC_REGISTER = 4

# --- agent program (client master <-> per-user agent) ------------------------

SignReqArgs = Struct(
    "SignReqArgs",
    [
        ("authinfo_bytes", Opaque()),
        ("seqno", UInt32),
        ("key_index", UInt32),
        # "a field reserved for the path of processes and machines
        # through which the request arrived at the agent" (section 2.5.1)
        ("via", Array(String(128), 16)),
    ],
)
SIGN_OK = 0
SIGN_REFUSED = 1
SignReqRes = Union("SignReqRes", {SIGN_OK: Opaque(), SIGN_REFUSED: None})

# Name resolution: the client notifies the agent when a user accesses a
# non-self-certifying name under /sfs; the agent may answer with a symlink
# target created on the fly (paper section 2.3).
ResolveArgs = Struct("ResolveArgs", [("name", String(255))])
RESOLVE_LINK = 0
RESOLVE_NONE = 1
ResolveRes = Union(
    "ResolveRes", {RESOLVE_LINK: String(512), RESOLVE_NONE: None}
)

# Revocation check: before the client mounts a HostID, the user's agent
# may produce a revocation certificate or request a block.
RevcheckArgs = Struct(
    "RevcheckArgs", [("location", String(255)), ("hostid", HostIdOpaque)]
)
REVCHECK_CLEAR = 0
REVCHECK_REVOKED = 1
REVCHECK_BLOCKED = 2
RevcheckRes = Union(
    "RevcheckRes",
    {
        REVCHECK_CLEAR: None,
        REVCHECK_REVOKED: SignedCertificate,
        REVCHECK_BLOCKED: None,
    },
)

PROC_SIGNREQ = 1
PROC_RESOLVE = 2
PROC_REVCHECK = 3

# --- revocation certificates and forwarding pointers (section 2.6) ----------

# Body layout: {"PathRevoke", Location, redirect}.  A NULL redirect makes
# it a revocation certificate; a present redirect makes it a forwarding
# pointer.  "A revocation certificate always overrules a forwarding
# pointer for the same HostID."
RevokeBody = Struct(
    "RevokeBody",
    [
        ("msg_type", String(16)),    # "PathRevoke"
        ("location", String(255)),
        ("redirect", Optional(String(512))),
    ],
)

# --- read-only dialect (section 2.4 "certification authorities") ------------

# The signed root of a read-only file system.  The signature is computed
# offline at publication time; servers (and untrusted mirrors) need no
# on-line private key.
ReadOnlyRoot = Struct(
    "ReadOnlyRoot",
    [
        ("msg_type", String(16)),    # "RoRoot"
        ("location", String(255)),
        ("root_digest", FixedOpaque(20)),
        ("serial", UInt32),          # version / freshness counter
    ],
)

GetRootRes = Struct(
    "GetRootRes",
    [("root_bytes", Opaque()), ("signature", Opaque())],
)

GetDataArgs = Struct("GetDataArgs", [("digest", FixedOpaque(20))])
GETDATA_OK = 0
GETDATA_NOENT = 1
GetDataRes = Union("GetDataRes", {GETDATA_OK: Opaque(), GETDATA_NOENT: None})

PROC_GETROOT = 1
PROC_GETDATA = 2

SFS_RO_PROGRAM = 344445

# Re-export the NFS3 codecs the read-write program shares.
NFS_PROC_CODECS = nfs_types.PROC_CODECS
