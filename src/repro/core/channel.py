"""The SFS secure channel.

"Clients and read-write servers always communicate over a low-level
secure channel that guarantees secrecy, data integrity, freshness
(including replay prevention), and forward secrecy." (paper 2.1.2)

Mechanics (paper section 3.1.3): traffic is encrypted with ARC4 (20-byte
session keys, key schedule spun once per 128 key bits) and authenticated
with a SHA-1-based MAC re-keyed per message from keystream bytes not used
for encryption.  "The MAC is computed on the length and plaintext
contents of each RPC message.  The length, message, and MAC all get
encrypted."

Each direction has its own key and its own continuously-running streams,
so replayed, reordered, or dropped records desynchronize the cipher state
and fail the MAC.  Failed records are *dropped* (and counted), which
degrades an attack to denial of service — exactly the paper's guarantee
that "attackers can do no worse than delay the file system's operation".

Because a *dropped* record leaves the receiver permanently behind the
sender, the channel also supervises its own health: a burst of
consecutive rejections flips the :attr:`desynchronized` signal, and the
session layer responds by re-running key negotiation and calling
:meth:`rekey` to swap fresh streams in — turning permanent loss back
into mere delay.  The resynchronization handshake itself must work when
the streams are useless, so a reserved plaintext *control record* format
(prefix :data:`CONTROL_PREFIX`) bypasses the crypto entirely; forging
one buys an attacker nothing beyond another denial-of-service lever.
"""

from __future__ import annotations

from typing import Callable

from ..crypto.arc4 import ARC4
from ..crypto.mac import MAC_LEN, SessionMAC
from ..obs.registry import NULL_REGISTRY

_LEN_BYTES = 4

#: Plaintext control records start with this marker.  The first byte is
#: 0xFF, so a control record can never collide with an RPC message: the
#: xid would have to exceed 0xFF000000, far above any xid either side
#: ever assigns.
CONTROL_PREFIX = b"\xffSFS-CTRL\xff"

#: Control payloads of the resynchronization handshake.  The client asks
#: the server to fall back to plaintext for a re-keying exchange; the
#: server acknowledges once it has.  Neither carries authority — the
#: REKEY RPC that follows is what proves session continuity.
RESYNC_REQUEST = b"RESYNC-REQ"
RESYNC_ACK = b"RESYNC-ACK"

#: Consecutive rejected records before the channel reports desync.  One
#: rejection can be a lone tampered record (streams still aligned, only
#: that record lost); two in a row means the streams themselves are bad.
DESYNC_THRESHOLD = 2


def make_control_record(payload: bytes) -> bytes:
    """Frame *payload* as a plaintext control record."""
    return CONTROL_PREFIX + payload


def parse_control_record(record: bytes) -> bytes | None:
    """The control payload, or None if *record* is not a control record.

    Accepts any bytes-like *record* — record routers sit both below the
    channel (raw transport, bytes) and above it (verified plaintext,
    delivered as a zero-copy view).
    """
    if record[:len(CONTROL_PREFIX)] == CONTROL_PREFIX:
        tail = record[len(CONTROL_PREFIX):]
        return tail if tail.__class__ is bytes else bytes(tail)
    return None


class ChannelError(Exception):
    """Raised on misuse (not on attack traffic, which is dropped)."""


class SecureChannel:
    """Wraps a pipe; presents the same pipe interface with crypto inside.

    *send_key* keys the outbound stream and MAC, *recv_key* the inbound
    ones; a client passes (k_CS, k_SC) and a server (k_SC, k_CS).

    ``encrypt=False`` turns the channel into a transparent pass-through —
    the paper's "SFS w/o encryption" configuration used to isolate the
    cost of cryptography in section 4.
    """

    def __init__(self, pipe, send_key: bytes, recv_key: bytes,
                 encrypt: bool = True) -> None:
        self._pipe = pipe
        self._encrypt = encrypt
        self._handler: Callable[[bytes], None] | None = None
        #: Receives control-record payloads (resync handshake).  Control
        #: records never reach the data handler; with no control handler
        #: installed they are counted and dropped like any junk.
        self.control_handler: Callable[[bytes], None] | None = None
        #: Called once when the channel first crosses the desync
        #: threshold (and again after each successful rekey, should the
        #: new streams desynchronize too).
        self.on_desync: Callable[[], None] | None = None
        self.suggested_reply_waiter = getattr(
            pipe, "suggested_reply_waiter", None
        )
        self.suggested_clock = getattr(pipe, "suggested_clock", None)
        self.suggested_metrics = getattr(pipe, "suggested_metrics", None)
        self.suggested_window_depth = getattr(
            pipe, "suggested_window_depth", None
        )
        self.suggested_rtt = getattr(pipe, "suggested_rtt", 0.0)
        self.synchronous_delivery = getattr(
            pipe, "synchronous_delivery", False
        )
        self.metrics = self.suggested_metrics or NULL_REGISTRY
        self._m_sent = self.metrics.counter("channel.records_sent")
        self._m_received = self.metrics.counter("channel.records_received")
        self._m_rejects = self.metrics.counter("channel.mac_reject")
        self._m_desyncs = self.metrics.counter("channel.desyncs")
        self._m_rekeys = self.metrics.counter("channel.rekeys")
        self._m_unhandled = self.metrics.counter("channel.unhandled")
        self.rejected_records = 0
        self.records_sent = 0
        self.records_received = 0
        #: Records dropped because nothing was listening above us.
        self.unhandled_records = 0
        self.consecutive_rejects = 0
        self.rekeys = 0
        self._desync_reported = False
        if encrypt:
            self._init_streams(send_key, recv_key)
        pipe.on_receive(self._on_record)

    @property
    def is_open(self) -> bool:
        """Liveness of the transport underneath the cryptography.

        A server crash closes the link out from under the channel; the
        reconnect engine (and tests) probe this instead of learning
        about the death from a ConnectionError mid-send.
        """
        return getattr(self._pipe, "is_open", True)

    def _init_streams(self, send_key: bytes, recv_key: bytes) -> None:
        self._send_stream = ARC4(send_key)
        self._recv_stream = ARC4(recv_key)
        self._send_mac = SessionMAC(send_key)
        self._recv_mac = SessionMAC(recv_key)

    # --- supervision ---------------------------------------------------------

    @property
    def desynchronized(self) -> bool:
        """True once enough consecutive records failed that the stream
        state itself — not any individual record — must be bad."""
        return self.consecutive_rejects >= DESYNC_THRESHOLD

    def rekey(self, send_key: bytes, recv_key: bytes) -> None:
        """Swap in fresh streams from newly negotiated session keys.

        Both endpoints must rekey from the same negotiation; the old
        stream positions are abandoned, which is the whole point — the
        new streams start aligned no matter how far apart loss pushed
        the old ones.
        """
        if not self._encrypt:
            return
        self._init_streams(send_key, recv_key)
        self.consecutive_rejects = 0
        self._desync_reported = False
        self.rekeys += 1
        self._m_rekeys.inc()

    def attach(self) -> None:
        """(Re-)point the underlying pipe's delivery at this channel.

        Needed when a supervising pipe temporarily took the raw transport
        back (plaintext resync phase) and now restores the channel.
        """
        self._pipe.on_receive(self._on_record)

    def send_control(self, payload: bytes) -> None:
        """Send a plaintext control record, bypassing the streams."""
        self._pipe.send(make_control_record(payload))

    def _reject(self) -> None:
        self.rejected_records += 1
        self._m_rejects.inc()
        self.consecutive_rejects += 1
        if self.desynchronized and not self._desync_reported:
            self._desync_reported = True
            self._m_desyncs.inc()
            if self.on_desync is not None:
                try:
                    self.on_desync()
                except Exception:  # noqa: BLE001 - supervision is advisory
                    pass

    # --- pipe interface ------------------------------------------------------

    def send(self, data: bytes) -> None:
        self.records_sent += 1
        self._m_sent.inc()
        if not self._encrypt:
            self._pipe.send(data)
            return
        layers = self.metrics.layers
        layers.push("crypto")
        try:
            # Seal in one buffer: length‖payload‖MAC assembled once,
            # one encrypt pass over the whole record.  Chained bytes
            # concatenation here cost two extra copies of every payload.
            mac = self._send_mac.compute(data)
            n = len(data)
            body = bytearray(_LEN_BYTES + n + len(mac))
            body[:_LEN_BYTES] = n.to_bytes(_LEN_BYTES, "big")
            body[_LEN_BYTES:_LEN_BYTES + n] = data
            body[_LEN_BYTES + n:] = mac
            record = self._send_stream.encrypt(body)
        finally:
            layers.pop()
        self._pipe.send(record)

    def on_receive(self, handler: Callable[[bytes], None]) -> None:
        self._handler = handler

    def _on_record(self, record: bytes) -> None:
        control = parse_control_record(record)
        if control is not None:
            # Control records are plaintext and unauthenticated by
            # design (they must survive a desynchronized channel); they
            # carry no data-path authority, so routing them to a
            # dedicated handler keeps injected ones away from RPC.
            if self.control_handler is not None:
                self.control_handler(control)
            else:
                self.rejected_records += 1
            return
        if not self._encrypt:
            self._deliver(record)
            return
        layers = self.metrics.layers
        layers.push("crypto")
        try:
            plaintext = None
            body = self._recv_stream.decrypt(record)
            if len(body) < _LEN_BYTES + MAC_LEN:
                # The cipher stream consumed this record's bytes; burn
                # the matching MAC slot so the two receive streams stay
                # in lock-step (they must desynchronize together or not
                # at all).
                self._recv_mac.skip()
            else:
                length = int.from_bytes(body[:_LEN_BYTES], "big")
                if length != len(body) - _LEN_BYTES - MAC_LEN:
                    self._recv_mac.skip()
                else:
                    # Views, not slices: the payload is verified and
                    # delivered without ever being copied out of the
                    # decrypted record (the RPC layer accepts views).
                    view = memoryview(body)
                    candidate = view[_LEN_BYTES : _LEN_BYTES + length]
                    tag = view[_LEN_BYTES + length :]
                    if self._recv_mac.verify(candidate, tag):
                        plaintext = candidate
        finally:
            layers.pop()
        if plaintext is None:
            self._reject()
            return
        self.records_received += 1
        self._m_received.inc()
        self.consecutive_rejects = 0
        self._deliver(plaintext)

    def _deliver(self, plaintext: bytes) -> None:
        if self._handler is None:
            # A verified record with nobody listening (or hostile
            # plaintext-mode traffic) must never unwind the delivery
            # stack: count it and move on.  Decryption already ran, so
            # the streams stay aligned for when a handler appears.
            self.unhandled_records += 1
            self._m_unhandled.inc()
            return
        self._handler(plaintext)
