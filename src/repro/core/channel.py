"""The SFS secure channel.

"Clients and read-write servers always communicate over a low-level
secure channel that guarantees secrecy, data integrity, freshness
(including replay prevention), and forward secrecy." (paper 2.1.2)

Mechanics (paper section 3.1.3): traffic is encrypted with ARC4 (20-byte
session keys, key schedule spun once per 128 key bits) and authenticated
with a SHA-1-based MAC re-keyed per message from keystream bytes not used
for encryption.  "The MAC is computed on the length and plaintext
contents of each RPC message.  The length, message, and MAC all get
encrypted."

Each direction has its own key and its own continuously-running streams,
so replayed, reordered, or dropped records desynchronize the cipher state
and fail the MAC.  Failed records are *dropped* (and counted), which
degrades an attack to denial of service — exactly the paper's guarantee
that "attackers can do no worse than delay the file system's operation".
"""

from __future__ import annotations

from typing import Callable

from ..crypto.arc4 import ARC4
from ..crypto.mac import MAC_LEN, SessionMAC

_LEN_BYTES = 4


class ChannelError(Exception):
    """Raised on misuse (not on attack traffic, which is dropped)."""


class SecureChannel:
    """Wraps a pipe; presents the same pipe interface with crypto inside.

    *send_key* keys the outbound stream and MAC, *recv_key* the inbound
    ones; a client passes (k_CS, k_SC) and a server (k_SC, k_CS).

    ``encrypt=False`` turns the channel into a transparent pass-through —
    the paper's "SFS w/o encryption" configuration used to isolate the
    cost of cryptography in section 4.
    """

    def __init__(self, pipe, send_key: bytes, recv_key: bytes,
                 encrypt: bool = True) -> None:
        self._pipe = pipe
        self._encrypt = encrypt
        self._handler: Callable[[bytes], None] | None = None
        self.suggested_reply_waiter = getattr(
            pipe, "suggested_reply_waiter", None
        )
        self.rejected_records = 0
        self.records_sent = 0
        self.records_received = 0
        if encrypt:
            self._send_stream = ARC4(send_key)
            self._recv_stream = ARC4(recv_key)
            self._send_mac = SessionMAC(send_key)
            self._recv_mac = SessionMAC(recv_key)
        pipe.on_receive(self._on_record)

    # --- pipe interface ------------------------------------------------------

    def send(self, data: bytes) -> None:
        self.records_sent += 1
        if not self._encrypt:
            self._pipe.send(data)
            return
        mac = self._send_mac.compute(data)
        body = len(data).to_bytes(_LEN_BYTES, "big") + data + mac
        self._pipe.send(self._send_stream.encrypt(body))

    def on_receive(self, handler: Callable[[bytes], None]) -> None:
        self._handler = handler

    def _on_record(self, record: bytes) -> None:
        if self._handler is None:
            raise ChannelError("no handler installed above the channel")
        if not self._encrypt:
            self._handler(record)
            return
        body = self._recv_stream.decrypt(record)
        if len(body) < _LEN_BYTES + MAC_LEN:
            self.rejected_records += 1
            return
        length = int.from_bytes(body[:_LEN_BYTES], "big")
        if length != len(body) - _LEN_BYTES - MAC_LEN:
            self.rejected_records += 1
            return
        plaintext = body[_LEN_BYTES : _LEN_BYTES + length]
        tag = body[_LEN_BYTES + length :]
        if not self._recv_mac.verify(plaintext, tag):
            self.rejected_records += 1
            return
        self.records_received += 1
        self._handler(plaintext)
