"""SFS key negotiation (paper figure 3 and section 3.1.1).

The client fetches the server's public key ``K_S`` and checks it against
the HostID in the self-certifying pathname.  To ensure forward secrecy it
generates a short-lived key ``K_C`` (regenerated hourly in SFS; our
clients regenerate per :class:`EphemeralKeyCache` policy), picks two
random key-halves ``k_C1, k_C2`` and encrypts them to ``K_S``; the server
picks ``k_S1, k_S2`` and encrypts them to ``K_C``.  Both sides derive one
session key per direction:

    k_CS = SHA-1("KCS", K_S, k_C1, K_C, k_S1)
    k_SC = SHA-1("KSC", K_S, k_C2, K_C, k_S2)

The client is assured nobody without ``K_S``'s private half can know the
session keys; the server learns nothing about the client ("SFS servers do
not care which clients they talk to, only which users are on those
clients").  SessionID = SHA-1("SessionInfo", k_SC, k_CS) later binds user
authentication to this channel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..crypto.mac import hmac_sha1
from ..crypto.rabin import PrivateKey, PublicKey, RabinError, generate_key
from ..crypto.sha1 import SHA1

KEY_HALF_LEN = 16
EPHEMERAL_KEY_BITS = 640  # short-lived, anonymity-only key


class KeyNegotiationError(Exception):
    """Raised when key negotiation fails (bad key, bad ciphertext)."""


def make_key_halves(rng: random.Random) -> tuple[bytes, bytes]:
    """Two fresh 16-byte key halves."""
    return (
        bytes(rng.getrandbits(8) for _ in range(KEY_HALF_LEN)),
        bytes(rng.getrandbits(8) for _ in range(KEY_HALF_LEN)),
    )


def encrypt_key_halves(
    recipient: PublicKey, half1: bytes, half2: bytes, rng: random.Random
) -> bytes:
    """Seal both key halves to *recipient* in one Rabin encryption."""
    return recipient.encrypt(half1 + half2, rng)


def decrypt_key_halves(key: PrivateKey, ciphertext: bytes) -> tuple[bytes, bytes]:
    """Open sealed key halves; raises KeyNegotiationError on garbage."""
    try:
        plain = key.decrypt(ciphertext)
    except RabinError as exc:
        raise KeyNegotiationError(f"bad key-half ciphertext: {exc}") from None
    if len(plain) != 2 * KEY_HALF_LEN:
        raise KeyNegotiationError("key halves have wrong length")
    return plain[:KEY_HALF_LEN], plain[KEY_HALF_LEN:]


def _derive(tag: bytes, ks: PublicKey, kc: PublicKey,
            client_half: bytes, server_half: bytes) -> bytes:
    h = SHA1()
    h.update(tag)
    h.update(ks.to_bytes())
    h.update(client_half)
    h.update(kc.to_bytes())
    h.update(server_half)
    return h.digest()


@dataclass(frozen=True)
class SessionKeys:
    """The two per-direction 20-byte session keys plus the SessionID."""

    kcs: bytes  # client -> server
    ksc: bytes  # server -> client

    @property
    def session_id(self) -> bytes:
        h = SHA1()
        h.update(b"SessionInfo")
        h.update(self.ksc)
        h.update(self.kcs)
        return h.digest()


def derive_session_keys(
    server_key: PublicKey,
    client_key: PublicKey,
    kc1: bytes,
    kc2: bytes,
    ks1: bytes,
    ks2: bytes,
) -> SessionKeys:
    """Compute k_CS and k_SC exactly as both endpoints do."""
    return SessionKeys(
        kcs=_derive(b"KCS", server_key, client_key, kc1, ks1),
        ksc=_derive(b"KSC", server_key, client_key, kc2, ks2),
    )


def negotiate_client_keys(
    server_key: PublicKey,
    client_key: PrivateKey,
    rng: random.Random,
    exchange: Callable[[bytes, bytes], bytes],
) -> SessionKeys:
    """Run the client side of figure 3 over any exchange mechanism.

    Picks fresh key halves, seals them to *server_key*, and calls
    ``exchange(client_pubkey_bytes, sealed_halves)``, which performs the
    actual round trip (ENCRYPT for a new session, REKEY for channel
    resynchronization) and returns the server's sealed halves.  Both
    callers derive identical keys from identical material, so re-keying
    preserves every property of the original negotiation — including
    forward secrecy, since nothing from the old streams is reused.
    """
    kc1, kc2 = make_key_halves(rng)
    sealed = encrypt_key_halves(server_key, kc1, kc2, rng)
    server_sealed = exchange(client_key.public_key.to_bytes(), sealed)
    ks1, ks2 = decrypt_key_halves(client_key, server_sealed)
    return derive_session_keys(
        server_key, client_key.public_key, kc1, kc2, ks1, ks2
    )


def rekey_auth(session_keys: SessionKeys, client_pubkey: bytes,
               sealed_halves: bytes) -> bytes:
    """The continuity proof carried by a REKEY request.

    HMAC-SHA1 keyed by the current SessionID over the new key material.
    The SessionID never crosses the wire, so only the two endpoints of
    the live session can mint or verify this tag; a network attacker who
    forced a desync cannot splice in a negotiation of their own.
    """
    body = (b"SFS-rekey"
            + len(client_pubkey).to_bytes(4, "big") + client_pubkey
            + sealed_halves)
    return hmac_sha1(session_keys.session_id, body)


class EphemeralKeyCache:
    """Manages the client's short-lived anonymous key ``K_C``.

    "Clients discard and regenerate K_C at regular intervals (every hour
    by default)" — our policy is use-count based since the simulated
    clock only advances during device activity.
    """

    def __init__(self, rng: random.Random, max_uses: int = 64,
                 bits: int = EPHEMERAL_KEY_BITS) -> None:
        self._rng = rng
        self._max_uses = max_uses
        self._bits = bits
        self._key: PrivateKey | None = None
        self._uses = 0

    def current(self) -> PrivateKey:
        """The current ephemeral key, regenerating when worn out."""
        if self._key is None or self._uses >= self._max_uses:
            self._key = generate_key(self._bits, self._rng)
            self._uses = 0
        self._uses += 1
        return self._key
