"""sfsagent — the per-user agent process.

"Every user on an SFS client runs an unprivileged agent program of his
choice, which communicates with the file system using RPC.  The agent
handles authentication of the user to remote servers, prevents the user
from accessing revoked HostIDs, and controls the user's view of the /sfs
directory.  Users can replace their agents at will." (paper section 2.3)

An :class:`Agent` holds the user's private keys and implements three
callbacks the client master invokes:

* :meth:`sign_request` — sign an authentication request (figure 4); the
  agent keeps a full audit trail of every private-key operation.
* :meth:`resolve` — map a non-self-certifying name accessed under /sfs
  to a symlink target, consulting dynamic links and certification paths
  (section 2.4 "Certification paths"); arbitrary resolvers can be
  chained, which is how the external-PKI bridge of section 2.4 plugs in.
* :meth:`check_revoked` — consult revocation directories and the block
  list before the client mounts a HostID (section 2.6).

Certification paths and revocation directories read the file system
*through SFS itself* via an injected ``fs_reader``, realizing the paper's
point that the file namespace doubles as a key certification namespace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol

from ..crypto.rabin import PrivateKey
from ..crypto.sha1 import sha1
from ..rpc.xdr import Record, XdrError
from . import proto
from .pathnames import hostid_to_text
from .revocation import CertificateError, VerifiedRevocation, verify_certificate

#: Resolver plug-in: name -> symlink target (or None to pass).
Resolver = Callable[[str], "str | None"]


class FsReader(Protocol):
    """The slice of the file system the agent reads for key management."""

    def readlink(self, path: str) -> str | None: ...

    def readfile(self, path: str) -> bytes | None: ...


@dataclass
class AuditEntry:
    """One private-key operation the agent performed."""

    operation: str
    detail: str


class AgentRefused(Exception):
    """The agent declined to sign (no keys, or user policy)."""


class Agent:
    """A user's agent: keys, name resolution, revocation policy."""

    def __init__(self, user: str, rng: random.Random,
                 fs_reader: FsReader | None = None) -> None:
        self.user = user
        self._rng = rng
        self._keys: list[PrivateKey] = []
        self._links: dict[str, str] = {}
        self._resolvers: list[Resolver] = []
        self.certpaths: list[str] = []
        self.revocation_dirs: list[str] = []
        self._blocked: set[bytes] = set()
        self._fs_reader = fs_reader
        self.audit_log: list[AuditEntry] = []

    # --- keys ---------------------------------------------------------------

    def add_key(self, key: PrivateKey) -> None:
        """Give the agent a private key to authenticate with."""
        self._keys.append(key)

    @property
    def key_count(self) -> int:
        return len(self._keys)

    def sign_request(self, authinfo_bytes: bytes, seqno: int,
                     key_index: int = 0) -> bytes:
        """Produce an AuthMsg for the client (paper figure 4).

        AuthID = SHA-1(AuthInfo); the agent signs {AuthID, seqno} and
        appends the public key.  *key_index* selects among the agent's
        keys so the client can retry with different credentials.
        """
        if key_index >= len(self._keys):
            raise AgentRefused(
                f"agent for {self.user} has no key #{key_index}"
            )
        key = self._keys[key_index]
        authid = sha1(authinfo_bytes)
        signed_req = proto.SignedAuthReq.pack(
            proto.SignedAuthReq.make(
                req_type="SignedAuthReq", authid=authid, seqno=seqno
            )
        )
        self.audit_log.append(
            AuditEntry("sign", f"authid={authid.hex()[:12]} seqno={seqno}")
        )
        return proto.AuthMsg.pack(
            proto.AuthMsg.make(
                signed_req=signed_req,
                public_key=key.public_key.to_bytes(),
                signature=key.sign(signed_req),
            )
        )

    def sign_requests(self, authinfo_bytes: bytes, seqnos,
                      key_index: int = 0) -> list[bytes]:
        """Batch variant of :meth:`sign_request` for connection bursts.

        A client reconnecting many sessions at once (failover storms,
        mount fan-out) needs one AuthMsg per fresh sequence number; the
        AuthID and the key are shared across the burst, so they are
        computed once and only the per-seqno SignedAuthReq is signed in
        the loop.  One audit entry covers the whole batch — the trail
        records the burst, not a thousand identical lines.
        """
        if key_index >= len(self._keys):
            raise AgentRefused(
                f"agent for {self.user} has no key #{key_index}"
            )
        key = self._keys[key_index]
        authid = sha1(authinfo_bytes)
        public_key_bytes = key.public_key.to_bytes()
        messages: list[bytes] = []
        for seqno in seqnos:
            signed_req = proto.SignedAuthReq.pack(
                proto.SignedAuthReq.make(
                    req_type="SignedAuthReq", authid=authid, seqno=seqno
                )
            )
            messages.append(proto.AuthMsg.pack(
                proto.AuthMsg.make(
                    signed_req=signed_req,
                    public_key=public_key_bytes,
                    signature=key.sign(signed_req),
                )
            ))
        self.audit_log.append(AuditEntry(
            "sign-batch",
            f"authid={authid.hex()[:12]} count={len(messages)}",
        ))
        return messages

    # --- /sfs name resolution -------------------------------------------------

    def add_link(self, name: str, target: str) -> None:
        """Create a symlink in /sfs visible only to this agent's user."""
        self._links[name] = target

    def remove_link(self, name: str) -> None:
        self._links.pop(name, None)

    def add_resolver(self, resolver: Resolver) -> None:
        """Chain an arbitrary resolution algorithm (e.g. an external-PKI
        bridge that builds self-certifying paths from SSL certificates)."""
        self._resolvers.append(resolver)

    @property
    def links(self) -> dict[str, str]:
        return dict(self._links)

    def resolve(self, name: str) -> str | None:
        """Map a non-self-certifying /sfs name to a symlink target.

        Order: explicit agent links, then each directory on the
        certification path (looking for a same-named symlink), then any
        chained resolvers.
        """
        if name in self._links:
            return self._links[name]
        if self._fs_reader is not None:
            for directory in self.certpaths:
                target = self._fs_reader.readlink(f"{directory}/{name}")
                if target is not None:
                    return target
        for resolver in self._resolvers:
            target = resolver(name)
            if target is not None:
                return target
        return None

    # --- revocation ------------------------------------------------------------

    def block_hostid(self, hostid: bytes) -> None:
        """HostID blocking: affects only this agent's user (section 2.6)."""
        self._blocked.add(hostid)

    def unblock_hostid(self, hostid: bytes) -> None:
        self._blocked.discard(hostid)

    def check_revoked(self, location: str,
                      hostid: bytes) -> tuple[int, Record | None]:
        """Consult policy before the client mounts (Location, HostID).

        Returns one of the proto.REVCHECK_* discriminants, with the
        certificate when one was found.  Revocation directories contain
        files named by base-32 HostID, each holding a marshaled
        SignedCertificate (the paper's Verisign example).
        """
        if hostid in self._blocked:
            return proto.REVCHECK_BLOCKED, None
        if self._fs_reader is not None:
            name = hostid_to_text(hostid)
            for directory in self.revocation_dirs:
                blob = self._fs_reader.readfile(f"{directory}/{name}")
                if blob is None:
                    continue
                cert = self._parse_certificate(blob, hostid)
                if cert is not None:
                    return proto.REVCHECK_REVOKED, cert
        return proto.REVCHECK_CLEAR, None

    @staticmethod
    def _parse_certificate(blob: bytes, hostid: bytes) -> Record | None:
        """Validate a stored certificate against the HostID it names.

        Certificates are self-authenticating, so a bad or mismatched blob
        in a revocation directory is simply ignored rather than trusted.
        """
        try:
            cert = proto.SignedCertificate.unpack(blob)
            verified: VerifiedRevocation = verify_certificate(cert)
        except (XdrError, CertificateError):
            return None
        if verified.hostid != hostid or not verified.is_revocation:
            return None
        return cert
