"""Client-side caching with leases and invalidation callbacks.

"The SFS read-write protocol, while virtually identical to NFS 3, adds
enhanced attribute and access caching to reduce the number of NFS
GETATTR and ACCESS RPCs sent over the wire.  We changed the NFS protocol
in two ways to extend the lifetime of cache entries.  First, every file
attribute structure returned by the server has a timeout field or lease.
Second, the server can call back to the client to invalidate entries
before the lease expires.  The server does not wait for invalidations to
be acknowledged; consistency does not need to be perfect, just better
than NFS 3 on which SFS is implemented." (paper section 3.3)

We grant one lease duration per connection (negotiated at CONNECT) and
key entries by file handle; an invalidation callback clears every entry
for that handle.  The cache measures its own effectiveness (hits/misses)
for the caching ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..obs.registry import NULL_REGISTRY
from ..sim.clock import Clock


@dataclass
class _Entry:
    value: Any
    expires: float


class LeaseCache:
    """A lease-scoped cache keyed by (handle, extra-key) pairs."""

    def __init__(self, clock: Clock, lease_duration: float,
                 enabled: bool = True, metrics=None,
                 name: str = "cache") -> None:
        self._clock = clock
        self._lease = lease_duration
        self.enabled = enabled
        self._entries: dict[bytes, dict[Any, _Entry]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = registry.counter(f"cache.{name}.hits")
        self._m_misses = registry.counter(f"cache.{name}.misses")
        self._m_invalidations = registry.counter(
            f"cache.{name}.invalidations"
        )

    def get(self, handle: bytes, key: Any = None) -> Any | None:
        if not self.enabled:
            return None
        by_key = self._entries.get(handle)
        if by_key is None:
            self.misses += 1
            self._m_misses.inc()
            return None
        entry = by_key.get(key)
        if entry is None or entry.expires < self._clock.now:
            self.misses += 1
            self._m_misses.inc()
            return None
        self.hits += 1
        self._m_hits.inc()
        return entry.value

    def put(self, handle: bytes, value: Any, key: Any = None) -> None:
        if not self.enabled:
            return
        self._entries.setdefault(handle, {})[key] = _Entry(
            value, self._clock.now + self._lease
        )

    def invalidate(self, handle: bytes) -> None:
        """Drop all entries for *handle* (server callback or local write)."""
        if self._entries.pop(handle, None) is not None:
            self.invalidations += 1
            self._m_invalidations.inc()

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class ClientCaches:
    """The three caches an SFS read-write client keeps per mount."""

    attrs: LeaseCache
    access: LeaseCache
    lookups: LeaseCache

    @classmethod
    def create(cls, clock: Clock, lease_duration: float,
               enabled: bool = True, metrics=None) -> "ClientCaches":
        return cls(
            attrs=LeaseCache(clock, lease_duration, enabled,
                             metrics=metrics, name="attrs"),
            access=LeaseCache(clock, lease_duration, enabled,
                              metrics=metrics, name="access"),
            lookups=LeaseCache(clock, lease_duration, enabled,
                               metrics=metrics, name="lookups"),
        )

    def invalidate(self, handle: bytes) -> None:
        self.attrs.invalidate(handle)
        self.access.invalidate(handle)
        self.lookups.invalidate(handle)

    def stats(self) -> dict[str, int]:
        return {
            "attr_hits": self.attrs.hits,
            "attr_misses": self.attrs.misses,
            "access_hits": self.access.hits,
            "access_misses": self.access.misses,
            "lookup_hits": self.lookups.hits,
            "lookup_misses": self.lookups.misses,
        }
