"""Split private keys: agents without direct key knowledge.

"The agent need not have direct knowledge of any private keys.  To
protect private keys from compromise, for instance, one could split them
between an agent and a trusted authserver using proactive security.  An
attacker would need to compromise both the agent and authserver to steal
a split secret key."  (paper section 2.5.1)

This module implements the two-party arrangement the paper envisages:

* at enrolment, the private key is XOR-split into two shares; the agent
  keeps one, a *key-half server* keeps the other (sealed under a fresh
  transport key so the blob is useless alone);
* :class:`SplitKeyAgent` satisfies the agent signing interface — for
  each request it fetches the peer share, reconstitutes the key *for the
  duration of one signature*, signs, and discards the plaintext key;
* compromising either share alone yields no information about the key
  (a one-time pad over the serialized key).

(The "proactive" refresh of real proactive security — re-randomizing the
shares periodically so old stolen shares expire — is provided by
:meth:`SplitKeyPair.refresh`.)
"""

from __future__ import annotations

import random

from ..crypto.rabin import PrivateKey
from ..crypto.sha1 import sha1
from ..crypto.util import xor_bytes
from .agent import AgentRefused, AuditEntry
from . import proto


class SplitKeyError(Exception):
    """Share mismatch or refusal."""


class SplitKeyPair:
    """The two shares of one private key."""

    def __init__(self, agent_share: bytes, server_share: bytes,
                 key_len: int) -> None:
        self.agent_share = agent_share
        self.server_share = server_share
        self._key_len = key_len

    @classmethod
    def split(cls, key: PrivateKey, rng: random.Random) -> "SplitKeyPair":
        raw = key.to_bytes()
        pad = bytes(rng.getrandbits(8) for _ in range(len(raw)))
        return cls(pad, xor_bytes(raw, pad), len(raw))

    def combine(self) -> PrivateKey:
        if len(self.agent_share) != len(self.server_share):
            raise SplitKeyError("share length mismatch")
        return PrivateKey.from_bytes(
            xor_bytes(self.agent_share, self.server_share)
        )

    def refresh(self, rng: random.Random) -> None:
        """Proactive re-randomization: both shares change, the key does
        not; shares stolen before a refresh become worthless."""
        delta = bytes(rng.getrandbits(8) for _ in range(self._key_len))
        self.agent_share = xor_bytes(self.agent_share, delta)
        self.server_share = xor_bytes(self.server_share, delta)


class KeyHalfServer:
    """The authserver-side custodian of server shares.

    Shares are indexed by the SHA-1 of the agent's share, so the server
    cannot be tricked into handing a share to the wrong agent — and the
    lookup tag itself reveals nothing about the agent's share beyond
    20 hash bytes.
    """

    def __init__(self) -> None:
        self._shares: dict[bytes, bytes] = {}
        self.requests = 0

    @staticmethod
    def _tag(agent_share: bytes) -> bytes:
        return sha1(b"split-key-tag" + agent_share)

    def store(self, pair: SplitKeyPair) -> None:
        self._shares[self._tag(pair.agent_share)] = pair.server_share

    def fetch(self, agent_share: bytes) -> bytes:
        self.requests += 1
        tag = self._tag(agent_share)
        share = self._shares.get(tag)
        if share is None:
            raise SplitKeyError("no share stored for this agent")
        return share

    def drop(self, agent_share: bytes) -> None:
        """Revoke: after this, the agent's share alone signs nothing."""
        self._shares.pop(self._tag(agent_share), None)


class SplitKeyAgent:
    """An agent-compatible signer that never stores the whole key.

    Implements the same ``sign_request`` interface as
    :class:`repro.core.agent.Agent`, so the client master can use it
    unchanged.  Resolution/revocation hooks delegate to an inner agent
    if provided.
    """

    def __init__(self, user: str, agent_share: bytes,
                 half_server: KeyHalfServer, inner=None) -> None:
        self.user = user
        self._share = agent_share
        self._half_server = half_server
        self._inner = inner
        self.audit_log: list[AuditEntry] = []

    @property
    def key_count(self) -> int:
        return 1

    def sign_request(self, authinfo_bytes: bytes, seqno: int,
                     key_index: int = 0) -> bytes:
        if key_index != 0:
            raise AgentRefused("split-key agent holds exactly one key")
        try:
            server_share = self._half_server.fetch(self._share)
        except SplitKeyError as exc:
            raise AgentRefused(str(exc)) from None
        key = PrivateKey.from_bytes(xor_bytes(self._share, server_share))
        authid = sha1(authinfo_bytes)
        signed = proto.SignedAuthReq.pack(proto.SignedAuthReq.make(
            req_type="SignedAuthReq", authid=authid, seqno=seqno,
        ))
        blob = proto.AuthMsg.pack(proto.AuthMsg.make(
            signed_req=signed,
            public_key=key.public_key.to_bytes(),
            signature=key.sign(signed),
        ))
        del key  # the reconstituted key lives for one signature only
        self.audit_log.append(
            AuditEntry("sign-split", f"authid={authid.hex()[:12]} seqno={seqno}")
        )
        return blob

    def resolve(self, name: str):
        return self._inner.resolve(name) if self._inner is not None else None

    def check_revoked(self, location: str, hostid: bytes):
        if self._inner is not None:
            return self._inner.check_revoked(location, hostid)
        return proto.REVCHECK_CLEAR, None
