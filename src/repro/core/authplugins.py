"""Pluggable user-authentication protocols.

"The agent and authserver pass messages to each other through SFS using
a (possibly multi-round) protocol opaque to the file system software
itself. ... Thus, one can add new user authentication protocols to SFS
without modifying the actual file system software." (paper section 2.5)

The file server relays envelope-wrapped messages between agent and
authserver; the authserver dispatches on the envelope's protocol name to
an :class:`AuthProtocol` plugin.  Two plugins live here:

* the implicit "pubkey" protocol (the figure-4 signed request — handled
  natively by :meth:`AuthServer.validate`, no envelope needed);
* :class:`HmacPasswordProtocol`, a *two-round* challenge-response over
  an eksblowfish-hardened password, exercising the multi-round relay:

      agent -> server:  {user}                     (round 1)
      server -> agent:  challenge nonce            (LOGIN_MORE)
      agent -> server:  {user, HMAC(K, challenge‖authid‖seqno)}
      server -> agent:  credentials                (LOGIN_OK)

  where K = eksblowfish(password, salt=user).  The MAC binds the
  session's AuthID and the round's sequence number, so — like the
  figure-4 protocol — transcripts cannot be replayed across sessions.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..crypto.eksblowfish import harden_password
from ..crypto.mac import hmac_sha1
from ..crypto.util import constant_time_eq
from ..rpc.xdr import FixedOpaque, String, Struct, XdrError
from . import proto
from .agent import AgentRefused
from .authserv import AuthServer

#: Outcomes an AuthProtocol step may produce.
OK = "ok"
MORE = "more"
FAIL = "fail"

HMAC_PROTOCOL = "hmac-password"
_HMAC_COST = 2

HmacRound1 = Struct("HmacRound1", [("user", String(64))])
HmacRound2 = Struct(
    "HmacRound2", [("user", String(64)), ("mac", FixedOpaque(20))]
)


class AuthProtocol(Protocol):
    """Server-side plugin interface: one step of an opaque protocol.

    Returns ``(OK, UserRecord)``, ``(MORE, challenge_bytes)``, or
    ``(FAIL, None)``.  *state* is a per-connection dict the plugin may
    use for continuation data.
    """

    name: str

    def step(self, body: bytes, authid: bytes, seqno: int,
             state: dict) -> tuple[str, object]: ...


def wrap_envelope(protocol: str, body: bytes) -> bytes:
    return proto.AuthEnvelope.pack(proto.AuthEnvelope.make(
        magic=proto.AUTH_ENVELOPE_MAGIC, protocol=protocol, body=body,
    ))


def unwrap_envelope(blob: bytes) -> tuple[str, bytes] | None:
    """Parse an envelope; None if this is a legacy (pubkey) message."""
    try:
        envelope = proto.AuthEnvelope.unpack(blob)
    except XdrError:
        return None
    if envelope.magic != proto.AUTH_ENVELOPE_MAGIC:
        return None
    return envelope.protocol, envelope.body


# --- the server-side plugin -------------------------------------------------


class HmacPasswordProtocol:
    """Challenge-response passwords, server side."""

    name = HMAC_PROTOCOL

    def __init__(self, authserver: AuthServer, rng: random.Random) -> None:
        self._authserver = authserver
        self._rng = rng
        self._secrets: dict[str, bytes] = {}

    def enroll(self, user: str, password: bytes) -> None:
        """Store the hardened secret for *user* (who must have an
        account in the authserver's databases)."""
        self._secrets[user] = harden_password(
            password, user.encode(), _HMAC_COST
        )

    def step(self, body: bytes, authid: bytes, seqno: int,
             state: dict) -> tuple[str, object]:
        try:
            round2 = proto_try(HmacRound2, body)
            if round2 is not None:
                return self._finish(round2, authid, seqno, state)
            round1 = HmacRound1.unpack(body)
        except XdrError:
            return FAIL, None
        if round1.user not in self._secrets:
            self._authserver.security_log.append(
                f"hmac-password: unknown user {round1.user!r}"
            )
            return FAIL, None
        challenge = bytes(self._rng.getrandbits(8) for _ in range(20))
        state["challenge"] = challenge
        state["user"] = round1.user
        return MORE, challenge

    def _finish(self, round2, authid: bytes, seqno: int,
                state: dict) -> tuple[str, object]:
        challenge = state.pop("challenge", None)
        expected_user = state.pop("user", None)
        if challenge is None or round2.user != expected_user:
            return FAIL, None
        secret = self._secrets.get(round2.user)
        if secret is None:
            return FAIL, None
        expected = hmac_sha1(
            secret, challenge + authid + seqno.to_bytes(4, "big")
        )
        if not constant_time_eq(round2.mac, expected):
            self._authserver.security_log.append(
                f"hmac-password: bad response for {round2.user!r}"
            )
            return FAIL, None
        for db in self._authserver.databases:
            record = db.lookup_user(round2.user)
            if record is not None:
                return OK, record
        return FAIL, None


def proto_try(codec, blob: bytes):
    """Unpack or None (round discrimination by shape)."""
    try:
        return codec.unpack(blob)
    except XdrError:
        return None


# --- the client-side agent ----------------------------------------------------


class HmacPasswordAgent:
    """An agent speaking the challenge-response protocol.

    Implements the same surface the client master expects of any agent
    (``sign_request`` / ``continue_auth`` / ``resolve`` /
    ``check_revoked``) — proving that "users can replace their agents at
    will" extends to entirely different authentication protocols.
    """

    def __init__(self, user: str, password: bytes) -> None:
        self.user = user
        self._secret = harden_password(password, user.encode(), _HMAC_COST)
        self.rounds = 0

    @property
    def key_count(self) -> int:
        return 1

    def sign_request(self, authinfo_bytes: bytes, seqno: int,
                     key_index: int = 0) -> bytes:
        if key_index != 0:
            raise AgentRefused("hmac-password agent has one identity")
        self.rounds += 1
        return wrap_envelope(
            HMAC_PROTOCOL,
            HmacRound1.pack(HmacRound1.make(user=self.user)),
        )

    def continue_auth(self, challenge: bytes, authinfo_bytes: bytes,
                      seqno: int) -> bytes:
        from ..crypto.sha1 import sha1

        self.rounds += 1
        authid = sha1(authinfo_bytes)
        mac = hmac_sha1(
            self._secret, challenge + authid + seqno.to_bytes(4, "big")
        )
        return wrap_envelope(
            HMAC_PROTOCOL,
            HmacRound2.pack(HmacRound2.make(user=self.user, mac=mac)),
        )

    def resolve(self, name: str):
        return None

    def check_revoked(self, location: str, hostid: bytes):
        return proto.REVCHECK_CLEAR, None
