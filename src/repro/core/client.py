"""sfscd — the SFS client master and its subordinate daemons.

"On the client side, a client master process, sfscd, communicates with
agents, handles revocation and forwarding pointers, and acts as an
'automounter' for remote file systems.  It never actually handles
requests for files on remote servers, however.  Instead, it connects to a
server, verifies the public key, and passes the connected file descriptor
to a subordinate daemon selected by the type and version of the server."
(paper section 3.2)

Layout of this module:

* :class:`ServerSession` — one secure connection to one server: CONNECT,
  HostID verification, figure-3 key negotiation, LOGIN, and the inbound
  lease-invalidation callback program.
* :class:`MountedRemoteFs` — a subordinate read-write client daemon: it
  serves an NFS3 program directly to the kernel for one remote file
  system (its own mount point and device number), relays calls over the
  session tagged with per-user authnos, and maintains the lease caches.
* :class:`ReadOnlyMount` — the subordinate read-only client: verifies
  everything against the signed root.
* :class:`SfsClientDaemon` — the client master: owns the synthetic /sfs
  directory (per-agent views, on-the-fly symlinks, revoked links),
  consults agents, dials servers, and asks the NFS mounter to graft new
  mounts into the kernel.

The client is deliberately free of administrative-realm state: which
servers exist is discovered purely from the self-certifying names users
access (paper section 2.1.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from ..crypto.rabin import PublicKey, RabinError
from ..crypto.sha1 import sha1
from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types
from ..obs.registry import NULL_REGISTRY
from ..rpc.peer import (
    CallContext,
    Program,
    RetryPolicy,
    RpcBusy,
    RpcError,
    RpcPeer,
    RpcTimeout,
    RpcTransportDown,
)
from ..rpc.rpcmsg import AUTH_SYS, AuthSys, OpaqueAuth, RpcMsgError
from ..rpc.xdr import Record, VOID
from ..sim.clock import Clock
from ..sim.network import LinkSide
from ..sim.sched import Sleep
from . import handlemap, proto
from .agent import Agent, AgentRefused
from .backoff import BackoffPolicy
from .cache import ClientCaches
from .channel import RESYNC_ACK, RESYNC_REQUEST, SecureChannel
from .keyneg import (
    EphemeralKeyCache,
    KeyNegotiationError,
    negotiate_client_keys,
    rekey_auth,
)
from .pathnames import (
    PathnameError,
    SelfCertifyingPath,
    parse_mount_name,
    parse_path,
)
from .readonly import ReadOnlyClient, ReadOnlyError, RO_DIR, RO_LNK, RO_REG
from .revocation import (
    CertificateError,
    REVOKED_LINK_TARGET,
    verify_certificate,
)
from .server import SwitchablePipe, make_sfs_cred, nfs_failure_shape

#: Dials (location, service) -> LinkSide.  Provided by the world model
#: (or a real TCP dialer); raises ConnectionError if unreachable.
Connector = Callable[[str, int], LinkSide]


class MountError(Exception):
    """The self-certifying pathname could not be mounted."""


class SecurityError(MountError):
    """The server failed authentication (wrong key for the HostID)."""


# ---------------------------------------------------------------------------
# Server sessions
# ---------------------------------------------------------------------------


#: How many reset-and-rekey rounds one resync() attempt makes before
#: giving up (each round's own records can be lost too).
_RESYNC_ROUNDS = 3

#: How many forwarding pointers one reconnect() will chase before
#: declaring a redirect loop.  Rollover chains longer than this are
#: indistinguishable from a server bouncing us around forever.
_RETARGET_HOPS = 4


class ServerSession:
    """A verified secure channel to one export on one server.

    The session also *supervises* that channel: the peer's retry policy
    retransmits lost records, and when retransmission alone does not
    help (the streams themselves desynchronized), :meth:`resync` runs
    the plaintext control handshake and an authenticated REKEY to swap
    fresh streams in — the paper's "no worse than delay" guarantee made
    operational.
    """

    def __init__(self, peer: RpcPeer, pipe: SwitchablePipe,
                 path: SelfCertifyingPath, servinfo: Record,
                 session_keys, encrypt: bool,
                 channel: SecureChannel | None = None,
                 server_public_key: PublicKey | None = None,
                 ephemeral_keys: EphemeralKeyCache | None = None,
                 rng: random.Random | None = None) -> None:
        self.peer = peer
        self.pipe = pipe
        self.path = path
        self.servinfo = servinfo
        self.session_keys = session_keys
        self.encrypt = encrypt
        self.channel = channel
        self.server_public_key = server_public_key
        self.ephemeral_keys = ephemeral_keys
        self.rng = rng
        self.auth_seqno = 0
        self.invalidate_handler: Callable[[bytes], None] | None = None
        #: Called after each successful rekey (mounts flush lease caches
        #: here; authnos survive because the rekey is authenticated).
        self.on_rekey: Callable[[], None] | None = None
        self.rekeys = 0
        self.resyncs_failed = 0
        # Recovery counters, visible in exported snapshots: attempts,
        # successful rekeys, exhausted resyncs (see PROTOCOLS.md §10).
        self.metrics = peer.metrics
        self._m_resyncs = self.metrics.counter("session.resyncs")
        self._m_rekeys = self.metrics.counter("session.rekeys")
        self._m_resyncs_failed = self.metrics.counter("session.resyncs_failed")
        self._resyncing = False
        self._resync_acked = False
        # Reconnect engine (crash recovery): armed by enable_reconnect()
        # once the daemon has mounted this session.  Resync repairs a
        # desynchronized channel on a *live* link; reconnect replaces a
        # *dead* link entirely — redial, re-verify the HostID, renegotiate
        # keys — after the server crashed or restarted.
        self.service = proto.SERVICE_FILESERVER
        self.on_reconnect: Callable[[], None] | None = None
        #: Called with (old_path, new_path) when a reconnect followed a
        #: forwarding pointer to a *new* HostID — a server key rollover
        #: caught mid-session.  Fires before on_reconnect so the daemon
        #: can re-home the mount under the new name first.
        self.on_retarget: Callable[
            [SelfCertifyingPath, SelfCertifyingPath], None
        ] | None = None
        self.reconnects = 0
        self.retargets = 0
        self.backoff_sleeps = 0
        self._connector: Connector | None = None
        self._clock: Clock | None = None
        self._reconnect_policy: BackoffPolicy | None = None
        self._reconnecting = False
        self._m_reconnects = self.metrics.counter("session.reconnects")
        self._m_retargets = self.metrics.counter("session.retargets")
        self._m_backoff_sleeps = self.metrics.counter("session.backoff_sleeps")
        self._m_reconnects_failed = self.metrics.counter(
            "session.reconnects_failed"
        )
        #: Backpressure: SERVER_BUSY replies (the server's admission
        #: control rejecting at a full queue) are retried under this
        #: policy rather than surfaced — see PROTOCOLS.md §12.
        self.busy_policy = BackoffPolicy()
        self.busy_retries = 0
        self._m_busy_retries = self.metrics.counter("client.busy_retries")
        if self.session_keys is not None and self.channel is not None:
            pipe.control_handler = self._on_control
            peer.recovery_hook = self.resync
        self._register_callbacks()

    # -- establishment --

    @classmethod
    def connect(cls, link: LinkSide, path: SelfCertifyingPath,
                ephemeral_keys: EphemeralKeyCache, rng: random.Random,
                service: int = proto.SERVICE_FILESERVER,
                encrypt: bool = True,
                verify_hostid: bool = True) -> "ServerSession | Record":
        """Dial, verify the HostID, and negotiate session keys.

        Returns a ServerSession, or the SignedCertificate record when the
        server answers with a revocation / forwarding pointer (the caller
        verifies and acts on it).
        """
        pipe = SwitchablePipe(link)
        peer = RpcPeer(pipe, f"sfscd->{path.location}")
        # Handshake records are as droppable as any others; plain
        # retransmission is always safe here (the server's duplicate
        # cache replays CONNECT/ENCRYPT replies rather than re-running
        # them) and needs no channel recovery, there being no channel.
        peer.retry_policy = RetryPolicy()
        # The "currently unused extensions string" of the paper's sfssd
        # dispatch is exactly where a dialect toggle like the
        # no-encryption evaluation mode belongs.
        extensions = [] if encrypt else ["noenc"]
        disc, body = peer.call(
            proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION, proto.PROC_CONNECT,
            proto.ConnectArgs,
            proto.ConnectArgs.make(
                service=service, location=path.location,
                hostid=path.hostid, extensions=extensions,
            ),
            proto.ConnectRes,
        )
        if disc in (proto.CONNECT_REVOKED, proto.CONNECT_REDIRECT):
            return body
        if disc != proto.CONNECT_OK:
            raise MountError(f"server has no file system {path.mount_name}")
        servinfo = body
        # The security heart of SFS: the key the server presented must
        # hash (with the Location we asked for) to the HostID in the
        # pathname.  No certificate, no realm configuration — just SHA-1.
        try:
            public_key = PublicKey.from_bytes(servinfo.public_key)
        except RabinError as exc:
            raise SecurityError(f"server sent a malformed key: {exc}") from None
        if verify_hostid and not path.matches_key(public_key):
            raise SecurityError(
                f"public key does not match HostID for {path.mount_name}"
            )
        if servinfo.dialect == proto.DIALECT_RO:
            # Read-only dialect: no key negotiation, content is signed.
            # The rng still rides along: the busy-retry backoff path is
            # jittered and refuses to run without a randomness source.
            return cls(peer, pipe, path, servinfo, None, encrypt=False,
                       rng=rng)
        # Figure 3 steps 3-4.
        client_key = ephemeral_keys.current()

        def exchange(pubkey_bytes: bytes, sealed: bytes) -> bytes:
            reply = peer.call(
                proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION,
                proto.PROC_ENCRYPT,
                proto.EncryptArgs,
                proto.EncryptArgs.make(
                    client_pubkey=pubkey_bytes,
                    encrypted_keyhalves=sealed,
                ),
                proto.EncryptRes,
            )
            return reply.encrypted_keyhalves

        try:
            session_keys = negotiate_client_keys(
                public_key, client_key, rng, exchange
            )
        except KeyNegotiationError as exc:
            raise SecurityError(str(exc)) from None
        channel = SecureChannel(
            pipe.raw, send_key=session_keys.kcs,
            recv_key=session_keys.ksc, encrypt=encrypt,
        )
        pipe.switch_now(channel)
        return cls(peer, pipe, path, servinfo, session_keys, encrypt,
                   channel=channel, server_public_key=public_key,
                   ephemeral_keys=ephemeral_keys, rng=rng)

    # -- channel supervision and recovery --

    def _on_control(self, payload: bytes) -> None:
        if payload == RESYNC_ACK:
            self._resync_acked = True
        # Anything else is injected garbage; ignore.

    def resync(self) -> bool:
        """Recover a desynchronized secure channel on the same link.

        Asks the server (in plaintext control records, the only framing
        guaranteed to survive broken streams) to fall back for a
        re-keying exchange, re-runs figure 3 through the REKEY procedure
        — authenticated under the old SessionID, so an attacker cannot
        substitute a session of their own — and swaps the fresh streams
        into both the channel and the pipe.  Returns True on success.

        Installed as the peer's ``recovery_hook``; the guard keeps the
        REKEY call's own retries from recursing into another resync.
        """
        if (self.session_keys is None or self.channel is None
                or self.ephemeral_keys is None or self._resyncing):
            return False
        self._resyncing = True
        self._m_resyncs.inc()
        try:
            for _ in range(_RESYNC_ROUNDS):
                if self._resync_round():
                    self.rekeys += 1
                    self._m_rekeys.inc()
                    if self.on_rekey is not None:
                        try:
                            self.on_rekey()
                        except Exception:  # noqa: BLE001 - advisory
                            pass
                    return True
            self.resyncs_failed += 1
            self._m_resyncs_failed.inc()
            return False
        finally:
            self._resyncing = False
            if self.pipe.lower is self.pipe.raw:
                # A failed resync must never leave the session speaking
                # plaintext: reinstall the (possibly still broken)
                # channel so retransmitted data records stay encrypted
                # and an unrecovered desync surfaces as a timeout — the
                # delay an attacker could always cause — rather than as
                # a silent downgrade.
                self.pipe.switch_now(self.channel)

    def _resync_round(self) -> bool:
        self._resync_acked = False
        self.pipe.reset_to_plaintext()
        try:
            self.pipe.send_control(RESYNC_REQUEST)
        except ConnectionError:
            # The server died mid-resync (or the link is gone).  This
            # round cannot succeed; the caller's remaining rounds will
            # fail the same way and the error surfaces as a transport
            # timeout, which is what triggers reconnect().
            return False
        if not self._resync_acked and self.peer.reply_waiter is not None:
            # Asynchronous transports need a pump for the ACK to land.
            try:
                self.peer.reply_waiter()
            except Exception:  # noqa: BLE001 - counts as a failed round
                return False
        if not self._resync_acked:
            return False  # request or ack lost; next round retries
        old_keys = self.session_keys

        def exchange(pubkey_bytes: bytes, sealed: bytes) -> bytes:
            disc, body = self.peer.call(
                proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION,
                proto.PROC_REKEY,
                proto.RekeyArgs,
                proto.RekeyArgs.make(
                    client_pubkey=pubkey_bytes,
                    encrypted_keyhalves=sealed,
                    auth=rekey_auth(old_keys, pubkey_bytes, sealed),
                ),
                proto.RekeyRes,
            )
            if disc != proto.REKEY_OK:
                raise KeyNegotiationError("server denied re-keying")
            return body.encrypted_keyhalves

        try:
            new_keys = negotiate_client_keys(
                self.server_public_key, self.ephemeral_keys.current(),
                self.rng, exchange,
            )
        except (RpcError, KeyNegotiationError):
            return False
        self.channel.rekey(new_keys.kcs, new_keys.ksc)
        self.pipe.switch_now(self.channel)
        self.session_keys = new_keys
        return True

    # -- crash recovery: failover to a fresh connection --

    def enable_reconnect(self, connector: Connector, clock: Clock,
                         policy: BackoffPolicy | None = None) -> None:
        """Arm the reconnect engine for this session.

        The daemon calls this once the mount exists; sessions that were
        never mounted (or read-only sessions) stay un-armed and surface
        transport failure to their caller instead.
        """
        self._connector = connector
        self._clock = clock
        self._reconnect_policy = policy if policy is not None \
            else BackoffPolicy()

    def reconnect(self) -> bool:
        """Replace a dead connection with a freshly negotiated one.

        Redials with exponential backoff, re-runs CONNECT — which
        re-verifies that the key the server presents still hashes to the
        HostID in the pathname, the *only* check SFS ever needs, so a
        machine that restarts with the right private key resumes service
        and an impostor raises SecurityError — renegotiates session keys
        and swaps everything into this same object, keeping every
        mount's reference to the session valid.  Returns True on
        success; SecurityError propagates and is never retried.
        """
        if (self._connector is None or self._clock is None
                or self.session_keys is None or self.ephemeral_keys is None
                or self._reconnecting):
            return False
        old_path = self.path
        self._reconnecting = True
        try:
            fresh = self._redial()
        finally:
            self._reconnecting = False
        if fresh is None:
            self._m_reconnects_failed.inc()
            return False
        self._adopt(fresh)
        self.reconnects += 1
        self._m_reconnects.inc()
        if self.path.hostid != old_path.hostid:
            # The redial chased a forwarding pointer: the server rolled
            # its key and this session now speaks to the new HostID.
            # Tell the daemon *before* on_reconnect so the mount is
            # re-homed under the new name before caches are flushed.
            self.retargets += 1
            self._m_retargets.inc()
            if self.on_retarget is not None:
                try:
                    self.on_retarget(old_path, self.path)
                except Exception:  # noqa: BLE001 - advisory
                    pass
        if self.on_reconnect is not None:
            try:
                self.on_reconnect()
            except Exception:  # noqa: BLE001 - advisory
                pass
        return True

    def _redial(self) -> "ServerSession | None":
        assert self._reconnect_policy is not None
        hops = 0
        for delay in self._reconnect_policy.delays(self.rng):
            if delay:
                self.backoff_sleeps += 1
                self._m_backoff_sleeps.inc()
            # Advancing the clock is what lets the simulated world make
            # progress while we wait: a restart scheduled via
            # Clock.call_at fires inside this sleep (a zero advance
            # still fires anything already due).
            self._clock.advance(delay)
            try:
                link = self._connector(self.path.location, self.service)
            except (ConnectionError, OSError):
                continue  # still down; back off and redial
            try:
                outcome = ServerSession.connect(
                    link, self.path, self.ephemeral_keys, self.rng,
                    service=self.service, encrypt=self.encrypt,
                )
            except SecurityError:
                raise  # wrong key for the HostID: an impostor, never retry
            except (RpcTimeout, MountError):
                close = getattr(link, "close", None)
                if close is not None:
                    close()
                continue
            if not isinstance(outcome, ServerSession):
                # A revocation certificate or forwarding pointer: the
                # name we crashed with is gone.  A verified pointer
                # means the server rolled its key — retarget and keep
                # redialing under the *new* self-certifying pathname
                # (whose HostID connect() will verify as usual).  A
                # revocation — or anything unverifiable — is terminal.
                if hops >= _RETARGET_HOPS:
                    raise SecurityError(
                        f"redirect loop redialing {self.path.mount_name}: "
                        f"{hops} forwarding pointers and still no server"
                    )
                self.path = self._follow_pointer(outcome)
                hops += 1
                continue
            if outcome.session_keys is None:
                # A dialect downgrade (read-only answer to a read-write
                # redial) is not the session we crashed with.
                raise SecurityError(
                    f"server at {self.path.location} no longer offers the "
                    f"read-write session it crashed with"
                )
            return outcome
        return None

    def _follow_pointer(self, cert: Record) -> SelfCertifyingPath:
        """Verify a redial-time certificate; returns the new path.

        Self-authenticating, like everything else in SFS: the embedded
        key must verify the signature *and* hash to the HostID we were
        dialing — otherwise anyone could redirect our mount.  Raises
        SecurityError for forgeries, revocations, and unparseable
        redirect targets.
        """
        try:
            verified = verify_certificate(cert)
        except CertificateError as exc:
            raise SecurityError(
                f"unverifiable certificate redialing "
                f"{self.path.mount_name}: {exc}"
            ) from None
        if verified.hostid != self.path.hostid:
            raise SecurityError(
                f"certificate for the wrong HostID redialing "
                f"{self.path.mount_name}"
            )
        if verified.is_revocation:
            raise SecurityError(
                f"{self.path.mount_name} has been revoked"
            )
        try:
            new_path = parse_path(verified.redirect)
        except PathnameError as exc:
            raise SecurityError(
                f"forwarding pointer for {self.path.mount_name} has an "
                f"unusable target: {exc}"
            ) from None
        return SelfCertifyingPath(new_path.location, new_path.hostid)

    def _adopt(self, fresh: "ServerSession") -> None:
        """Take over *fresh*'s connection in place.

        The fresh session was built by connect() as a throwaway carrier;
        mounts hold references to *self*, so the new peer/pipe/channel
        move here and all supervision hooks are rebound to this object.
        """
        # After a plain reconnect the server must present the key we
        # crashed with; after a retarget, the key behind the *new*
        # HostID.  Both collapse to the one SFS check: the presented
        # key hashes to the path we are now bound to (connect() already
        # verified this; the assert guards the binding staying intact).
        assert fresh.server_public_key is not None \
            and self.path.matches_key(fresh.server_public_key), \
            "HostID verification let a different key through"
        # The retransmission schedule is session configuration, not
        # transport state: a tuned policy (e.g. widened for a queued
        # server's service delay) must survive failover, or the fresh
        # peer's default timer fires mid-backlog and triggers spurious
        # channel resyncs.
        fresh.peer.retry_policy = self.peer.retry_policy
        self.peer = fresh.peer
        self.pipe = fresh.pipe
        self.servinfo = fresh.servinfo
        self.session_keys = fresh.session_keys
        self.channel = fresh.channel
        self.server_public_key = fresh.server_public_key
        # Authentication state died with the server's volatile tables.
        self.auth_seqno = 0
        self._resyncing = False
        self._resync_acked = False
        self.pipe.control_handler = self._on_control
        self.peer.recovery_hook = self.resync
        self._register_callbacks()

    def _register_callbacks(self) -> None:
        program = Program("sfs-cb", proto.SFS_CB_PROGRAM, proto.SFS_VERSION)

        def invalidate(args: Record, ctx: CallContext) -> None:
            if self.invalidate_handler is not None:
                self.invalidate_handler(args.handle)

        program.add_proc(proto.PROC_INVALIDATE, "INVALIDATE",
                         proto.InvalidateArgs, VOID, invalidate)
        self.peer.register(program)

    # -- the figure-4 client side --

    def authinfo_bytes(self) -> bytes:
        assert self.session_keys is not None
        return proto.AuthInfo.pack(
            proto.AuthInfo.make(
                auth_type="AuthInfo", service="FS",
                location=self.path.location, hostid=self.path.hostid,
                sessionid=self.session_keys.session_id,
            )
        )

    def login(self, agent: Agent, max_attempts: int = 3,
              max_rounds: int = 8) -> int:
        """Authenticate *agent*'s user; returns an authno (0 = anonymous).

        The agent may hold several keys; the client retries with each
        ("a single agent can support several protocols by simply trying
        them each in succession") and falls back to anonymous access
        after *max_attempts* failures.  Agents implementing multi-round
        protocols expose ``continue_auth``; LOGIN_MORE replies loop back
        through it with fresh sequence numbers — the content stays
        opaque to this client code.
        """
        info = self.authinfo_bytes()
        for key_index in range(min(max_attempts, max(1, agent.key_count))):
            self.auth_seqno += 1
            seqno = self.auth_seqno
            try:
                authmsg = agent.sign_request(info, seqno, key_index)
            except AgentRefused:
                break
            for _round in range(max_rounds):
                disc, body = self.peer.call(
                    proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
                    proto.LoginArgs,
                    proto.LoginArgs.make(seqno=seqno, authmsg=authmsg),
                    proto.LoginRes,
                )
                if disc == proto.LOGIN_OK:
                    return body.authno
                if disc != proto.LOGIN_MORE:
                    break
                continue_auth = getattr(agent, "continue_auth", None)
                if continue_auth is None:
                    break
                self.auth_seqno += 1
                seqno = self.auth_seqno
                authmsg = continue_auth(body, info, seqno)
        return 0

    def login_task(self, agent: Agent, max_attempts: int = 3,
                   max_rounds: int = 8):
        """Task variant of :meth:`login` (``yield from`` it).

        Login storms run thousands of these concurrently; each suspends
        while its reply is in flight, and SERVER_BUSY replies from the
        admission queue are retried through the session's backoff policy
        as cooperative sleeps.  Each busy retry signs a *fresh* sequence
        number: sibling logins on the same session keep advancing the
        server's replay window while this one backs off, so resending
        the original seqno after a long wait would be self-inflicted
        replay (denied as stale).  A backoff that exhausts raises
        :class:`RpcBusy` to the caller — the login was shed.
        """
        info = self.authinfo_bytes()
        for key_index in range(min(max_attempts, max(1, agent.key_count))):
            try:
                seqno, authmsg = self._sign_login(agent, info, key_index)
            except AgentRefused:
                break
            resign = lambda: self._sign_login(agent, info, key_index)  # noqa: E731
            for _round in range(max_rounds):
                disc, body = yield from self._login_call_task(
                    seqno, authmsg, resign
                )
                if disc == proto.LOGIN_OK:
                    return body.authno
                if disc != proto.LOGIN_MORE:
                    break
                continue_auth = getattr(agent, "continue_auth", None)
                if continue_auth is None:
                    break
                self.auth_seqno += 1
                seqno = self.auth_seqno
                authmsg = continue_auth(body, info, seqno)
                # Multi-round protocol messages are not re-signable from
                # here; a busy retry resends the round verbatim.
                resign = None
        return 0

    def _sign_login(self, agent: Agent, info: bytes,
                    key_index: int) -> tuple[int, bytes]:
        self.auth_seqno += 1
        return self.auth_seqno, agent.sign_request(
            info, self.auth_seqno, key_index
        )

    def _login_call_task(self, seqno: int, authmsg: bytes, resign=None):
        delays = None
        while True:
            try:
                result = yield from self.peer.call_task(
                    proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_LOGIN,
                    proto.LoginArgs,
                    proto.LoginArgs.make(seqno=seqno, authmsg=authmsg),
                    proto.LoginRes,
                )
                return result
            except RpcBusy:
                if delays is None:
                    delays = self.busy_policy.delays(self.rng)
                    next(delays)  # discard the "first attempt" zero
                delay = next(delays, None)
                if delay is None:
                    raise
                self.busy_retries += 1
                self._m_busy_retries.inc()
                if delay:
                    yield Sleep(delay)
                if resign is not None:
                    seqno, authmsg = resign()

    # -- relaying --

    def call_nfs(self, proc: int, args: Record, authno: int):
        arg_codec, res_codec = proto.NFS_PROC_CODECS[proc]
        delays = None
        while True:
            try:
                return self.peer.call(
                    proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proc,
                    arg_codec, args, res_codec, cred=make_sfs_cred(authno),
                )
            except RpcBusy:
                if delays is None:
                    delays = self.busy_policy.delays(self.rng)
                    next(delays)  # discard the "first attempt" zero
                delay = next(delays, None)
                if delay is None:
                    raise  # backoff exhausted; the server stayed full
                self.busy_retries += 1
                self._m_busy_retries.inc()
                clock = self.peer.backoff_clock
                if clock is not None and delay:
                    clock.advance(delay)

    def call_nfs_task(self, proc: int, args: Record, authno: int):
        """Task variant of :meth:`call_nfs` (``yield from`` it).

        Suspends instead of pumping while the reply is in flight, so
        many client tasks share the simulation; SERVER_BUSY replies are
        retried through the same backoff policy, with the wait spent as
        a cooperative :class:`~repro.sim.sched.Sleep` rather than a
        clock charge — other clients run during it, which is exactly
        the contention being simulated.
        """
        arg_codec, res_codec = proto.NFS_PROC_CODECS[proc]
        delays = None
        while True:
            try:
                result = yield from self.peer.call_task(
                    proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proc,
                    arg_codec, args, res_codec, cred=make_sfs_cred(authno),
                )
                return result
            except RpcBusy:
                if delays is None:
                    delays = self.busy_policy.delays(self.rng)
                    next(delays)  # discard the "first attempt" zero
                delay = next(delays, None)
                if delay is None:
                    raise
                self.busy_retries += 1
                self._m_busy_retries.inc()
                if delay:
                    yield Sleep(delay)


# ---------------------------------------------------------------------------
# Subordinate read-write client daemon
# ---------------------------------------------------------------------------


def _rewrite_fsids(value: Any, fsid: int) -> None:
    """Rewrite every fattr3's fsid in a result tree to the local device.

    "by assigning each file system its own device number, this scheme
    prevents a malicious server from tricking the pwd command into
    printing an incorrect path."
    """
    if isinstance(value, Record):
        fields = vars(value)
        if "fsid" in fields and "fileid" in fields:
            value.fsid = fsid
        for item in fields.values():
            _rewrite_fsids(item, fsid)
    elif isinstance(value, list):
        for item in value:
            _rewrite_fsids(item, fsid)
    elif isinstance(value, tuple):
        for item in value[1:] if value and isinstance(value[0], int) else value:
            _rewrite_fsids(item, fsid)


#: Procedures whose success changes file/directory contents as seen by
#: this client — a readahead buffer crossing one of these is stale.
_MUTATING_PROCS = frozenset({
    nfs_const.NFSPROC3_SETATTR, nfs_const.NFSPROC3_CREATE,
    nfs_const.NFSPROC3_MKDIR, nfs_const.NFSPROC3_SYMLINK,
    nfs_const.NFSPROC3_REMOVE, nfs_const.NFSPROC3_RMDIR,
    nfs_const.NFSPROC3_RENAME, nfs_const.NFSPROC3_LINK,
    nfs_const.NFSPROC3_WRITEV,
})


class MountedRemoteFs:
    """One remote read-write file system, served to the kernel as NFS.

    Performs per-user authentication lazily: the first request from a
    local uid triggers a LOGIN through that user's agent; failures fall
    back to anonymous access, exactly as the paper describes.
    """

    def __init__(self, daemon: "SfsClientDaemon", session: ServerSession,
                 fsid: int) -> None:
        self.daemon = daemon
        self.session = session
        self.fsid = fsid
        self.caches = ClientCaches.create(
            daemon.clock, float(session.servinfo.lease_duration),
            enabled=daemon.caching, metrics=daemon.metrics,
        )
        self._authnos: dict[int, int] = {}
        self.program = self._build_program()
        self.rpcs_relayed = 0
        self.replayed_calls = 0
        self.stale_handles = 0
        self._m_relayed = daemon.metrics.counter("client.rpcs_relayed")
        self._m_replayed = daemon.metrics.counter("client.replayed_calls")
        self._m_stale = daemon.metrics.counter("client.stale_handles")
        # Readahead state (active when daemon.pipeline_depth > 1):
        # handle -> {offset: (data, eof)} chunks prefetched via READV,
        # plus the sequential-access detector (next expected offset and
        # current streak length per handle).
        self._ra_buf: dict[bytes, dict[int, tuple[bytes, bool]]] = {}
        self._ra_attrs: dict[bytes, Record | None] = {}
        self._seq_next: dict[bytes, int] = {}
        self._seq_streak: dict[bytes, int] = {}
        # Write-gathering state: handle -> [[offset, bytearray], ...]
        # coalesced dirty ranges not yet sent to the server.
        self._gather_segs: dict[bytes, list[list]] = {}
        m = daemon.metrics
        self._m_ra_batches = m.counter("client.readahead.batches")
        self._m_ra_chunks = m.counter("client.readahead.chunks")
        self._m_ra_hits = m.counter("client.readahead.hits")
        self._m_ra_misses = m.counter("client.readahead.misses")
        self._m_ra_discarded = m.counter("client.readahead.discarded")
        self._m_gather_writes = m.counter("client.gather.writes")
        self._m_gather_flushes = m.counter("client.gather.flushes")
        self._m_gather_segments = m.counter("client.gather.segments")
        self._m_gather_bytes = m.counter("client.gather.bytes")
        session.invalidate_handler = self._on_invalidate
        session.on_rekey = self._after_rekey
        session.on_reconnect = self._after_reconnect

    def _on_invalidate(self, handle: bytes) -> None:
        """Lease invalidation: drop cached state *and* readahead data —
        another client wrote the file, so prefetched chunks are stale.
        Gathered (unsent) local writes survive: they are this client's
        own pending data, flushed at the next barrier."""
        self.caches.invalidate(handle)
        self._ra_discard(handle)

    def _after_rekey(self) -> None:
        """A rekey means records were lost — possibly including lease
        invalidation callbacks — so cached leases can't be trusted.
        Authnos survive: the rekey proved session continuity."""
        self.caches.attrs.clear()
        self.caches.access.clear()
        self.caches.lookups.clear()
        self._ra_buf.clear()
        self._ra_attrs.clear()

    def _after_reconnect(self) -> None:
        """The server restarted: every piece of its volatile state is
        gone.  Leases were never granted to this (new) connection, so
        the lease caches are garbage; authnos index a login table that
        no longer exists, so each uid lazily re-authenticates through
        its agent on next use.  File handles, by contrast, survive —
        the handle key derives from the server's durable private key."""
        self._authnos.clear()
        self.caches.attrs.clear()
        self.caches.access.clear()
        self.caches.lookups.clear()
        self._ra_buf.clear()
        self._ra_attrs.clear()

    # -- authentication --

    def _authno_for(self, ctx: CallContext) -> int:
        uid = _uid_from_authsys(ctx.cred)
        if uid in self._authnos:
            return self._authnos[uid]
        agent = self.daemon.agents.get(uid)
        authno = self.session.login(agent) if agent is not None else 0
        self._authnos[uid] = authno
        return authno

    def logout_uid(self, uid: int) -> None:
        self._authnos.pop(uid, None)

    # -- program --

    def _build_program(self) -> Program:
        program = Program("sfs-mount", nfs_const.NFS3_PROGRAM,
                          nfs_const.NFS3_VERSION)
        for proc, (arg_codec, res_codec) in proto.NFS_PROC_CODECS.items():
            if proc == nfs_const.NFSPROC3_NULL:
                continue
            program.add_proc(proc, nfs_const.PROC_NAMES[proc],
                             arg_codec, res_codec, self._make_handler(proc))
        program._sfs_mount = self  # back-pointer for tools (sfsls/libsfs)
        return program

    def _make_handler(self, proc: int):
        def handler(args: Record, ctx: CallContext):
            return self._handle(proc, args, ctx)
        return handler

    def _handle(self, proc: int, args: Record, ctx: CallContext):
        if self.daemon.pipeline_depth > 1:
            reply = self._pipeline_intercept(proc, args, ctx,
                                             self.daemon.pipeline_depth)
            if reply is not None:
                return reply
        cached = self._try_cache(proc, args, ctx)
        if cached is not None:
            return cached
        return self._relay(proc, args, ctx)

    def _relay(self, proc: int, args: Record, ctx: CallContext):
        try:
            authno = self._authno_for(ctx)
            status, body = self.session.call_nfs(proc, args, authno)
        except RpcTransportDown:
            # Transport dead (server crash) — fail over, then replay.
            # Plain RpcTimeout is *not* failover material: a live but
            # desynchronized link is the resync engine's job, and
            # redialing around it would mask the failure.  The restarted
            # server's duplicate-request cache is empty, so this one
            # replay is at-least-once, not at-most-once: if the crash
            # fell between execution and the reply, a non-idempotent
            # call runs twice (PROTOCOLS.md §11).
            if not self.session.reconnect():
                raise
            self.replayed_calls += 1
            self._m_replayed.inc()
            authno = self._authno_for(ctx)
            status, body = self.session.call_nfs(proc, args, authno)
        self.rpcs_relayed += 1
        self._m_relayed.inc()
        if status in (nfs_const.NFS3ERR_STALE, nfs_const.NFS3ERR_BADHANDLE):
            # A handle the kernel cached stopped resolving (the file
            # went away, or its generation moved on).  Count it and
            # drop whatever leases mention the offending handles.
            self.stale_handles += 1
            self._m_stale.inc()
            for handle in _handles_in_args(proc, args):
                self.caches.invalidate(handle)
        _rewrite_fsids(body, self.fsid)
        self._absorb(proc, args, ctx, status, body)
        return status, body

    # -- readahead and write-gathering (pipeline_depth > 1) --

    def _pipeline_intercept(self, proc: int, args: Record, ctx: CallContext,
                            depth: int):
        """Serve READ from the readahead buffer / absorb UNSTABLE WRITE
        into the gather buffer; returns a reply, or None to fall through
        to the normal cache-then-relay path."""
        if proc == nfs_const.NFSPROC3_READ:
            if args.file in self._gather_segs:
                # Read-your-writes: dirty gathered data must reach the
                # server before we read the file back.
                status = self._flush_gather(args.file, ctx)
                if status is not None:
                    return status, Record(file_attributes=None)
            return self._read_with_readahead(args, ctx, depth)
        if proc == nfs_const.NFSPROC3_WRITE:
            self._ra_discard(args.file)
            if args.stable == nfs_const.UNSTABLE:
                return self._gather_write(args, ctx, depth)
            status = self._flush_gather(args.file, ctx)
            if status is not None:
                return status, Record(
                    file_wcc=nfs_types.WccData.make(before=None, after=None)
                )
            return None
        # Any other procedure touching a handle with gathered dirty data
        # (COMMIT, SETATTR, GETATTR, ...) is a write-behind barrier:
        # flush first so the server-side view the reply reflects
        # includes our writes.  Mutating ops also discard readahead.
        for handle in _handles_in_args(proc, args):
            if proc in _MUTATING_PROCS:
                self._ra_discard(handle)
            if handle in self._gather_segs:
                status = self._flush_gather(handle, ctx)
                if status is not None:
                    return status, nfs_failure_shape(proc)
        return None

    def _ra_discard(self, handle: bytes) -> None:
        if self._ra_buf.pop(handle, None) is not None:
            self._m_ra_discarded.inc()
        self._ra_attrs.pop(handle, None)
        self._seq_next.pop(handle, None)
        self._seq_streak.pop(handle, None)

    def _read_with_readahead(self, args: Record, ctx: CallContext,
                             depth: int):
        handle, offset, count = args.file, args.offset, args.count
        buf = self._ra_buf.get(handle)
        if buf is not None:
            entry = buf.pop(offset, None)
            if entry is not None:
                data, eof = entry
                if len(data) <= count:
                    self._m_ra_hits.inc()
                    self._seq_next[handle] = offset + len(data)
                    return nfs_const.NFS3_OK, Record(
                        file_attributes=self._ra_attrs.get(handle),
                        count=len(data), eof=eof, data=data,
                    )
                self._m_ra_discarded.inc()
        # Buffer miss: update the sequential detector, and batch the
        # next window via READV once a run of two chunks is seen.
        self._m_ra_misses.inc()
        sequential = self._seq_next.get(handle) == offset
        self._seq_next[handle] = offset + count
        streak = self._seq_streak.get(handle, 0) + 1 if sequential else 0
        self._seq_streak[handle] = streak
        if streak < 1 or count <= 0:
            return None  # plain READ relay
        segments = [Record(offset=offset + i * count, count=count)
                    for i in range(depth)]
        status, body = self._relay(
            nfs_const.NFSPROC3_READV,
            Record(file=handle, segments=segments), ctx,
        )
        if status != nfs_const.NFS3_OK:
            # Fall back to a plain READ so the error surfaces with the
            # reply shape the kernel asked for.
            return None
        self._m_ra_batches.inc()
        self._ra_attrs[handle] = body.file_attributes
        buf = self._ra_buf.setdefault(handle, {})
        for seg_args, seg in zip(segments[1:], body.segments[1:]):
            buf[seg_args.offset] = (seg.data, seg.eof)
            self._m_ra_chunks.inc()
            if seg.eof:
                break
        first = body.segments[0]
        self._seq_next[handle] = offset + first.count
        return nfs_const.NFS3_OK, Record(
            file_attributes=body.file_attributes,
            count=first.count, eof=first.eof, data=first.data,
        )

    def _gather_write(self, args: Record, ctx: CallContext, depth: int):
        handle = args.file
        data = args.data[: args.count]
        segs = self._gather_segs.setdefault(handle, [])
        if segs and segs[-1][0] + len(segs[-1][1]) == args.offset:
            segs[-1][1] += data
        else:
            segs.append([args.offset, bytearray(data)])
        self._m_gather_writes.inc()
        # Local attrs (size, mtime) are stale until the flush lands.
        self.caches.invalidate(handle)
        total = sum(len(chunk) for _, chunk in segs)
        if len(segs) >= depth or total >= depth * 65536:
            status = self._flush_gather(handle, ctx)
            if status is not None:
                return status, Record(
                    file_wcc=nfs_types.WccData.make(before=None, after=None)
                )
        # Synthetic immediate OK: UNSTABLE data is volatile by contract
        # until COMMIT, which is a flush barrier (PROTOCOLS.md §17).
        return nfs_const.NFS3_OK, Record(
            file_wcc=nfs_types.WccData.make(before=None, after=None),
            count=len(data), committed=nfs_const.UNSTABLE,
            verf=b"\x00" * 8,
        )

    def _flush_gather(self, handle: bytes, ctx: CallContext):
        """Send gathered dirty ranges as one WRITEV.  Returns None on
        success (or nothing to flush); a non-OK NFS status on failure —
        the caller shapes the error for whatever op hit the barrier."""
        segs = self._gather_segs.pop(handle, None)
        if not segs:
            return None
        self._m_gather_flushes.inc()
        self._m_gather_segments.inc(len(segs))
        self._m_gather_bytes.inc(sum(len(chunk) for _, chunk in segs))
        status, _body = self._relay(
            nfs_const.NFSPROC3_WRITEV,
            Record(
                file=handle, stable=nfs_const.UNSTABLE,
                segments=[Record(offset=offset, data=bytes(chunk))
                          for offset, chunk in segs],
            ),
            ctx,
        )
        return None if status == nfs_const.NFS3_OK else status

    # -- caching --

    def _try_cache(self, proc: int, args: Record, ctx: CallContext):
        if proc == nfs_const.NFSPROC3_GETATTR:
            attrs = self.caches.attrs.get(args.object)
            if attrs is not None:
                return nfs_const.NFS3_OK, Record(obj_attributes=attrs)
        elif proc == nfs_const.NFSPROC3_ACCESS:
            uid = _uid_from_authsys(ctx.cred)
            entry = self.caches.access.get(args.object, (uid, args.access))
            if entry is not None:
                attrs = self.caches.attrs.get(args.object)
                return nfs_const.NFS3_OK, Record(
                    obj_attributes=attrs, access=entry
                )
        elif proc == nfs_const.NFSPROC3_LOOKUP:
            entry = self.caches.lookups.get(args.what.dir, args.what.name)
            if entry is not None:
                handle, attrs = entry
                return nfs_const.NFS3_OK, Record(
                    object=handle,
                    obj_attributes=attrs,
                    dir_attributes=self.caches.attrs.get(args.what.dir),
                )
        return None

    def _absorb(self, proc: int, args: Record, ctx: CallContext,
                status: int, body: Record) -> None:
        """Update caches from a reply; invalidate what we mutated."""
        if status != nfs_const.NFS3_OK:
            return
        caches = self.caches
        if proc == nfs_const.NFSPROC3_GETATTR:
            caches.attrs.put(args.object, body.obj_attributes)
        elif proc == nfs_const.NFSPROC3_LOOKUP:
            if body.obj_attributes is not None:
                caches.attrs.put(body.object, body.obj_attributes)
                caches.lookups.put(
                    args.what.dir, (body.object, body.obj_attributes),
                    args.what.name,
                )
            if body.dir_attributes is not None:
                caches.attrs.put(args.what.dir, body.dir_attributes)
        elif proc == nfs_const.NFSPROC3_ACCESS:
            uid = _uid_from_authsys(ctx.cred)
            caches.access.put(args.object, body.access, (uid, args.access))
            if body.obj_attributes is not None:
                caches.attrs.put(args.object, body.obj_attributes)
        elif proc == nfs_const.NFSPROC3_READ:
            if body.file_attributes is not None:
                caches.attrs.put(args.file, body.file_attributes)
        elif proc == nfs_const.NFSPROC3_READV:
            if body.file_attributes is not None:
                caches.attrs.put(args.file, body.file_attributes)
        elif proc in (nfs_const.NFSPROC3_WRITE, nfs_const.NFSPROC3_WRITEV):
            caches.invalidate(args.file)
            if body.file_wcc.after is not None:
                caches.attrs.put(args.file, body.file_wcc.after)
        elif proc == nfs_const.NFSPROC3_SETATTR:
            caches.invalidate(args.object)
            if body.obj_wcc.after is not None:
                caches.attrs.put(args.object, body.obj_wcc.after)
        elif proc in (nfs_const.NFSPROC3_CREATE, nfs_const.NFSPROC3_MKDIR,
                      nfs_const.NFSPROC3_SYMLINK):
            caches.invalidate(args.where.dir)
            if body.obj is not None and body.obj_attributes is not None:
                caches.attrs.put(body.obj, body.obj_attributes)
            if body.dir_wcc.after is not None:
                caches.attrs.put(args.where.dir, body.dir_wcc.after)
        elif proc in (nfs_const.NFSPROC3_REMOVE, nfs_const.NFSPROC3_RMDIR):
            caches.invalidate(args.object.dir)
            if body.dir_wcc.after is not None:
                caches.attrs.put(args.object.dir, body.dir_wcc.after)
        elif proc == nfs_const.NFSPROC3_RENAME:
            caches.invalidate(args.from_.dir)
            caches.invalidate(args.to.dir)
        elif proc == nfs_const.NFSPROC3_LINK:
            caches.invalidate(args.file)
            caches.invalidate(args.link.dir)
        elif proc == nfs_const.NFSPROC3_READDIRPLUS:
            for entry in body.entries:
                if entry.name_handle is not None and entry.name_attributes is not None:
                    caches.attrs.put(entry.name_handle, entry.name_attributes)

def _handles_in_args(proc: int, args: Record) -> list[bytes]:
    """Collect every file handle a request record carries."""
    found: list[bytes] = []

    def collect(handle: bytes) -> bytes:
        found.append(handle)
        return handle

    handlemap.translate_args(proc, args, collect)
    return found


def _uid_from_authsys(cred: OpaqueAuth) -> int:
    if cred.flavor != AUTH_SYS:
        return 0xFFFE
    try:
        return AuthSys.from_auth(cred).uid
    except RpcMsgError:
        return 0xFFFE


# ---------------------------------------------------------------------------
# Subordinate read-only client daemon
# ---------------------------------------------------------------------------


class ReadOnlyMount:
    """Serves a verified read-only file system to the kernel as NFS.

    Handles are the 20-byte content digests themselves — self-verifying
    names all the way down.

    The transport is a pair of fetch callbacks: a single session's RPC
    stubs (:meth:`from_session`, the classic one-server mount) or a
    :class:`~repro.fleet.replicas.ReplicaSet`'s latency-ranked,
    tamper-demoting fetchers (the fleet's untrusted mirror tier).
    Verification lives in :class:`ReadOnlyClient` either way — where
    the bytes came from never changes what is accepted.
    """

    def __init__(self, daemon: "SfsClientDaemon", path: SelfCertifyingPath,
                 fetch_root, fetch_data, fsid: int) -> None:
        self.daemon = daemon
        self.fsid = fsid
        self.client = ReadOnlyClient(path, fetch_root, fetch_data,
                                     metrics=daemon.metrics)
        self.program = self._build_program()

    @classmethod
    def from_session(cls, daemon: "SfsClientDaemon", session: ServerSession,
                     fsid: int) -> "ReadOnlyMount":
        """The one-server transport: both callbacks on *session*'s peer."""
        store_peer = session.peer

        def fetch_root() -> Record:
            res = store_peer.call(
                proto.SFS_RO_PROGRAM, proto.SFS_VERSION, proto.PROC_GETROOT,
                VOID, None, proto.GetRootRes,
            )
            res.public_key = session.servinfo.public_key
            return res

        def fetch_data(digest: bytes) -> bytes | None:
            disc, body = store_peer.call(
                proto.SFS_RO_PROGRAM, proto.SFS_VERSION, proto.PROC_GETDATA,
                proto.GetDataArgs, proto.GetDataArgs.make(digest=digest),
                proto.GetDataRes,
            )
            return body if disc == proto.GETDATA_OK else None

        return cls(daemon, session.path, fetch_root, fetch_data, fsid)

    def root_handle(self) -> bytes:
        return self.client.root_digest

    def _build_program(self) -> Program:
        program = Program("sfs-ro-mount", nfs_const.NFS3_PROGRAM,
                          nfs_const.NFS3_VERSION)
        codecs = proto.NFS_PROC_CODECS
        program.add_proc(nfs_const.NFSPROC3_GETATTR, "GETATTR",
                         *codecs[nfs_const.NFSPROC3_GETATTR], self._getattr)
        program.add_proc(nfs_const.NFSPROC3_LOOKUP, "LOOKUP",
                         *codecs[nfs_const.NFSPROC3_LOOKUP], self._lookup)
        program.add_proc(nfs_const.NFSPROC3_ACCESS, "ACCESS",
                         *codecs[nfs_const.NFSPROC3_ACCESS], self._access)
        program.add_proc(nfs_const.NFSPROC3_READLINK, "READLINK",
                         *codecs[nfs_const.NFSPROC3_READLINK], self._readlink)
        program.add_proc(nfs_const.NFSPROC3_READ, "READ",
                         *codecs[nfs_const.NFSPROC3_READ], self._read)
        program.add_proc(nfs_const.NFSPROC3_READDIR, "READDIR",
                         *codecs[nfs_const.NFSPROC3_READDIR], self._readdir)
        program.add_proc(nfs_const.NFSPROC3_FSINFO, "FSINFO",
                         *codecs[nfs_const.NFSPROC3_FSINFO], self._fsinfo)
        for proc in (nfs_const.NFSPROC3_SETATTR, nfs_const.NFSPROC3_WRITE,
                     nfs_const.NFSPROC3_CREATE, nfs_const.NFSPROC3_MKDIR,
                     nfs_const.NFSPROC3_SYMLINK, nfs_const.NFSPROC3_REMOVE,
                     nfs_const.NFSPROC3_RMDIR, nfs_const.NFSPROC3_RENAME,
                     nfs_const.NFSPROC3_LINK):
            program.add_proc(proc, nfs_const.PROC_NAMES[proc],
                             *codecs[proc], self._readonly_reject(proc))
        return program

    def _readonly_reject(self, proc: int):
        from .server import nfs_failure_shape

        def handler(args: Record, ctx: CallContext):
            return nfs_const.NFS3ERR_ROFS, nfs_failure_shape(proc)

        return handler

    def _node(self, digest: bytes):
        try:
            return self.client.node(digest)
        except ReadOnlyError:
            return None

    def _fattr(self, digest: bytes) -> Record | None:
        node = self._node(digest)
        if node is None:
            return None
        kind, body = node
        fileid = int.from_bytes(digest[:8], "big") >> 1
        if kind == RO_REG:
            ftype, mode, size = nfs_const.NF3REG, body.mode & 0o555, body.size
        elif kind == RO_DIR:
            ftype, mode, size = nfs_const.NF3DIR, body.mode & 0o555, 512
        else:
            ftype, mode, size = nfs_const.NF3LNK, 0o777, len(body.target)
        zero_time = nfs_types.NfsTime.make(seconds=0, nseconds=0)
        return nfs_types.Fattr.make(
            type=ftype, mode=mode, nlink=1, uid=0, gid=0,
            size=size, used=size,
            rdev=nfs_types.SpecData.make(major=0, minor=0),
            fsid=self.fsid, fileid=fileid,
            atime=zero_time, mtime=zero_time, ctime=zero_time,
        )

    def _getattr(self, args: Record, ctx: CallContext):
        attrs = self._fattr(args.object)
        if attrs is None:
            return nfs_const.NFS3ERR_STALE, None
        return nfs_const.NFS3_OK, Record(obj_attributes=attrs)

    def _lookup(self, args: Record, ctx: CallContext):
        try:
            child = self.client.lookup(args.what.dir, args.what.name)
        except ReadOnlyError:
            return nfs_const.NFS3ERR_NOENT, Record(
                dir_attributes=self._fattr(args.what.dir)
            )
        return nfs_const.NFS3_OK, Record(
            object=child,
            obj_attributes=self._fattr(child),
            dir_attributes=self._fattr(args.what.dir),
        )

    def _access(self, args: Record, ctx: CallContext):
        granted = args.access & (nfs_const.ACCESS3_READ
                                 | nfs_const.ACCESS3_LOOKUP
                                 | nfs_const.ACCESS3_EXECUTE)
        return nfs_const.NFS3_OK, Record(
            obj_attributes=self._fattr(args.object), access=granted
        )

    def _readlink(self, args: Record, ctx: CallContext):
        try:
            target = self.client.readlink(args.symlink)
        except ReadOnlyError:
            return nfs_const.NFS3ERR_INVAL, Record(symlink_attributes=None)
        return nfs_const.NFS3_OK, Record(
            symlink_attributes=self._fattr(args.symlink), data=target
        )

    def _read(self, args: Record, ctx: CallContext):
        try:
            data = self.client.read_file(args.file, args.offset, args.count)
            kind, body = self.client.node(args.file)
        except ReadOnlyError:
            return nfs_const.NFS3ERR_IO, Record(file_attributes=None)
        eof = args.offset + len(data) >= body.size
        return nfs_const.NFS3_OK, Record(
            file_attributes=self._fattr(args.file),
            count=len(data), eof=eof, data=data,
        )

    def _readdir(self, args: Record, ctx: CallContext):
        try:
            listing = self.client.listdir(args.dir)
        except ReadOnlyError:
            return nfs_const.NFS3ERR_NOTDIR, Record(dir_attributes=None)
        entries = []
        for position, (name, digest) in enumerate(listing, start=1):
            if position <= args.cookie:
                continue
            entries.append(nfs_types.DirEntry.make(
                fileid=int.from_bytes(digest[:8], "big") >> 1,
                name=name, cookie=position,
            ))
        return nfs_const.NFS3_OK, Record(
            dir_attributes=self._fattr(args.dir),
            cookieverf=b"\x00" * 8, entries=entries, eof=True,
        )

    def _fsinfo(self, args: Record, ctx: CallContext):
        return nfs_const.NFS3_OK, Record(
            obj_attributes=self._fattr(args.fsroot),
            rtmax=65536, rtpref=8192, rtmult=512,
            wtmax=0, wtpref=0, wtmult=512, dtpref=8192,
            maxfilesize=1 << 62,
            time_delta=nfs_types.NfsTime.make(seconds=1, nseconds=0),
            properties=nfs_const.FSF3_SYMLINK | nfs_const.FSF3_HOMOGENEOUS,
        )


# ---------------------------------------------------------------------------
# The client master
# ---------------------------------------------------------------------------


@dataclass
class _SymlinkNode:
    """A synthetic symlink in /sfs (per-agent or global)."""

    name: str
    target: str
    uid: int | None  # None = visible to everyone (revocations)


class SfsClientDaemon:
    """sfscd: the /sfs automounter and agent switchboard."""

    ROOT_HANDLE = b"SFSCD-ROOT-HANDLE"

    def __init__(self, clock: Clock, rng: random.Random, connector: Connector,
                 mounter, encrypt: bool = True, caching: bool = True,
                 metrics=None, backoff: BackoffPolicy | None = None,
                 pipeline_depth: int = 1) -> None:
        self.clock = clock
        self.rng = rng
        self.connector = connector
        self.mounter = mounter
        self.encrypt = encrypt
        self.caching = caching
        #: Pipeline window depth for the daemon's mounts: 1 = classic
        #: one-RPC-at-a-time relaying (bit-identical to the pre-pipeline
        #: stack); >1 turns on sequential readahead (READV batches of up
        #: to this many chunks) and write-gathering (up to this many
        #: coalesced UNSTABLE writes per WRITEV flush).
        self.pipeline_depth = pipeline_depth
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: One policy drives both the mount-time handshake redial and
        #: every session's crash-recovery reconnect loop; inject a
        #: jitter-free policy for deterministic tests.
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self._m_mount_backoff = self.metrics.counter("client.backoff_sleeps")
        self._m_retargeted = self.metrics.counter("client.mounts_retargeted")
        self._m_certs = self.metrics.counter("client.certificates_accepted")
        self.agents: dict[int, Agent] = {}
        self.ephemeral_keys = EphemeralKeyCache(rng)
        #: hostid -> dial locations for a read-only path served by an
        #: untrusted replica tier (see register_replicas).
        self._replicas: dict[bytes, tuple[str, ...]] = {}
        #: hostid -> the live ReplicaSet once mounted (introspection).
        self.replica_sets: dict[bytes, Any] = {}
        self._mounts: dict[bytes, MountedRemoteFs | ReadOnlyMount] = {}
        self._mount_roots: dict[bytes, bytes] = {}  # hostid -> root handle
        self._references: dict[int, set[str]] = {}  # uid -> mount names seen
        self._symlinks: dict[tuple[int | None, str], _SymlinkNode] = {}
        self._next_fsid = 0x5F50000
        self.program = self._build_root_program()
        self._time = 0

    # -- agents --

    def attach_agent(self, uid: int, agent: Agent) -> None:
        """Register *agent* to handle requests from local user *uid*."""
        self.agents[uid] = agent
        self._references.setdefault(uid, set())

    def detach_agent(self, uid: int) -> None:
        self.agents.pop(uid, None)
        for mount in self._mounts.values():
            if isinstance(mount, MountedRemoteFs):
                mount.logout_uid(uid)

    # -- the untrusted replica tier --

    def register_replicas(self, path: SelfCertifyingPath,
                          locations: "tuple[str, ...] | list[str]") -> None:
        """Serve future mounts of *path* from a set of untrusted mirrors.

        *locations* are dial names (the publisher's own server and any
        number of mirrors); the mount fetches through a latency-ranked
        :class:`~repro.fleet.replicas.ReplicaSet` that demotes dead
        mirrors and bans tampering ones.  Security is unchanged — the
        signed root is still verified against *path*'s HostID and every
        blob against its digest — so none of the mirrors needs to be
        trusted.  Registering again replaces the location list for the
        next mount.
        """
        if not locations:
            raise ValueError("a replica registration needs at least one "
                             "location")
        self._replicas[path.hostid] = tuple(locations)

    def _mount_replicated(self, path: SelfCertifyingPath,
                          uid: int) -> "ReadOnlyMount":
        """Build a read-only mount whose transport is the replica set."""
        from ..fleet.replicas import Replica, ReplicaSet, dial_readonly

        def dialer_for(location: str):
            def dial():
                return dial_readonly(self.connector, location, path,
                                     self.ephemeral_keys, self.rng)
            return dial

        replica_set = ReplicaSet(
            [Replica(location, dialer_for(location), self.clock)
             for location in self._replicas[path.hostid]],
            self.clock, self.rng, backoff=self.backoff,
            metrics=self.metrics,
        )
        fsid = self._next_fsid
        self._next_fsid += 1
        try:
            mount = ReadOnlyMount(self, path, replica_set.fetch_root,
                                  replica_set.fetch_data, fsid)
        except ReadOnlyError as exc:
            raise MountError(
                f"read-only verification failed across replicas: {exc}"
            ) from None
        self.replica_sets[path.hostid] = replica_set
        self._mounts[path.hostid] = mount
        self._mount_roots[path.hostid] = mount.root_handle()
        self._references.setdefault(uid, set()).add(path.mount_name)
        self.mounter.mount(f"/sfs/{path.mount_name}", mount.program,
                           mount.root_handle())
        return mount

    # -- mounting --

    def mount_path(self, path: SelfCertifyingPath, uid: int):
        """Connect to and mount a self-certifying pathname for *uid*.

        Honors agent revocation checks and server-supplied revocation
        certificates / forwarding pointers.  Returns the mount object.
        """
        agent = self.agents.get(uid)
        if agent is not None:
            disc, cert = agent.check_revoked(path.location, path.hostid)
            if disc == proto.REVCHECK_BLOCKED:
                raise MountError(f"HostID blocked by agent: {path.mount_name}")
            if disc == proto.REVCHECK_REVOKED:
                self._install_revoked_link(path.mount_name)
                raise MountError(f"pathname revoked: {path.mount_name}")
        existing = self._mounts.get(path.hostid)
        if existing is not None:
            self._references.setdefault(uid, set()).add(path.mount_name)
            return existing
        if path.hostid in self._replicas:
            # A registered replica tier replaces the single-server dial:
            # the ReplicaSet picks (and re-picks) which mirror actually
            # answers, with its own failover and demotion policy.
            return self._mount_replicated(path, uid)
        # A hostile network can drop handshake records; in-call
        # retransmission covers most of that, but a reply lost *after*
        # the server armed its secure channel strands the plaintext
        # handshake permanently — so supervision here means redialing
        # from scratch, and a server that is down or mid-restart earns
        # the same exponential backoff as a crashed session.  Security
        # checks (SecurityError) never retry.
        outcome = None
        last_error: Exception | None = None
        for delay in self.backoff.delays(self.rng):
            if delay:
                self._m_mount_backoff.inc()
                self.clock.advance(delay)
            try:
                link = self.connector(path.location, proto.SERVICE_FILESERVER)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                continue
            try:
                outcome = ServerSession.connect(
                    link, path, self.ephemeral_keys, self.rng,
                    encrypt=self.encrypt,
                )
                break
            except RpcTimeout as exc:
                last_error = exc
                # Tear the half-open link down before redialing; the
                # server prunes its side of an abandoned connection as
                # soon as it notices the link is closed.
                close = getattr(link, "close", None)
                if close is not None:
                    close()
        if outcome is None:
            raise MountError(
                f"cannot establish a session with {path.location}: "
                f"{last_error}"
            ) from None
        if isinstance(outcome, Record) and hasattr(outcome, "signature"):
            self._handle_certificate(path, outcome)
            raise MountError(f"server redirected or revoked {path.mount_name}")
        session = outcome
        fsid = self._next_fsid
        self._next_fsid += 1
        if session.servinfo.dialect == proto.DIALECT_RO:
            try:
                mount: MountedRemoteFs | ReadOnlyMount = \
                    ReadOnlyMount.from_session(self, session, fsid)
            except ReadOnlyError as exc:
                # Bad signature / wrong key: the mount simply does not
                # exist from this client's point of view.
                raise MountError(f"read-only verification failed: {exc}") \
                    from None
            root_handle = mount.root_handle()
        else:
            mount = MountedRemoteFs(self, session, fsid)
            session.enable_reconnect(self.connector, self.clock, self.backoff)
            session.on_retarget = (
                lambda old, new, _mount=mount:
                self._retarget_mount(_mount, old, new)
            )
            root_handle = self._fetch_remote_root(session)
        self._mounts[path.hostid] = mount
        self._mount_roots[path.hostid] = root_handle
        self._references.setdefault(uid, set()).add(path.mount_name)
        self.mounter.mount(f"/sfs/{path.mount_name}", mount.program,
                           root_handle)
        return mount

    def _fetch_remote_root(self, session: ServerSession) -> bytes:
        """Obtain the remote root's (encrypted) handle.

        The RW dialect's mount convention: a LOOKUP of "." on an all-zero
        directory handle names the export's root.
        """
        zero = bytes(24)
        status, body = session.call_nfs(
            nfs_const.NFSPROC3_LOOKUP,
            nfs_types.LookupArgs.make(
                what=nfs_types.DirOpArgs.make(dir=zero, name=".")
            ),
            authno=0,
        )
        if status != nfs_const.NFS3_OK:
            raise MountError("could not obtain remote root handle")
        return body.object

    def _handle_certificate(self, path: SelfCertifyingPath,
                            cert: Record) -> None:
        """Act on a server-supplied revocation / forwarding pointer."""
        try:
            verified = verify_certificate(cert)
        except CertificateError:
            return  # forged certificate: ignore entirely
        if verified.hostid != path.hostid:
            return
        if verified.is_revocation:
            self._install_revoked_link(path.mount_name)
        else:
            # Forwarding pointer; a revocation already present overrules.
            key = (None, path.mount_name)
            node = self._symlinks.get(key)
            if node is not None and node.target == REVOKED_LINK_TARGET:
                return
            self._symlinks[key] = _SymlinkNode(
                path.mount_name, verified.redirect, None
            )

    def _install_revoked_link(self, mount_name: str) -> None:
        """Revoked paths become symlinks to the nonexistent :REVOKED:."""
        self._symlinks[(None, mount_name)] = _SymlinkNode(
            mount_name, REVOKED_LINK_TARGET, None
        )
        parsed = parse_mount_name(mount_name)
        if parsed is not None and parsed.hostid in self._mounts:
            del self._mounts[parsed.hostid]
            self._mount_roots.pop(parsed.hostid, None)
            self.mounter.unmount(f"/sfs/{mount_name}")

    def submit_certificate(self, cert: Record) -> bool:
        """Deliver a revocation / forwarding certificate out of band.

        This is the propagation entry for revocation storms: anything —
        a certification authority sweep, a peer daemon, an
        administrator — can hand sfscd a SignedCertificate, and because
        the certificate is self-authenticating the daemon needs no
        trust in the bearer.  Returns True if it verified and was acted
        on (installed a revoked link or forwarding symlink, evicting
        any cached mount), False if it failed verification.
        """
        try:
            verified = verify_certificate(cert)
        except CertificateError:
            return False
        path = SelfCertifyingPath(verified.location, verified.hostid)
        self._handle_certificate(path, cert)
        self._m_certs.inc()
        return True

    def _retarget_mount(self, mount: "MountedRemoteFs",
                        old: SelfCertifyingPath,
                        new: SelfCertifyingPath) -> None:
        """Re-home a mount whose session followed a forwarding pointer.

        The server rolled its key: same export, new HostID.  Ordering
        matters — the stale HostID is evicted *first*, so nothing can
        resolve the old name onto the re-keyed server while we rebuild,
        and only then is the new name installed.  The old name lives on
        as a forwarding symlink (unless a revocation already overrules
        it), exactly what the server itself would serve a fresh dial.
        """
        if self._mounts.get(old.hostid) is mount:
            del self._mounts[old.hostid]
        self._mount_roots.pop(old.hostid, None)
        self.mounter.unmount(f"/sfs/{old.mount_name}")
        key = (None, old.mount_name)
        node = self._symlinks.get(key)
        if node is None or node.target != REVOKED_LINK_TARGET:
            self._symlinks[key] = _SymlinkNode(
                old.mount_name, f"/sfs/{new.mount_name}", None
            )
        # A new key means a new handle map: the cached root handle is
        # undecipherable to the reborn server and must be re-fetched
        # before the new name is allowed to resolve.
        root_handle = self._fetch_remote_root(mount.session)
        self._mounts[new.hostid] = mount
        self._mount_roots[new.hostid] = root_handle
        for names in self._references.values():
            if old.mount_name in names:
                names.add(new.mount_name)
        self.mounter.mount(f"/sfs/{new.mount_name}", mount.program,
                           root_handle)
        self._m_retargeted.inc()

    # -- the /sfs synthetic file system --

    def _build_root_program(self) -> Program:
        program = Program("sfscd-root", nfs_const.NFS3_PROGRAM,
                          nfs_const.NFS3_VERSION)
        codecs = proto.NFS_PROC_CODECS
        program.add_proc(nfs_const.NFSPROC3_GETATTR, "GETATTR",
                         *codecs[nfs_const.NFSPROC3_GETATTR], self._getattr)
        program.add_proc(nfs_const.NFSPROC3_LOOKUP, "LOOKUP",
                         *codecs[nfs_const.NFSPROC3_LOOKUP], self._lookup)
        program.add_proc(nfs_const.NFSPROC3_ACCESS, "ACCESS",
                         *codecs[nfs_const.NFSPROC3_ACCESS], self._access)
        program.add_proc(nfs_const.NFSPROC3_READLINK, "READLINK",
                         *codecs[nfs_const.NFSPROC3_READLINK], self._readlink)
        program.add_proc(nfs_const.NFSPROC3_READDIR, "READDIR",
                         *codecs[nfs_const.NFSPROC3_READDIR], self._readdir)
        program.add_proc(nfs_const.NFSPROC3_FSINFO, "FSINFO",
                         *codecs[nfs_const.NFSPROC3_FSINFO], self._fsinfo)
        return program

    def root_handle(self) -> bytes:
        return self.ROOT_HANDLE

    def _symlink_handle(self, uid: int | None, name: str) -> bytes:
        tag = f"{uid if uid is not None else '*'}:{name}".encode()
        return b"SL" + sha1(b"sfscd-symlink" + tag)[:18]

    def _find_symlink(self, handle: bytes) -> _SymlinkNode | None:
        for (uid, name), node in self._symlinks.items():
            if self._symlink_handle(uid, name) == handle:
                return node
        return None

    def _mountpoint_handle(self, mount_name: str) -> bytes:
        return b"MP" + sha1(b"sfscd-mountpoint" + mount_name.encode())[:18]

    def _dir_attrs(self, handle: bytes, fileid: int) -> Record:
        zero_time = nfs_types.NfsTime.make(seconds=0, nseconds=0)
        return nfs_types.Fattr.make(
            type=nfs_const.NF3DIR, mode=0o755, nlink=2, uid=0, gid=0,
            size=512, used=512,
            rdev=nfs_types.SpecData.make(major=0, minor=0),
            fsid=0x5F5, fileid=fileid,
            atime=zero_time, mtime=zero_time, ctime=zero_time,
        )

    def _symlink_attrs(self, node: _SymlinkNode, handle: bytes) -> Record:
        zero_time = nfs_types.NfsTime.make(seconds=0, nseconds=0)
        return nfs_types.Fattr.make(
            type=nfs_const.NF3LNK, mode=0o777, nlink=1,
            uid=node.uid if node.uid is not None else 0, gid=0,
            size=len(node.target), used=len(node.target),
            rdev=nfs_types.SpecData.make(major=0, minor=0),
            fsid=0x5F5,
            fileid=int.from_bytes(handle[2:10], "big") >> 1,
            atime=zero_time, mtime=zero_time, ctime=zero_time,
        )

    def _getattr(self, args: Record, ctx: CallContext):
        if args.object == self.ROOT_HANDLE:
            return nfs_const.NFS3_OK, Record(
                obj_attributes=self._dir_attrs(args.object, 1)
            )
        node = self._find_symlink(args.object)
        if node is not None:
            return nfs_const.NFS3_OK, Record(
                obj_attributes=self._symlink_attrs(node, args.object)
            )
        # A mountpoint directory the kernel hasn't crossed yet.
        return nfs_const.NFS3_OK, Record(
            obj_attributes=self._dir_attrs(
                args.object, int.from_bytes(args.object[2:10], "big") >> 1
            )
        )

    def _lookup(self, args: Record, ctx: CallContext):
        if args.what.dir != self.ROOT_HANDLE:
            return nfs_const.NFS3ERR_NOTDIR, Record(dir_attributes=None)
        uid = _uid_from_authsys(ctx.cred)
        name = args.what.name
        dir_attrs = self._dir_attrs(self.ROOT_HANDLE, 1)
        # Global links (revocations, forwarding pointers) come first:
        # "A revocation certificate always overrules..."
        for key_uid in (None, uid):
            node = self._symlinks.get((key_uid, name))
            if node is not None:
                handle = self._symlink_handle(key_uid, name)
                return nfs_const.NFS3_OK, Record(
                    object=handle,
                    obj_attributes=self._symlink_attrs(node, handle),
                    dir_attributes=dir_attrs,
                )
        parsed = parse_mount_name(name)
        if parsed is not None:
            try:
                self.mount_path(parsed, uid)
            except MountError:
                # Mount failures may have installed a revoked link.
                node = self._symlinks.get((None, name))
                if node is not None:
                    handle = self._symlink_handle(None, name)
                    return nfs_const.NFS3_OK, Record(
                        object=handle,
                        obj_attributes=self._symlink_attrs(node, handle),
                        dir_attributes=dir_attrs,
                    )
                return nfs_const.NFS3ERR_NOENT, Record(dir_attributes=dir_attrs)
            handle = self._mountpoint_handle(name)
            return nfs_const.NFS3_OK, Record(
                object=handle,
                obj_attributes=self._dir_attrs(
                    handle, int.from_bytes(handle[2:10], "big") >> 1
                ),
                dir_attributes=dir_attrs,
            )
        # Not self-certifying: notify the agent; it may produce a link.
        agent = self.agents.get(uid)
        if agent is not None:
            target = agent.resolve(name)
            if target is not None:
                node = _SymlinkNode(name, target, uid)
                self._symlinks[(uid, name)] = node
                handle = self._symlink_handle(uid, name)
                return nfs_const.NFS3_OK, Record(
                    object=handle,
                    obj_attributes=self._symlink_attrs(node, handle),
                    dir_attributes=dir_attrs,
                )
        return nfs_const.NFS3ERR_NOENT, Record(dir_attributes=dir_attrs)

    def _access(self, args: Record, ctx: CallContext):
        granted = args.access & (nfs_const.ACCESS3_READ
                                 | nfs_const.ACCESS3_LOOKUP
                                 | nfs_const.ACCESS3_EXECUTE)
        return nfs_const.NFS3_OK, Record(obj_attributes=None, access=granted)

    def _readlink(self, args: Record, ctx: CallContext):
        node = self._find_symlink(args.symlink)
        if node is None:
            return nfs_const.NFS3ERR_INVAL, Record(symlink_attributes=None)
        return nfs_const.NFS3_OK, Record(
            symlink_attributes=self._symlink_attrs(node, args.symlink),
            data=node.target,
        )

    def _readdir(self, args: Record, ctx: CallContext):
        """Per-agent /sfs listing: only names this user has referenced.

        "In directory listings of /sfs, the client hides pathnames that
        have never been accessed under a particular agent.  Thus, a naive
        user who searches for HostIDs with command-line filename
        completion cannot be tricked by another user into accessing the
        wrong HostID."
        """
        if args.dir != self.ROOT_HANDLE:
            return nfs_const.NFS3ERR_NOTDIR, Record(dir_attributes=None)
        uid = _uid_from_authsys(ctx.cred)
        names = [".", ".."]
        names.extend(sorted(self._references.get(uid, ())))
        names.extend(sorted(
            name for (link_uid, name) in self._symlinks
            if link_uid in (uid, None)
        ))
        entries = []
        for position, name in enumerate(names, start=1):
            if position <= args.cookie:
                continue
            entries.append(nfs_types.DirEntry.make(
                fileid=position, name=name, cookie=position
            ))
        return nfs_const.NFS3_OK, Record(
            dir_attributes=self._dir_attrs(self.ROOT_HANDLE, 1),
            cookieverf=b"\x00" * 8, entries=entries, eof=True,
        )

    def _fsinfo(self, args: Record, ctx: CallContext):
        return nfs_const.NFS3_OK, Record(
            obj_attributes=self._dir_attrs(args.fsroot, 1),
            rtmax=65536, rtpref=8192, rtmult=512,
            wtmax=65536, wtpref=8192, wtmult=512, dtpref=8192,
            maxfilesize=1 << 62,
            time_delta=nfs_types.NfsTime.make(seconds=1, nseconds=0),
            properties=nfs_const.FSF3_SYMLINK,
        )
