"""libsfs — user/group name mapping across administrative realms.

"The NFS protocol uses numeric user and group IDs to specify the owner
and group of a file.  These numbers have no meaning outside of the local
administrative realm.  A small C library, libsfs, allows programs to
query file servers (through the client) for mappings of numeric IDs to
and from human-readable names.  We adopt the convention that user and
group names prefixed with '%' are relative to the remote file server.
When both the ID and name of a user or group are the same on the client
and server (e.g., SFS running on a LAN), libsfs detects this situation
and omits the percent sign." (paper section 3.3)

:class:`LibSfs` binds a local passwd/group table to one mounted remote
file system and renders names the way ``ls -l`` through libsfs would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import proto
from .client import MountedRemoteFs

REMOTE_PREFIX = "%"


@dataclass
class LocalAccounts:
    """The client machine's /etc/passwd + /etc/group, in miniature."""

    users: dict[int, str] = field(default_factory=dict)
    groups: dict[int, str] = field(default_factory=lambda: {0: "wheel",
                                                            100: "users"})

    def user_name(self, uid: int) -> str | None:
        return self.users.get(uid)

    def group_name(self, gid: int) -> str | None:
        return self.groups.get(gid)


class LibSfs:
    """Name mapping for one mounted remote file system."""

    def __init__(self, mount: MountedRemoteFs,
                 local: LocalAccounts | None = None) -> None:
        self._mount = mount
        self._local = local or LocalAccounts()
        self._cache: dict[tuple[bool, int], str | None] = {}

    # -- raw remote queries --

    def remote_id_to_name(self, numeric_id: int,
                          is_group: bool = False) -> str | None:
        """Ask the file server (through the secure channel) for a name."""
        key = (is_group, numeric_id)
        if key in self._cache:
            return self._cache[key]
        disc, body = self._mount.session.peer.call(
            proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_IDTONAME,
            proto.IdToNameArgs,
            proto.IdToNameArgs.make(is_group=is_group, numeric_id=numeric_id),
            proto.IdToNameRes,
        )
        name = body if disc == proto.IDMAP_OK else None
        self._cache[key] = name
        return name

    def remote_name_to_id(self, name: str,
                          is_group: bool = False) -> int | None:
        disc, body = self._mount.session.peer.call(
            proto.SFS_RW_PROGRAM, proto.SFS_VERSION, proto.PROC_NAMETOID,
            proto.NameToIdArgs,
            proto.NameToIdArgs.make(is_group=is_group, name=name),
            proto.NameToIdRes,
        )
        return body if disc == proto.IDMAP_OK else None

    # -- display formatting --

    def _display(self, numeric_id: int, is_group: bool) -> str:
        remote = self.remote_id_to_name(numeric_id, is_group)
        local = (self._local.group_name(numeric_id) if is_group
                 else self._local.user_name(numeric_id))
        if remote is None:
            return str(numeric_id)
        if remote == local:
            # "When both the ID and name ... are the same on the client
            # and server, libsfs detects this situation and omits the
            # percent sign."
            return remote
        return REMOTE_PREFIX + remote

    def display_user(self, uid: int) -> str:
        """The owner column of ``ls -l`` for a remote file."""
        return self._display(uid, is_group=False)

    def display_group(self, gid: int) -> str:
        return self._display(gid, is_group=True)
