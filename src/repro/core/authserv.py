"""The authserver ("authserv") — user authentication for SFS servers.

"On the server side, a separate program, the authentication server or
authserver, performs user authentication.  The file server and authserver
communicate with RPC." (paper section 2.5)

The authserver:

* maintains databases mapping public keys to Unix credentials — some
  writable and local, some read-only imports of databases served over SFS
  itself ("a server can import a centrally-maintained list of users over
  SFS while also keeping a few guest accounts in a local database");
* validates signed authentication requests from agents (figure 4),
  translating them into credentials;
* runs the SRP protocol with sfskey so users can retrieve the server's
  self-certifying pathname (and an encrypted copy of their private key)
  with just a password (section 2.4);
* keeps two versions of every writable database: a *public* one (keys and
  credentials, safe to export to the world) and a *private* one (SRP
  verifiers and encrypted private keys, with which a server could mount a
  guessing attack — paced by eksblowfish).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..crypto.rabin import PublicKey, RabinError
from ..crypto.sha1 import sha1
from ..crypto.srp import SRPServer, SRPError, Verifier
from ..rpc.xdr import Record, XdrError
from . import proto
from .sealing import seal

AUTHID_TYPE = "SignedAuthReq"


@dataclass
class UserRecord:
    """One user's public entry: key + credentials."""

    user: str
    uid: int
    gid: int
    groups: tuple[int, ...]
    public_key_bytes: bytes

    def credentials_record(self) -> Record:
        return proto.Credentials.make(
            user=self.user, uid=self.uid, gid=self.gid, groups=list(self.groups)
        )


@dataclass
class PrivateRecord:
    """One user's private entry: SRP verifier + encrypted private key.

    This is the half of the database that never leaves the authserver —
    "The public database contains public keys and credentials, but no
    information with which an attacker could verify a guessed password."
    """

    srp_salt: bytes
    srp_verifier: int
    srp_cost: int
    encrypted_privkey: bytes


class KeyDatabase:
    """A mapping of public keys to users, plus the private side.

    *writable* databases accept registrations; read-only databases model
    imports from remote servers (the authserver "automatically keeps
    local copies of remote databases").
    """

    def __init__(self, name: str, writable: bool = True) -> None:
        self.name = name
        self.writable = writable
        self._by_key_hash: dict[bytes, UserRecord] = {}
        self._by_user: dict[str, UserRecord] = {}
        self._private: dict[str, PrivateRecord] = {}

    @staticmethod
    def _key_hash(public_key_bytes: bytes) -> bytes:
        return sha1(b"AuthKeyHash" + public_key_bytes)

    def add_user(self, record: UserRecord,
                 private: PrivateRecord | None = None) -> None:
        existing = self._by_user.get(record.user)
        if existing is not None:
            # Key rotation: the replaced key must stop authenticating.
            self._by_key_hash.pop(
                self._key_hash(existing.public_key_bytes), None
            )
        self._by_key_hash[self._key_hash(record.public_key_bytes)] = record
        self._by_user[record.user] = record
        if private is not None:
            self._private[record.user] = private

    def lookup_key(self, public_key_bytes: bytes) -> UserRecord | None:
        return self._by_key_hash.get(self._key_hash(public_key_bytes))

    def lookup_user(self, user: str) -> UserRecord | None:
        return self._by_user.get(user)

    def lookup_private(self, user: str) -> PrivateRecord | None:
        return self._private.get(user)

    def public_copy(self) -> "KeyDatabase":
        """The exportable half: users and keys, no password material."""
        copy = KeyDatabase(self.name + "-public", writable=False)
        for record in self._by_user.values():
            copy.add_user(record)
        return copy

    def users(self) -> list[str]:
        return sorted(self._by_user)


class AuthServer:
    """Validates authentication requests and serves sfskey."""

    def __init__(self, rng: random.Random, pathname: str = "",
                 unix_passwords: dict[str, str] | None = None) -> None:
        self._rng = rng
        #: The server's self-certifying pathname, handed to SRP clients.
        self.pathname = pathname
        self.databases: list[KeyDatabase] = [KeyDatabase("local")]
        #: gid -> group name, served to libsfs (paper section 3.3).
        self.groups: dict[int, str] = {0: "wheel", 100: "users"}
        #: Security log.  "an attacker who guesses 1,000 passwords will
        #: generate 1,000 log messages on the server.  Thus, on-line
        #: password guessing attempts can be detected and stopped."
        self.security_log: list[str] = []
        #: Pluggable authentication protocols by envelope name (see
        #: repro.core.authplugins); the classic figure-4 public-key
        #: protocol is built in and needs no registration.
        self.protocols: dict[str, object] = {}
        # Optional map of Unix passwords for opt-in initial registration
        # ("authserv can optionally let users who actually log in to a
        # file server register initial public keys by typing their Unix
        # passwords").
        self._unix_passwords = unix_passwords or {}
        self.validations = 0
        self.failed_validations = 0

    @property
    def local_db(self) -> KeyDatabase:
        return self.databases[0]

    def attach_database(self, db: KeyDatabase) -> None:
        """Import an additional (typically read-only, remote) database."""
        self.databases.append(db)

    # --- figure 4: request validation ------------------------------------

    def validate(self, authid: bytes, seqno: int,
                 authmsg_bytes: bytes) -> UserRecord | None:
        """Check a signed authentication request; return the user or None.

        Verifies, in order: the message parses; the embedded public key
        verifies the signature over the marshaled SignedAuthReq; the
        signed AuthID matches the session's AuthID; the signed sequence
        number matches the one the client chose; and the public key maps
        to a user in some database.
        """
        self.validations += 1
        try:
            authmsg = proto.AuthMsg.unpack(authmsg_bytes)
            public_key = PublicKey.from_bytes(authmsg.public_key)
            if not public_key.verify(authmsg.signed_req, authmsg.signature):
                raise SRPError("bad signature")
            signed = proto.SignedAuthReq.unpack(authmsg.signed_req)
        except (XdrError, RabinError, SRPError):
            self.failed_validations += 1
            return None
        if signed.req_type != AUTHID_TYPE:
            self.failed_validations += 1
            return None
        if signed.authid != authid or signed.seqno != seqno:
            self.failed_validations += 1
            return None
        for db in self.databases:
            record = db.lookup_key(authmsg.public_key)
            if record is not None:
                return record
        self.failed_validations += 1
        return None

    # --- registration ------------------------------------------------------

    def register(self, args: Record) -> bool:
        """Register or update a user's keys (sfskey update / enrolment).

        A user already present may always replace their own record (the
        usual sfskey "change my public key" flow would authenticate this
        over SFS; our model requires either an existing record or a
        matching Unix password for first-time enrolment).
        """
        db = self.local_db
        if not db.writable:
            return False
        existing = db.lookup_user(args.user)
        if existing is None:
            expected = self._unix_passwords.get(args.user)
            if expected is None or expected != args.unix_password:
                return False
            uid = 1000 + len(db.users())
            gid = 100
            groups: tuple[int, ...] = ()
        else:
            uid, gid, groups = existing.uid, existing.gid, existing.groups
        record = UserRecord(
            user=args.user, uid=uid, gid=gid, groups=groups,
            public_key_bytes=args.public_key,
        )
        private = PrivateRecord(
            srp_salt=args.srp_salt,
            srp_verifier=int.from_bytes(args.srp_verifier, "big"),
            srp_cost=args.srp_cost,
            encrypted_privkey=args.encrypted_privkey,
        )
        db.add_user(record, private)
        return True

    def add_account(self, user: str, uid: int, gid: int,
                    groups: tuple[int, ...] = (),
                    public_key_bytes: bytes = b"") -> UserRecord:
        """Administrative account creation (server-side setup)."""
        record = UserRecord(user, uid, gid, groups, public_key_bytes)
        self.local_db.add_user(record)
        return record

    def add_group(self, gid: int, name: str) -> None:
        self.groups[gid] = name

    def register_protocol(self, plugin) -> None:
        """Install a new user-authentication protocol — no file system
        code changes required (the paper's modularity claim)."""
        self.protocols[plugin.name] = plugin

    # --- libsfs queries (paper section 3.3) --------------------------------

    def id_to_name(self, numeric_id: int, is_group: bool) -> str | None:
        """Map a numeric uid/gid to this server's name for it."""
        if is_group:
            return self.groups.get(numeric_id)
        for db in self.databases:
            for user in db.users():
                record = db.lookup_user(user)
                if record is not None and record.uid == numeric_id:
                    return record.user
        return None

    def name_to_id(self, name: str, is_group: bool) -> int | None:
        """Map a user/group name to this server's numeric id for it."""
        if is_group:
            for gid, group_name in self.groups.items():
                if group_name == name:
                    return gid
            return None
        for db in self.databases:
            record = db.lookup_user(name)
            if record is not None:
                return record.uid
        return None

    # --- SRP service (sfskey's password flow) -----------------------------

    def srp_sessions(self) -> "SrpSessionFactory":
        return SrpSessionFactory(self)


class SrpSessionFactory:
    """Creates per-connection SRP handshake state."""

    def __init__(self, authserver: AuthServer) -> None:
        self._authserver = authserver

    def new_session(self) -> "SrpSession":
        return SrpSession(self._authserver)


class SrpSession:
    """One SRP handshake with one sfskey client."""

    def __init__(self, authserver: AuthServer) -> None:
        self._authserver = authserver
        self._server: SRPServer | None = None
        self._user: str | None = None

    def init(self, user: str, A: int) -> tuple[bytes, int, int] | None:
        """Step 2 of SRP; None if the user has no SRP data."""
        record = None
        private = None
        for db in self._authserver.databases:
            record = db.lookup_user(user)
            if record is not None:
                private = db.lookup_private(user)
                break
        if record is None or private is None:
            return None
        verifier = Verifier(
            identity=user,
            salt=private.srp_salt,
            v=private.srp_verifier,
            cost=private.srp_cost,
        )
        self._server = SRPServer(verifier, self._authserver._rng)
        self._user = user
        try:
            return self._server.challenge(A)
        except SRPError:
            self._server = None
            return None

    def confirm(self, m1: bytes) -> tuple[bytes, bytes] | None:
        """Steps 4-5: verify the client, return (M2, sealed payload).

        The payload — the server's self-certifying pathname plus the
        user's encrypted private key — is sealed under the SRP session
        key, so only someone who knew the password can read it.
        """
        if self._server is None or self._user is None:
            return None
        try:
            m2 = self._server.verify_client(m1)
        except SRPError:
            # Every failed guess leaves a log line (paper footnote 3).
            self._authserver.security_log.append(
                f"SRP authentication failed for user {self._user!r}"
            )
            return None
        private = None
        for db in self._authserver.databases:
            if db.lookup_user(self._user) is not None:
                private = db.lookup_private(self._user)
                break
        payload = proto.SrpPayload.pack(
            proto.SrpPayload.make(
                pathname=self._authserver.pathname,
                encrypted_privkey=(
                    private.encrypted_privkey if private is not None else b""
                ),
            )
        )
        sealed = seal(self._server.session_key, payload, label=b"srp-payload")
        return m2, sealed
