"""The authserver ("authserv") — user authentication for SFS servers.

"On the server side, a separate program, the authentication server or
authserver, performs user authentication.  The file server and authserver
communicate with RPC." (paper section 2.5)

The authserver:

* maintains databases mapping public keys to Unix credentials — some
  writable and local, some read-only imports of databases served over SFS
  itself ("a server can import a centrally-maintained list of users over
  SFS while also keeping a few guest accounts in a local database");
* validates signed authentication requests from agents (figure 4),
  translating them into credentials;
* runs the SRP protocol with sfskey so users can retrieve the server's
  self-certifying pathname (and an encrypted copy of their private key)
  with just a password (section 2.4);
* keeps two versions of every writable database: a *public* one (keys and
  credentials, safe to export to the world) and a *private* one (SRP
  verifiers and encrypted private keys, with which a server could mount a
  guessing attack — paced by eksblowfish).

At fleet scale (PROTOCOLS.md section 16) two more concerns live here:
the :class:`~repro.auth.cache.DecisionCache` on the login hot path
(amortizing the key→credentials database resolution — the signature is
still verified on every request), with eviction ordered strictly
before the next validate whenever a key stops resolving, and a bounded
:class:`SrpSessionFactory` so abandoned-login storms cannot grow
handshake state without limit.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from ..auth.cache import DecisionCache, ParseCache
from ..crypto.rabin import PublicKey, RabinError
from ..crypto.sha1 import sha1
from ..crypto.srp import SRPServer, SRPError, Verifier
from ..obs.registry import NULL_REGISTRY
from ..rpc.xdr import Record, XdrError
from . import proto
from .sealing import seal

AUTHID_TYPE = "SignedAuthReq"

#: Bound on live (initiated, unconfirmed) SRP handshakes per authserver.
DEFAULT_MAX_SRP_SESSIONS = 64
#: An SRP handshake abandoned for this long (virtual seconds) expires.
DEFAULT_SRP_SESSION_TTL = 30.0


@dataclass
class UserRecord:
    """One user's public entry: key + credentials."""

    user: str
    uid: int
    gid: int
    groups: tuple[int, ...]
    public_key_bytes: bytes

    def credentials_record(self) -> Record:
        return proto.Credentials.make(
            user=self.user, uid=self.uid, gid=self.gid, groups=list(self.groups)
        )


@dataclass
class PrivateRecord:
    """One user's private entry: SRP verifier + encrypted private key.

    This is the half of the database that never leaves the authserver —
    "The public database contains public keys and credentials, but no
    information with which an attacker could verify a guessed password."
    """

    srp_salt: bytes
    srp_verifier: int
    srp_cost: int
    encrypted_privkey: bytes


class KeyDatabase:
    """A mapping of public keys to users, plus the private side.

    *writable* databases accept registrations; read-only databases model
    imports from remote servers (the authserver "automatically keeps
    local copies of remote databases").

    Whenever a key stops resolving — replaced by rotation or removed by
    revocation — every registered eviction hook fires synchronously with
    the dead key's hash, before control returns to the mutator.  Decision
    caches subscribe through these hooks, which is what makes a cached
    login decision revocation-safe: the eviction is ordered before any
    subsequent ``validate`` can run.
    """

    def __init__(self, name: str, writable: bool = True) -> None:
        self.name = name
        self.writable = writable
        self._by_key_hash: dict[bytes, UserRecord] = {}
        self._by_user: dict[str, UserRecord] = {}
        self._private: dict[str, PrivateRecord] = {}
        self._eviction_hooks: list[Callable[[bytes], None]] = []

    @staticmethod
    def _key_hash(public_key_bytes: bytes) -> bytes:
        return sha1(b"AuthKeyHash" + public_key_bytes)

    def add_eviction_hook(self, hook: Callable[[bytes], None]) -> None:
        """Call *hook(key_hash)* whenever a key stops resolving here."""
        if hook not in self._eviction_hooks:
            self._eviction_hooks.append(hook)

    def _fire_eviction(self, public_key_bytes: bytes) -> None:
        key_hash = self._key_hash(public_key_bytes)
        for hook in self._eviction_hooks:
            hook(key_hash)

    def add_user(self, record: UserRecord,
                 private: PrivateRecord | None = None) -> None:
        existing = self._by_user.get(record.user)
        if existing is not None:
            # Key rotation: the replaced key must stop authenticating.
            self._by_key_hash.pop(
                self._key_hash(existing.public_key_bytes), None
            )
            if existing != record:
                # Any change — new key, or same key with different
                # credentials (uid/gid/groups) — invalidates decisions
                # proved by the old record, so a cache hit can never
                # serve stale credentials until LRU happens to evict.
                self._fire_eviction(existing.public_key_bytes)
        self._by_key_hash[self._key_hash(record.public_key_bytes)] = record
        self._by_user[record.user] = record
        if private is not None:
            self._private[record.user] = private

    def remove_user(self, user: str) -> bool:
        """Revoke *user* entirely; returns True if a record was removed."""
        record = self._by_user.pop(user, None)
        if record is None:
            return False
        self._by_key_hash.pop(self._key_hash(record.public_key_bytes), None)
        self._private.pop(user, None)
        self._fire_eviction(record.public_key_bytes)
        return True

    def lookup_key(self, public_key_bytes: bytes) -> UserRecord | None:
        return self._by_key_hash.get(self._key_hash(public_key_bytes))

    def lookup_user(self, user: str) -> UserRecord | None:
        return self._by_user.get(user)

    def lookup_private(self, user: str) -> PrivateRecord | None:
        return self._private.get(user)

    def public_copy(self) -> "KeyDatabase":
        """The exportable half: users and keys, no password material."""
        copy = KeyDatabase(self.name + "-public", writable=False)
        for record in self._by_user.values():
            copy.add_user(record)
        return copy

    def users(self) -> list[str]:
        return sorted(self._by_user)


class AuthServer:
    """Validates authentication requests and serves sfskey."""

    def __init__(self, rng: random.Random, pathname: str = "",
                 unix_passwords: dict[str, str] | None = None,
                 metrics=None, clock=None) -> None:
        self._rng = rng
        #: The server's self-certifying pathname, handed to SRP clients.
        self.pathname = pathname
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._clock = clock
        self.databases: list[KeyDatabase] = [KeyDatabase("local")]
        #: gid -> group name, served to libsfs (paper section 3.3).
        self.groups: dict[int, str] = {0: "wheel", 100: "users"}
        #: Security log.  "an attacker who guesses 1,000 passwords will
        #: generate 1,000 log messages on the server.  Thus, on-line
        #: password guessing attempts can be detected and stopped."
        self.security_log: list[str] = []
        #: Pluggable authentication protocols by envelope name (see
        #: repro.core.authplugins); the classic figure-4 public-key
        #: protocol is built in and needs no registration.
        self.protocols: dict[str, object] = {}
        # Optional map of Unix passwords for opt-in initial registration
        # ("authserv can optionally let users who actually log in to a
        # file server register initial public keys by typing their Unix
        # passwords").
        self._unix_passwords = unix_passwords or {}
        self.validations = 0
        self.failed_validations = 0
        self.decision_cache = DecisionCache()
        self._pubkeys = ParseCache(PublicKey.from_bytes)
        self._srp_factory: SrpSessionFactory | None = None
        self._m_validations = self.metrics.counter("auth.validations")
        self._m_failed = self.metrics.counter("auth.failed_validations")
        self._m_cache_hits = self.metrics.counter("auth.cache.hits")
        self._m_cache_misses = self.metrics.counter("auth.cache.misses")
        self._m_cache_evictions = self.metrics.counter("auth.cache.evictions")
        self._m_epoch_bumps = self.metrics.counter("auth.cache.epoch_bumps")
        self._m_users_revoked = self.metrics.counter("auth.users_revoked")
        self._m_batches = self.metrics.counter("auth.batch.requests")
        self._m_batch_deduped = self.metrics.counter("auth.batch.deduped")
        self._m_srp_evicted = self.metrics.counter(
            "auth.srp.sessions_evicted")
        self._watch_database(self.databases[0])

    @property
    def local_db(self) -> KeyDatabase:
        return self.databases[0]

    def attach_database(self, db: KeyDatabase) -> None:
        """Import an additional (typically read-only, remote) database."""
        self.databases.append(db)
        self._watch_database(db)

    def _watch_database(self, db: KeyDatabase) -> None:
        db.add_eviction_hook(self._on_key_evicted)

    def _on_key_evicted(self, key_hash: bytes) -> None:
        # Fires synchronously from database mutation, strictly before the
        # next validate call: a revoked or rotated-away key can never be
        # vouched for by a stale cached decision.
        evicted = self.decision_cache.evict_key_hash(key_hash)
        if evicted:
            self._m_cache_evictions.inc(evicted)

    def revoke_user(self, user: str) -> bool:
        """Remove *user* from every writable database; evictions fire.

        Read-only databases are skipped: they mirror a signed published
        image shared by every importer, so mutating one here would both
        diverge from the image (the user silently resurrects on the
        next refresh) and side-effect unrelated file servers.  Fleet-
        wide revocation goes through ``AuthFleet.revoke_user``, which
        mutates the owning shard and refreshes every import.
        """
        removed = False
        for db in self.databases:
            if not db.writable:
                continue
            if db.lookup_user(user) is not None and db.remove_user(user):
                removed = True
        if removed:
            self._m_users_revoked.inc()
        return removed

    def bump_epoch(self) -> None:
        """Invalidate all cached decisions (revocation fan-out path)."""
        self.decision_cache.bump_epoch()
        self._m_epoch_bumps.inc()

    # --- figure 4: request validation ------------------------------------

    def validate(self, authid: bytes, seqno: int,
                 authmsg_bytes: bytes) -> UserRecord | None:
        """Check a signed authentication request; return the user or None.

        Verifies, in order: the message parses; the signed AuthID matches
        the session's AuthID; the signed sequence number matches the one
        the client chose; the embedded public key verifies the signature
        over the marshaled SignedAuthReq; and the public key maps to a
        user in some database.

        The signature is verified on EVERY request, cached decision or
        not: public keys are public, so skipping the verify on a cache
        hit would let anyone who can send on the session (another user's
        agent on a shared client, or the client itself after the agent
        forgot its keys at logout) replay a key it does not hold.  Rabin
        verification is a modular squaring — cheap by construction,
        which is why the paper picked Rabin — so the hot-path win lives
        in what the decision cache *does* skip: the multi-database
        key→credentials resolution.  A hit additionally requires that
        the same key hash is claiming the authid and that the key has
        not been rotated or revoked since (eviction hooks and the cache
        epoch guarantee the latter).  The authid is the SHA-1 of the
        session's AuthInfo, so a decision can never leak across
        sessions.
        """
        self.validations += 1
        self._m_validations.inc()
        try:
            authmsg = proto.AuthMsg.unpack(authmsg_bytes)
            signed = proto.SignedAuthReq.unpack(authmsg.signed_req)
        except XdrError:
            return self._deny()
        if signed.req_type != AUTHID_TYPE:
            return self._deny()
        if signed.authid != authid or signed.seqno != seqno:
            return self._deny()
        try:
            public_key = self._pubkeys.get(authmsg.public_key)
            if not public_key.verify(authmsg.signed_req, authmsg.signature):
                raise SRPError("bad signature")
        except (XdrError, RabinError, SRPError):
            return self._deny()
        key_hash = KeyDatabase._key_hash(authmsg.public_key)
        cached = self.decision_cache.lookup(authid)
        if cached is not None and cached.key_hash == key_hash:
            self._m_cache_hits.inc()
            return cached.record
        self._m_cache_misses.inc()
        for db in self.databases:
            record = db.lookup_key(authmsg.public_key)
            if record is not None:
                self.decision_cache.store(authid, key_hash, record)
                return record
        return self._deny()

    def validate_batch(
        self, requests: Sequence[tuple[bytes, int, bytes]],
    ) -> list[UserRecord | None]:
        """Validate a connection burst of signed requests in one sweep.

        Identical (authid, seqno, authmsg) triples — agents re-dialing
        through a flapping link retransmit verbatim — are verified once
        and fanned out; distinct requests still go through the full
        :meth:`validate` path (and therefore the decision cache and the
        shared public-key parse cache).
        """
        self._m_batches.inc()
        results: list[UserRecord | None] = []
        memo: dict[tuple[bytes, int, bytes], UserRecord | None] = {}
        for authid, seqno, authmsg_bytes in requests:
            key = (bytes(authid), int(seqno), bytes(authmsg_bytes))
            if key in memo:
                self._m_batch_deduped.inc()
                results.append(memo[key])
                continue
            record = self.validate(authid, seqno, authmsg_bytes)
            memo[key] = record
            results.append(record)
        return results

    def _deny(self) -> None:
        self.failed_validations += 1
        self._m_failed.inc()
        return None

    # --- registration ------------------------------------------------------

    def register(self, args: Record) -> bool:
        """Register or update a user's keys (sfskey update / enrolment).

        A user already present may always replace their own record (the
        usual sfskey "change my public key" flow would authenticate this
        over SFS; our model requires either an existing record or a
        matching Unix password for first-time enrolment).
        """
        db = self.local_db
        if not db.writable:
            return False
        existing = db.lookup_user(args.user)
        if existing is None:
            expected = self._unix_passwords.get(args.user)
            if expected is None or expected != args.unix_password:
                return False
            uid = 1000 + len(db.users())
            gid = 100
            groups: tuple[int, ...] = ()
        else:
            uid, gid, groups = existing.uid, existing.gid, existing.groups
        record = UserRecord(
            user=args.user, uid=uid, gid=gid, groups=groups,
            public_key_bytes=args.public_key,
        )
        private = PrivateRecord(
            srp_salt=args.srp_salt,
            srp_verifier=int.from_bytes(args.srp_verifier, "big"),
            srp_cost=args.srp_cost,
            encrypted_privkey=args.encrypted_privkey,
        )
        db.add_user(record, private)
        return True

    def add_account(self, user: str, uid: int, gid: int,
                    groups: tuple[int, ...] = (),
                    public_key_bytes: bytes = b"") -> UserRecord:
        """Administrative account creation (server-side setup)."""
        record = UserRecord(user, uid, gid, groups, public_key_bytes)
        self.local_db.add_user(record)
        return record

    def add_group(self, gid: int, name: str) -> None:
        self.groups[gid] = name

    def register_protocol(self, plugin) -> None:
        """Install a new user-authentication protocol — no file system
        code changes required (the paper's modularity claim)."""
        self.protocols[plugin.name] = plugin

    # --- libsfs queries (paper section 3.3) --------------------------------

    def id_to_name(self, numeric_id: int, is_group: bool) -> str | None:
        """Map a numeric uid/gid to this server's name for it."""
        if is_group:
            return self.groups.get(numeric_id)
        for db in self.databases:
            for user in db.users():
                record = db.lookup_user(user)
                if record is not None and record.uid == numeric_id:
                    return record.user
        return None

    def name_to_id(self, name: str, is_group: bool) -> int | None:
        """Map a user/group name to this server's numeric id for it."""
        if is_group:
            for gid, group_name in self.groups.items():
                if group_name == name:
                    return gid
            return None
        for db in self.databases:
            record = db.lookup_user(name)
            if record is not None:
                return record.uid
        return None

    # --- SRP service (sfskey's password flow) -----------------------------

    def srp_sessions(self) -> "SrpSessionFactory":
        """The (single, bounded) SRP handshake factory for this server."""
        if self._srp_factory is None:
            self._srp_factory = SrpSessionFactory(self, clock=self._clock)
        return self._srp_factory


class SrpSessionFactory:
    """Creates per-connection SRP handshake state, bounded.

    An abandoned-login storm — thousands of SRP_INIT calls whose clients
    never send SRP_CONFIRM — would otherwise grow authserver state
    without limit.  Live handshakes are capped (LRU: the oldest
    unfinished handshake is closed to admit a new one) and expire after
    *ttl* virtual seconds.  Every forced close counts as
    ``auth.srp.sessions_evicted``; a closed session answers None to any
    further protocol step, which the client sees as a failed login.
    """

    def __init__(self, authserver: AuthServer,
                 capacity: int = DEFAULT_MAX_SRP_SESSIONS,
                 ttl: float | None = DEFAULT_SRP_SESSION_TTL,
                 clock=None) -> None:
        if capacity < 1:
            raise ValueError("SRP session capacity must be positive")
        self._authserver = authserver
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._live: OrderedDict[int, SrpSession] = OrderedDict()
        self._serial = 0
        self.evicted = 0

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    @property
    def live_sessions(self) -> int:
        return len(self._live)

    def new_session(self) -> "SrpSession":
        self.expire()
        serial = self._serial
        self._serial += 1
        session = SrpSession(self._authserver, factory=self,
                             serial=serial, born=self._now())
        self._live[serial] = session
        while len(self._live) > self.capacity:
            _, oldest = self._live.popitem(last=False)
            self._evict(oldest)
        return session

    def expire(self) -> None:
        """Close handshakes older than the TTL (virtual clock)."""
        if self._clock is None or self.ttl is None:
            return
        deadline = self._now() - self.ttl
        while self._live:
            serial = next(iter(self._live))
            session = self._live[serial]
            if session.born > deadline:
                break
            del self._live[serial]
            self._evict(session)

    def discard(self, serial: int) -> None:
        """A handshake finished (either way); its state is released."""
        self._live.pop(serial, None)

    def _evict(self, session: "SrpSession") -> None:
        session.close()
        self.evicted += 1
        self._authserver._m_srp_evicted.inc()


class SrpSession:
    """One SRP handshake with one sfskey client."""

    def __init__(self, authserver: AuthServer,
                 factory: SrpSessionFactory | None = None,
                 serial: int = 0, born: float = 0.0) -> None:
        self._authserver = authserver
        self._server: SRPServer | None = None
        self._user: str | None = None
        self._factory = factory
        self._serial = serial
        self.born = born
        self.closed = False

    def close(self) -> None:
        """Abandon the handshake: later protocol steps answer None."""
        self.closed = True
        self._server = None

    def _finish(self) -> None:
        if self._factory is not None:
            self._factory.discard(self._serial)

    def init(self, user: str, A: int) -> tuple[bytes, int, int] | None:
        """Step 2 of SRP; None if the user has no SRP data."""
        if self.closed:
            return None
        record = None
        private = None
        for db in self._authserver.databases:
            record = db.lookup_user(user)
            if record is not None:
                private = db.lookup_private(user)
                break
        if record is None or private is None:
            return None
        verifier = Verifier(
            identity=user,
            salt=private.srp_salt,
            v=private.srp_verifier,
            cost=private.srp_cost,
        )
        self._server = SRPServer(verifier, self._authserver._rng)
        self._user = user
        try:
            return self._server.challenge(A)
        except SRPError:
            self._server = None
            return None

    def confirm(self, m1: bytes) -> tuple[bytes, bytes] | None:
        """Steps 4-5: verify the client, return (M2, sealed payload).

        The payload — the server's self-certifying pathname plus the
        user's encrypted private key — is sealed under the SRP session
        key, so only someone who knew the password can read it.  A
        handshake is single-shot: whatever the outcome, its state is
        released, so a replayed confirm on a stale session answers None.
        """
        if self.closed or self._server is None or self._user is None:
            return None
        try:
            m2 = self._server.verify_client(m1)
        except SRPError:
            # Every failed guess leaves a log line (paper footnote 3).
            self._authserver.security_log.append(
                f"SRP authentication failed for user {self._user!r}"
            )
            self._server = None
            self._finish()
            return None
        private = None
        for db in self._authserver.databases:
            if db.lookup_user(self._user) is not None:
                private = db.lookup_private(self._user)
                break
        payload = proto.SrpPayload.pack(
            proto.SrpPayload.make(
                pathname=self._authserver.pathname,
                encrypted_privkey=(
                    private.encrypted_privkey if private is not None else b""
                ),
            )
        )
        sealed = seal(self._server.session_key, payload, label=b"srp-payload")
        self._server = None
        self._finish()
        return m2, sealed
