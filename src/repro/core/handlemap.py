"""Translate NFS file handles inside protocol messages.

Both SFS daemons rewrite handles as requests pass through them:

* the server translates between the Blowfish-encrypted handles it gives
  clients and the plain handles of its local NFS server (paper 3.3);
* the client translates between the remote server's handles and the
  handles it gives the local kernel.

This module knows, for every NFS3 procedure, where the handles live in
the argument and (successful) result records, and applies a translation
function to each — mutating the freshly-decoded records in place.
"""

from __future__ import annotations

from typing import Any, Callable

from ..nfs3 import const

HandleFn = Callable[[bytes], bytes]

#: proc -> list of attribute paths to handles in the args record.
_ARG_HANDLES: dict[int, list[tuple[str, ...]]] = {
    const.NFSPROC3_GETATTR: [("object",)],
    const.NFSPROC3_SETATTR: [("object",)],
    const.NFSPROC3_LOOKUP: [("what", "dir")],
    const.NFSPROC3_ACCESS: [("object",)],
    const.NFSPROC3_READLINK: [("symlink",)],
    const.NFSPROC3_READ: [("file",)],
    const.NFSPROC3_WRITE: [("file",)],
    const.NFSPROC3_CREATE: [("where", "dir")],
    const.NFSPROC3_MKDIR: [("where", "dir")],
    const.NFSPROC3_SYMLINK: [("where", "dir")],
    const.NFSPROC3_REMOVE: [("object", "dir")],
    const.NFSPROC3_RMDIR: [("object", "dir")],
    const.NFSPROC3_RENAME: [("from_", "dir"), ("to", "dir")],
    const.NFSPROC3_LINK: [("file",), ("link", "dir")],
    const.NFSPROC3_READDIR: [("dir",)],
    const.NFSPROC3_READDIRPLUS: [("dir",)],
    const.NFSPROC3_FSSTAT: [("fsroot",)],
    const.NFSPROC3_FSINFO: [("fsroot",)],
    const.NFSPROC3_PATHCONF: [("object",)],
    const.NFSPROC3_COMMIT: [("file",)],
    const.NFSPROC3_READV: [("file",)],
    const.NFSPROC3_WRITEV: [("file",)],
}

#: proc -> list of (path, optional?) to handles in the OK result record.
_RES_HANDLES: dict[int, list[tuple[tuple[str, ...], bool]]] = {
    const.NFSPROC3_LOOKUP: [(("object",), False)],
    const.NFSPROC3_CREATE: [(("obj",), True)],
    const.NFSPROC3_MKDIR: [(("obj",), True)],
    const.NFSPROC3_SYMLINK: [(("obj",), True)],
}


def _apply(record: Any, path: tuple[str, ...], fn: HandleFn,
           optional: bool) -> None:
    target = record
    for attr in path[:-1]:
        target = getattr(target, attr)
    value = getattr(target, path[-1])
    if value is None and optional:
        return
    setattr(target, path[-1], fn(value))


def translate_args(proc: int, args: Any, fn: HandleFn) -> Any:
    """Rewrite every handle in a request record with *fn* (in place)."""
    for path in _ARG_HANDLES.get(proc, []):
        _apply(args, path, fn, optional=False)
    return args


def translate_result(proc: int, status: int, body: Any, fn: HandleFn) -> Any:
    """Rewrite every handle in a successful result record with *fn*.

    READDIRPLUS entries carry per-name optional handles and are handled
    specially.
    """
    if status != const.NFS3_OK or body is None:
        return body
    for path, optional in _RES_HANDLES.get(proc, []):
        _apply(body, path, fn, optional)
    if proc == const.NFSPROC3_READDIRPLUS:
        for entry in body.entries:
            if entry.name_handle is not None:
                entry.name_handle = fn(entry.name_handle)
    return body
