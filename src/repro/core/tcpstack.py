"""Running the SFS stack over real TCP sockets.

The virtual network is the default substrate (deterministic, adversary-
instrumentable), but SFS is a network file system: this module binds the
same server master and client daemons to genuine localhost sockets, with
RFC 1831 record marking on the wire.  The byte streams are identical to
the virtual transport's — only the delivery mechanics change (the RPC
peers pump the socket while awaiting replies instead of relying on
synchronous in-process delivery).
"""

from __future__ import annotations

from ..rpc.tcp import TcpListener, TcpPipe, connect
from .server import SfsServerMaster


class TcpServerHost:
    """Accepts TCP connections for a server master."""

    def __init__(self, master: SfsServerMaster, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.master = master
        self._connections = []

        def session(pipe: TcpPipe) -> None:
            connection = master.accept(pipe)
            self._connections.append(connection)

        self._listener = TcpListener(host, port, session)
        self.host = host

    @property
    def port(self) -> int:
        return self._listener.port

    def close(self) -> None:
        self._listener.close()


class TcpConnector:
    """A Connector (location, service) -> pipe that dials TCP hosts.

    Drop-in replacement for :meth:`repro.kernel.world.World.connector`;
    register each server's (host, port) under its Location name.
    """

    def __init__(self) -> None:
        self._routes: dict[str, tuple[str, int]] = {}

    def route(self, location: str, host: TcpServerHost) -> None:
        self._routes[location] = (host.host, host.port)

    def __call__(self, location: str, service: int) -> TcpPipe:
        try:
            host, port = self._routes[location]
        except KeyError:
            raise ConnectionError(f"no route to host {location}") from None
        return connect(host, port)
