"""Server-side request queueing and admission control.

With one synchronous client the server could execute every call inline,
inside record delivery.  Under concurrent load that model breaks: every
client's call would be serviced instantly regardless of how many others
are in flight, so contention — the thing the scale benchmarks measure —
would never appear.  This module gives the server a real queue:

* inbound calls are **admitted** into a bounded queue (per RPC peer's
  ``dispatcher`` hook) instead of executing inline;
* a small pool of **worker tasks** (daemons on the cooperative
  scheduler) drains the queue, optionally charging a fixed service time
  per request so server capacity is finite;
* when the queue is full, admission control **rejects** the call with a
  ``SERVER_BUSY`` reply — backpressure the client's
  :class:`~repro.core.backoff.BackoffPolicy` turns into a delayed retry.

Two scheduling policies:

``fifo``
    One global arrival-order queue.  Simple, but a single aggressive
    client can monopolize the workers.
``fair``
    Per-connection queues drained round-robin, so each connection gets
    an equal share of worker capacity regardless of its arrival rate.

Metrics (see docs/OBSERVABILITY.md): ``server.queue.depth`` gauge,
``server.queue.admitted`` / ``server.queue.rejected`` /
``server.queue.job_failures`` counters, ``server.queue.wait_seconds``
histogram of time spent queued before service.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..obs.registry import NULL_REGISTRY, Gauge
from ..sim.clock import Clock
from ..sim.sched import Future, Scheduler, Sleep

FIFO = "fifo"
FAIR_SHARE = "fair"


class QueuedRequest:
    """One admitted call waiting for a worker."""

    __slots__ = ("conn_id", "execute", "enqueued_at")

    def __init__(self, conn_id: object, execute: Callable[[], None],
                 enqueued_at: float) -> None:
        self.conn_id = conn_id
        self.execute = execute
        self.enqueued_at = enqueued_at


class RequestQueue:
    """A bounded request queue with a worker pool and admission control.

    ``max_depth`` bounds *waiting* requests (in-service requests have
    already left the queue); ``workers`` bounds concurrent service;
    ``service_time`` is the simulated seconds each request occupies a
    worker (0 = workers are infinitely fast and only the queue's FIFO
    ordering matters).
    """

    def __init__(
        self,
        clock: Clock,
        max_depth: int = 32,
        workers: int = 4,
        policy: str = FIFO,
        metrics=None,
        service_time: float = 0.0,
    ) -> None:
        if policy not in (FIFO, FAIR_SHARE):
            raise ValueError(f"unknown queue policy {policy!r}")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if workers < 1:
            raise ValueError("need at least one worker")
        self._clock = clock
        self.max_depth = max_depth
        self.workers = workers
        self.policy = policy
        self.service_time = service_time
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.depth = 0
        self._fifo: deque[QueuedRequest] = deque()
        #: fair-share state: per-connection queues + round-robin order.
        self._per_conn: dict[object, deque[QueuedRequest]] = {}
        self._rotation: deque[object] = deque()
        #: (conn_id, xid) pairs admitted but not yet executed — the
        #: window the peer's duplicate-reply cache cannot cover.
        self._queued_xids: set[tuple[object, int]] = set()
        self._wakeup: Future | None = None
        self._g_depth = self.metrics.gauge("server.queue.depth",
                                           track_peak=True)
        #: Private watermark: the registry gauge can be shared by every
        #: queue in a World (same dotted name), so its peak is the
        #: *world-wide* depth watermark; this one is exactly this
        #: queue's, whatever registry (even a disabled one) is in use.
        self._watermark = Gauge("server.queue.depth#local", track_peak=True)
        self._g_max_depth = self.metrics.gauge("server.queue.max_depth")
        self._g_max_depth.set(max_depth)
        self._m_admitted = self.metrics.counter("server.queue.admitted")
        self._m_rejected = self.metrics.counter("server.queue.rejected")
        self._m_absorbed = self.metrics.counter(
            "server.queue.retransmits_absorbed")
        self._m_failures = self.metrics.counter("server.queue.job_failures")
        self._m_wait = self.metrics.histogram("server.queue.wait_seconds")

    @property
    def peak_depth(self) -> int:
        """High-water mark of :attr:`depth` — the depth gauge's peak."""
        return int(self._watermark.peak)

    def _set_depth(self, depth: int) -> None:
        self._g_depth.set(depth)
        self._watermark.set(depth)

    # -- admission ---------------------------------------------------------

    def submit(self, conn_id: object, execute: Callable[[], None]) -> bool:
        """Admit a request, or return False (caller sends SERVER_BUSY)."""
        if self.depth >= self.max_depth:
            self._m_rejected.inc()
            return False
        request = QueuedRequest(conn_id, execute, self._clock.now)
        if self.policy == FAIR_SHARE:
            queue = self._per_conn.get(conn_id)
            if queue is None:
                queue = self._per_conn[conn_id] = deque()
            if not queue:
                self._rotation.append(conn_id)
            queue.append(request)
        else:
            self._fifo.append(request)
        self.depth += 1
        self._set_depth(self.depth)  # the gauges track the peak too
        self._m_admitted.inc()
        if self._wakeup is not None:
            self._wakeup.resolve()
        return True

    def bind(self, peer, conn_id: object,
             inline_calls: frozenset = frozenset()) -> None:
        """Route *peer*'s inbound calls through this queue.

        Installs the peer's ``dispatcher`` hook: admitted calls run
        later via ``serve_queued``; rejected ones get a busy reply
        immediately (never cached — the retry must execute for real).

        ``(prog, proc)`` pairs in *inline_calls* bypass the queue and
        execute during record delivery, like the classic model.  The
        REKEY that completes a channel resync must go here: it has to
        stay ordered with the channel state machine, and a queued REKEY
        can deadlock against a worker that is itself blocked waiting on
        a reply from the desynchronized client — the client cannot
        answer until its REKEY is served, and the REKEY waits behind
        the blocked worker.

        Retransmissions of a call that is *still waiting* in the queue
        are absorbed (dropped, counted in
        ``server.queue.retransmits_absorbed``): the peer's
        duplicate-reply cache only covers calls that already executed,
        so without this a client whose retransmit timer is shorter than
        the queue wait would get the same call admitted — and executed
        — twice, breaking at-most-once exactly when the server is
        congested.  The original's eventual reply resolves the client's
        future for that xid.
        """
        def dispatch(header, body, request) -> None:
            if (header.prog, header.proc) in inline_calls:
                peer.serve_queued(header, body, request)
                return
            key = (conn_id, header.xid)
            if key in self._queued_xids:
                self._m_absorbed.inc()
                return
            def execute() -> None:
                self._queued_xids.discard(key)
                peer.serve_queued(header, body, request)
            if self.submit(conn_id, execute):
                self._queued_xids.add(key)
            else:
                peer.send_busy(header.xid)
        peer.dispatcher = dispatch

    # -- service -----------------------------------------------------------

    def _pop(self) -> QueuedRequest | None:
        if self.policy == FAIR_SHARE:
            while self._rotation:
                conn_id = self._rotation.popleft()
                queue = self._per_conn.get(conn_id)
                if not queue:
                    # A cleared (or never-refilled) connection: drop its
                    # per-conn entry so dead conn_ids do not accumulate
                    # across redials on a long-lived server.
                    self._per_conn.pop(conn_id, None)
                    continue
                request = queue.popleft()
                if queue:
                    self._rotation.append(conn_id)
                else:
                    del self._per_conn[conn_id]
                self.depth -= 1
                self._set_depth(self.depth)
                return request
            return None
        if not self._fifo:
            return None
        request = self._fifo.popleft()
        self.depth -= 1
        self._set_depth(self.depth)
        return request

    def _arrival(self) -> Future:
        if self._wakeup is None or self._wakeup.done:
            self._wakeup = Future("queue-arrival")
        return self._wakeup

    def start(self, scheduler: Scheduler, name: str = "queue") -> None:
        """Spawn the worker pool as daemon tasks on *scheduler*."""
        for index in range(self.workers):
            scheduler.spawn(self._worker(), name=f"{name}-worker-{index}",
                            daemon=True)

    def _worker(self):
        while True:
            request = self._pop()
            if request is None:
                # All workers may share one arrival future; whoever
                # wakes first wins the request, the rest re-wait.
                yield self._arrival()
                continue
            self._m_wait.observe(self._clock.now - request.enqueued_at)
            if self.service_time > 0.0:
                yield Sleep(self.service_time)
            try:
                request.execute()
            except ConnectionError:
                # The caller's link died while its request waited (or
                # mid-reply, e.g. a server crash): the reply has nowhere
                # to go, and the client's retry machinery owns recovery.
                self._m_failures.inc()
            except Exception:  # noqa: BLE001 - a worker must not die
                self._m_failures.inc()

    # -- dynamic control ---------------------------------------------------

    def set_max_depth(self, max_depth: int) -> int:
        """Retune the admission bound at runtime; returns the new value.

        Values below 1 clamp to 1.  Shrinking below the current depth is
        safe by construction: already-admitted requests stay queued and
        get served, and only *new* admissions see the tighter bound
        (``submit`` compares against ``max_depth`` at admission time).
        The control plane's AIMD actuator drives this.
        """
        self.max_depth = max(1, int(max_depth))
        self._g_max_depth.set(self.max_depth)
        return self.max_depth

    # -- lifecycle ---------------------------------------------------------

    def clear(self) -> int:
        """Drop every waiting request (server crash); returns the count.

        Clients learn the same way they learn about any crash: their
        link closes and their in-flight futures fail with
        ``RpcTransportDown``, so no busy replies are sent here.  All
        volatile accounting dies with the machine: the depth gauge, its
        peak watermark, and the fair-share per-connection queues and
        rotation (whose conn_ids name connections that no longer exist).
        """
        dropped = self.depth
        self._fifo.clear()
        self._per_conn.clear()
        self._rotation.clear()
        self._queued_xids.clear()
        self.depth = 0
        self._set_depth(0)
        self._g_depth.reset_peak()
        self._watermark.reset_peak()
        return dropped
