"""Key revocation certificates and forwarding pointers (paper section 2.6).

SFS separates key revocation from key distribution: one self-
authenticating certificate revokes a HostID no matter how that HostID was
distributed.  The message format is

    {"PathRevoke", Location, redirect}  signed by K^-1

where a NULL redirect makes the message a *revocation certificate* and a
present redirect makes it a *forwarding pointer* to a new self-certifying
pathname.  "A revocation certificate always overrules a forwarding
pointer for the same HostID."

Because certificates are self-authenticating — the embedded public key
must both verify the signature and hash (with Location) to the HostID
being revoked — "certification authorities need not check the identity of
people submitting them".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.rabin import PrivateKey, PublicKey, RabinError
from ..rpc.xdr import Record, XdrError
from . import proto
from .pathnames import compute_hostid

REVOKE_TYPE = "PathRevoke"

#: The target revoked paths point at; looking it up yields ENOENT, but
#: "users who investigate further can easily notice that the pathname has
#: actually been revoked."
REVOKED_LINK_TARGET = ":REVOKED:"


class CertificateError(Exception):
    """Raised when a certificate fails to parse or verify."""


@dataclass(frozen=True)
class VerifiedRevocation:
    """A successfully verified PathRevoke message."""

    location: str
    hostid: bytes
    redirect: str | None

    @property
    def is_revocation(self) -> bool:
        return self.redirect is None

    @property
    def is_forwarding_pointer(self) -> bool:
        return self.redirect is not None


def _make_certificate(key: PrivateKey, location: str,
                      redirect: str | None) -> Record:
    body = proto.RevokeBody.pack(
        proto.RevokeBody.make(
            msg_type=REVOKE_TYPE, location=location, redirect=redirect
        )
    )
    return proto.SignedCertificate.make(
        body=body,
        public_key=key.public_key.to_bytes(),
        signature=key.sign(body),
    )


def make_revocation_certificate(key: PrivateKey, location: str) -> Record:
    """Revoke the self-certifying pathname of *key* at *location*.

    Only the key's owner can produce this (it requires the private key) —
    "Key revocation happens only by permission of a file server's owner."
    """
    return _make_certificate(key, location, None)


def make_forwarding_pointer(key: PrivateKey, location: str,
                            new_path: str) -> Record:
    """Point the old pathname at *new_path* (e.g. after a rename)."""
    return _make_certificate(key, location, new_path)


def verify_certificate(cert: Record) -> VerifiedRevocation:
    """Verify a SignedCertificate record; raises CertificateError.

    Checks, in order: the body parses as a PathRevoke message, the
    embedded public key verifies the signature over the raw body bytes,
    and the HostID is recomputed from (Location, key) — so the returned
    HostID is cryptographically bound to the certificate.
    """
    try:
        body = proto.RevokeBody.unpack(cert.body)
    except XdrError as exc:
        raise CertificateError(f"malformed certificate body: {exc}") from None
    if body.msg_type != REVOKE_TYPE:
        raise CertificateError(f"not a PathRevoke message: {body.msg_type!r}")
    try:
        public_key = PublicKey.from_bytes(cert.public_key)
    except RabinError as exc:
        raise CertificateError(f"bad public key: {exc}") from None
    if not public_key.verify(cert.body, cert.signature):
        raise CertificateError("signature does not verify")
    hostid = compute_hostid(body.location, public_key)
    return VerifiedRevocation(body.location, hostid, body.redirect)
