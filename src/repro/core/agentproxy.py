"""Agents over RPC: the modular agent interface and proxy agents.

Locally, the client master calls agent methods through a well-defined
interface; this module provides the same interface over Sun RPC, which
enables two things the paper describes:

* running the agent as a genuinely separate process that "communicates
  with the file system using RPC" and can be replaced at will (section
  2.3), and
* *proxy agents*: "Proxy agents could forward authentication requests to
  other SFS agents.  We hope to build a remote login utility similar to
  ssh that acts as a proxy SFS agent.  That way, users can automatically
  access their files when logging in to a remote machine." (2.5.1)

:class:`AgentServer` exposes an :class:`~repro.core.agent.Agent` on an
RPC peer; :class:`RemoteAgent` is the client-side stub implementing the
agent interface; chaining a RemoteAgent to a machine whose agent is
itself remote yields the ssh-like hop chain, with every hop recorded in
the home agent's audit trail via the request's ``via`` field.
"""

from __future__ import annotations

from ..rpc.peer import CallContext, Program, RpcPeer
from ..rpc.xdr import Record
from . import proto
from .agent import Agent, AgentRefused, AuditEntry


class AgentServer:
    """Serves one user's agent over RPC (the real keys stay here)."""

    def __init__(self, agent: Agent, peer: RpcPeer) -> None:
        self.agent = agent
        self.peer = peer
        peer.register(self._build_program())

    def _build_program(self) -> Program:
        program = Program("sfs-agent", proto.SFS_AGENT_PROGRAM,
                          proto.SFS_VERSION)
        program.add_proc(proto.PROC_SIGNREQ, "SIGNREQ",
                         proto.SignReqArgs, proto.SignReqRes, self._signreq)
        program.add_proc(proto.PROC_RESOLVE, "RESOLVE",
                         proto.ResolveArgs, proto.ResolveRes, self._resolve)
        program.add_proc(proto.PROC_REVCHECK, "REVCHECK",
                         proto.RevcheckArgs, proto.RevcheckRes,
                         self._revcheck)
        return program

    def _signreq(self, args: Record, ctx: CallContext):
        via = list(args.via)
        if via:
            self.agent.audit_log.append(
                AuditEntry("proxy", " -> ".join(via))
            )
        try:
            blob = self.agent.sign_request(
                args.authinfo_bytes, args.seqno, args.key_index
            )
        except AgentRefused:
            return proto.SIGN_REFUSED, None
        return proto.SIGN_OK, blob

    def _resolve(self, args: Record, ctx: CallContext):
        target = self.agent.resolve(args.name)
        if target is None:
            return proto.RESOLVE_NONE, None
        return proto.RESOLVE_LINK, target

    def _revcheck(self, args: Record, ctx: CallContext):
        disc, cert = self.agent.check_revoked(args.location, args.hostid)
        return disc, cert


class RemoteAgent:
    """The agent interface, implemented by RPC to an AgentServer.

    A client master can use this exactly like a local Agent.  *hop*
    names this machine/process in the audit path; chained proxies extend
    the list on each forward.
    """

    def __init__(self, peer: RpcPeer, user: str, hop: str,
                 via: list[str] | None = None) -> None:
        self._peer = peer
        self.user = user
        self._via = list(via or []) + [hop]

    @property
    def key_count(self) -> int:
        # The proxy cannot enumerate remote keys; report "at least one"
        # and let the remote side refuse indexes it does not have.
        return 1

    def sign_request(self, authinfo_bytes: bytes, seqno: int,
                     key_index: int = 0) -> bytes:
        disc, blob = self._peer.call(
            proto.SFS_AGENT_PROGRAM, proto.SFS_VERSION, proto.PROC_SIGNREQ,
            proto.SignReqArgs,
            proto.SignReqArgs.make(
                authinfo_bytes=authinfo_bytes, seqno=seqno,
                key_index=key_index, via=self._via,
            ),
            proto.SignReqRes,
        )
        if disc != proto.SIGN_OK:
            raise AgentRefused(f"remote agent for {self.user} refused")
        return blob

    def resolve(self, name: str) -> str | None:
        disc, target = self._peer.call(
            proto.SFS_AGENT_PROGRAM, proto.SFS_VERSION, proto.PROC_RESOLVE,
            proto.ResolveArgs, proto.ResolveArgs.make(name=name),
            proto.ResolveRes,
        )
        return target if disc == proto.RESOLVE_LINK else None

    def check_revoked(self, location: str, hostid: bytes):
        return self._peer.call(
            proto.SFS_AGENT_PROGRAM, proto.SFS_VERSION, proto.PROC_REVCHECK,
            proto.RevcheckArgs,
            proto.RevcheckArgs.make(location=location, hostid=hostid),
            proto.RevcheckRes,
        )

    def forwarded(self, peer: RpcPeer, hop: str) -> "RemoteAgent":
        """One more ssh-like hop: a proxy of this proxy."""
        return RemoteAgent(peer, self.user, hop, via=self._via)
