"""Symmetric sealing used outside the session channel.

Two places in SFS move secrets under a shared symmetric key that is *not*
a channel session key:

* the authserver sends the user's self-certifying pathname and encrypted
  private key under the SRP-negotiated session key (paper section 2.4),
* sfskey stores the user's private key encrypted under an
  eksblowfish-hardened password (section 2.5.2).

Both use this ARC4 + HMAC-SHA1 encrypt-then-MAC construction.
"""

from __future__ import annotations

from ..crypto.arc4 import ARC4
from ..crypto.mac import MAC_LEN, hmac_sha1
from ..crypto.sha1 import sha1
from ..crypto.util import constant_time_eq


class SealError(Exception):
    """The sealed blob failed authentication."""


def seal(key: bytes, plaintext: bytes, label: bytes = b"") -> bytes:
    """Encrypt-then-MAC *plaintext* under *key* (domain-separated by label)."""
    enc_key = sha1(b"seal-enc" + label + key)
    mac_key = sha1(b"seal-mac" + label + key)
    ciphertext = ARC4(enc_key).encrypt(plaintext)
    return ciphertext + hmac_sha1(mac_key, ciphertext)


def unseal(key: bytes, blob: bytes, label: bytes = b"") -> bytes:
    """Verify and decrypt a sealed blob; raises SealError on tampering."""
    if len(blob) < MAC_LEN:
        raise SealError("sealed blob too short")
    ciphertext, tag = blob[:-MAC_LEN], blob[-MAC_LEN:]
    mac_key = sha1(b"seal-mac" + label + key)
    if not constant_time_eq(tag, hmac_sha1(mac_key, ciphertext)):
        raise SealError("seal authentication failed")
    enc_key = sha1(b"seal-enc" + label + key)
    return ARC4(enc_key).decrypt(ciphertext)
