"""sfssd — the SFS server master and its subsidiary servers.

"On the server side, a server master, sfssd, accepts all incoming
connections from clients.  sfssd passes each new connection to a
subordinate server based on the version of the client, the service it
requests (currently fileserver or authserver), the self-certifying
pathname it requests, and a currently unused 'extensions' string."
(paper section 3.2)

One :class:`SfsServerMaster` models one server machine (one Location).
It can export any number of file systems, each under its own key and
HostID:

* read-write exports run the figure-3 key negotiation, then relay the
  NFS3-shaped read-write dialect to a local NFS server over a loopback
  RPC connection ("the server acts as an NFS client, passing the request
  to an NFS server on the same machine"), tagging each request with the
  credentials established by user authentication and translating between
  its Blowfish-encrypted handles and the local server's plain ones;
* read-only exports serve signed data with no online private key;
* the authserver service answers sfskey (SRP) and the file server's
  validation requests.

Leases: the server remembers which handles each connection has seen and
calls back (without waiting for acknowledgment) when another connection
mutates them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..crypto.rabin import PrivateKey
from ..fs.memfs import ANONYMOUS, Cred, MemFs
from ..nfs3 import const as nfs_const
from ..nfs3.client import Nfs3Client
from ..nfs3.handles import BadHandle, EncryptedHandles, PlainHandles
from ..nfs3.server import Nfs3Server
from ..obs.registry import NULL_REGISTRY
from ..rpc.peer import CallContext, Program, Pipe, RpcPeer
from ..rpc.rpcmsg import AuthSys, OpaqueAuth
from ..rpc.xdr import Record, VOID
from ..sim.clock import Clock
from ..sim.crash import CrashInjector
from ..sim.network import LinkSide, link_pair
from ..crypto.util import constant_time_eq
from . import handlemap, proto
from .admission import FIFO, RequestQueue
from .authserv import AuthServer, SrpSession
from .channel import (
    RESYNC_ACK,
    RESYNC_REQUEST,
    SecureChannel,
    make_control_record,
    parse_control_record,
)
from .config import DispatchConfig
from .keyneg import (
    KeyNegotiationError,
    decrypt_key_halves,
    derive_session_keys,
    encrypt_key_halves,
    make_key_halves,
    rekey_auth,
)
from .pathnames import SelfCertifyingPath, make_path
from .readonly import ReadOnlyImage, ReadOnlyStore

ANONYMOUS_AUTHNO = 0
_SEQNO_WINDOW = 64

#: Calls the admission queue must never hold back: the REKEY that
#: completes a channel resync is transport-layer work that has to stay
#: ordered with the channel state machine (CONNECT and ENCRYPT happen
#: on a fresh dial and queue like any other work).
CHANNEL_CALLS = frozenset({(proto.SFS_CONNECT_PROGRAM, proto.PROC_REKEY)})

#: LOOKUP of "." on this handle names an export's root (mount convention).
ZERO_HANDLE = bytes(24)


def nfs_failure_shape(proc: int) -> Record | None:
    """The failure-arm body for an NFS3 procedure (attributes omitted)."""
    from ..nfs3 import types as nfs_types

    empty_wcc = nfs_types.WccData.make(before=None, after=None)
    shapes = {
        nfs_const.NFSPROC3_GETATTR: None,
        nfs_const.NFSPROC3_SETATTR: Record(obj_wcc=empty_wcc),
        nfs_const.NFSPROC3_LOOKUP: Record(dir_attributes=None),
        nfs_const.NFSPROC3_ACCESS: Record(obj_attributes=None),
        nfs_const.NFSPROC3_READLINK: Record(symlink_attributes=None),
        nfs_const.NFSPROC3_READ: Record(file_attributes=None),
        nfs_const.NFSPROC3_WRITE: Record(file_wcc=empty_wcc),
        nfs_const.NFSPROC3_CREATE: Record(dir_wcc=empty_wcc),
        nfs_const.NFSPROC3_MKDIR: Record(dir_wcc=empty_wcc),
        nfs_const.NFSPROC3_SYMLINK: Record(dir_wcc=empty_wcc),
        nfs_const.NFSPROC3_REMOVE: Record(dir_wcc=empty_wcc),
        nfs_const.NFSPROC3_RMDIR: Record(dir_wcc=empty_wcc),
        nfs_const.NFSPROC3_RENAME: Record(
            fromdir_wcc=empty_wcc, todir_wcc=empty_wcc
        ),
        nfs_const.NFSPROC3_LINK: Record(
            file_attributes=None, linkdir_wcc=empty_wcc
        ),
        nfs_const.NFSPROC3_READDIR: Record(dir_attributes=None),
        nfs_const.NFSPROC3_READDIRPLUS: Record(dir_attributes=None),
        nfs_const.NFSPROC3_FSSTAT: Record(obj_attributes=None),
        nfs_const.NFSPROC3_FSINFO: Record(obj_attributes=None),
        nfs_const.NFSPROC3_PATHCONF: Record(obj_attributes=None),
        nfs_const.NFSPROC3_COMMIT: Record(file_wcc=empty_wcc),
        nfs_const.NFSPROC3_READV: Record(file_attributes=None),
        nfs_const.NFSPROC3_WRITEV: Record(file_wcc=empty_wcc),
    }
    return shapes[proc]


def make_sfs_cred(authno: int) -> OpaqueAuth:
    """The AUTH_SFS credential carrying an authentication number."""
    return OpaqueAuth(proto.AUTH_SFS, authno.to_bytes(4, "big"))


def parse_sfs_cred(cred: OpaqueAuth) -> int:
    """Extract the authno; anything malformed is anonymous."""
    if cred.flavor != proto.AUTH_SFS or len(cred.body) != 4:
        return ANONYMOUS_AUTHNO
    return int.from_bytes(cred.body, "big")


class SwitchablePipe:
    """A pipe whose lower transport can be swapped (plaintext <-> secure).

    The swap to a secure channel is requested *during* the ENCRYPT (or
    REKEY) RPC handler but must take effect only after the plaintext
    reply has been sent; ``send`` applies any pending switch after
    transmitting.  For channel resynchronization the pipe can also fall
    *back* to the raw transport (:meth:`reset_to_plaintext`) so the
    re-keying exchange runs below the broken streams, and it routes
    plaintext control records (:data:`repro.core.channel.CONTROL_PREFIX`)
    to :attr:`control_handler` in both phases — via the channel's own
    control routing when secure, directly when plaintext.
    """

    def __init__(self, lower: Pipe) -> None:
        self._raw = lower
        self._lower: Pipe = lower
        self._handler: Callable[[bytes], None] | None = None
        self._pending: SecureChannel | None = None
        #: Receives control-record payloads (the resync handshake).
        self.control_handler: Callable[[bytes], None] | None = None
        self.suggested_reply_waiter = getattr(
            lower, "suggested_reply_waiter", None
        )
        self.suggested_clock = getattr(lower, "suggested_clock", None)
        self.suggested_metrics = getattr(lower, "suggested_metrics", None)
        self.suggested_window_depth = getattr(
            lower, "suggested_window_depth", None
        )
        self.suggested_rtt = getattr(lower, "suggested_rtt", 0.0)
        self.synchronous_delivery = getattr(
            lower, "synchronous_delivery", False
        )
        lower.on_receive(self._dispatch)

    def _dispatch(self, data: bytes) -> None:
        payload = parse_control_record(data)
        if payload is not None:
            self._forward_control(payload)
            return
        if self._handler is not None:
            self._handler(data)

    def _forward_control(self, payload: bytes) -> None:
        if self.control_handler is not None:
            self.control_handler(payload)

    def send(self, data: bytes) -> None:
        self._lower.send(data)
        if self._pending is not None:
            channel = self._pending
            self._pending = None
            self._install(channel)

    def send_control(self, payload: bytes) -> None:
        """Send a plaintext control record on the raw transport."""
        self._raw.send(make_control_record(payload))

    def on_receive(self, handler: Callable[[bytes], None]) -> None:
        self._handler = handler

    def on_close(self, handler: Callable[[], None]) -> None:
        """Close notification always comes from the raw transport —
        channels are wrappers and never close independently."""
        register = getattr(self._raw, "on_close", None)
        if callable(register):
            register(handler)

    def _install(self, channel: SecureChannel) -> None:
        self._lower = channel
        channel.control_handler = self._forward_control
        channel.attach()
        channel.on_receive(self._dispatch)

    def switch_after_reply(self, channel: SecureChannel) -> None:
        """Arm a secure channel to take over after the next send."""
        self._pending = channel

    def switch_now(self, channel: SecureChannel) -> None:
        """Immediately swap (client side, after the ENCRYPT reply)."""
        self._install(channel)

    def reset_to_plaintext(self) -> None:
        """Take the raw transport back for a resynchronization phase.

        Records sent and received bypass any installed channel until the
        next switch; control records still route to `control_handler`.
        """
        self._pending = None
        self._lower = self._raw
        self._raw.on_receive(self._dispatch)

    @property
    def lower(self) -> Pipe:
        return self._lower

    @property
    def raw(self) -> Pipe:
        """The underlying transport, regardless of any installed channel."""
        return self._raw


@dataclass
class RwExport:
    """One read-write file system behind this server master."""

    name: str
    key: PrivateKey
    path: SelfCertifyingPath
    fs: MemFs
    authserver: AuthServer
    lease_duration: float
    handles: EncryptedHandles
    nfs_client: Nfs3Client          # loopback to the local NFS server
    nfs_server: Nfs3Server
    connections: list["ServerConnection"] = field(default_factory=list)
    active_connection: "ServerConnection | None" = None
    #: Loopback transport behind nfs_client/nfs_server; a crash closes
    #: it along with every client-facing link.
    loop_links: "tuple[LinkSide, LinkSide] | None" = None
    master: "SfsServerMaster | None" = None

    def on_mutation(self, plain_handle: bytes) -> None:
        """Fan lease invalidations out to every other connection.

        Iterates over a snapshot: a send can kill a connection (closed
        link) and prune it from the live list mid-loop, and one crashed
        peer must not abort invalidations to the rest.
        """
        encrypted = None
        for connection in list(self.connections):
            if connection is self.active_connection:
                continue
            if not connection.alive:
                # A client that redialed (or died) leaves a half-open
                # connection behind; drop it instead of broadcasting
                # invalidations to a dead link forever.
                self.connections.remove(connection)
                if self.master is not None:
                    self.master.note_pruned()
                continue
            if plain_handle in connection.leased_handles:
                if self.master is not None:
                    self.master.crashpoint("lease-fanout")
                if encrypted is None:
                    fsid, ino, generation = PlainHandles().decode(plain_handle)
                    encrypted = self.handles.encode(fsid, ino, generation)
                connection.send_invalidate(encrypted, plain_handle)


@dataclass
class RoExport:
    """One read-only file system (no online private key)."""

    name: str
    path: SelfCertifyingPath
    store: ReadOnlyStore
    public_key_bytes: bytes


class SfsServerMaster:
    """One server machine: exports, dispatch, connection acceptance."""

    def __init__(self, location: str, clock: Clock, rng: random.Random,
                 config: DispatchConfig | None = None,
                 metrics=None) -> None:
        self.location = location
        self.clock = clock
        self.rng = rng
        self.config = config or DispatchConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._rw: dict[bytes, RwExport] = {}
        self._ro: dict[bytes, RoExport] = {}
        self._authservers: dict[bytes, AuthServer] = {}
        self._revocations: dict[bytes, Record] = {}
        self._forwards: dict[bytes, Record] = {}
        self.connections_accepted = 0
        #: Live inbound connections; volatile — a crash empties it.
        self.connections: list["ServerConnection"] = []
        #: True between :meth:`crash` and :meth:`restart`; dials fail.
        self.down = False
        #: Optional scheduled-fault source (see :mod:`repro.sim.crash`).
        self.crash_injector: CrashInjector | None = None
        #: Set by :meth:`enable_concurrency`: inbound calls queue here
        #: instead of executing inline during record delivery.
        self.request_queue: RequestQueue | None = None
        #: Zero-argument callables fired at the end of every
        #: :meth:`restart` — the machine's boot beacon.  The control
        #: plane hangs its alive-with-reset notification here so a
        #: crash+restart inside one heartbeat reads as a flap, not a
        #: death (see :meth:`repro.control.collector.Collector.notify_boot`).
        self.restart_hooks: list = []
        self.crashes = 0
        self.restarts = 0
        self.dead_connections_pruned = 0
        self._m_crashes = self.metrics.counter("server.crashes")
        self._m_restarts = self.metrics.counter("server.restarts")
        self._m_pruned = self.metrics.counter(
            "server.dead_connections_pruned"
        )
        self._m_lost_writes = self.metrics.counter("fs.lost_writes")
        self._m_lost_bytes = self.metrics.counter("fs.lost_bytes")
        self._m_torn_dropped = self.metrics.counter(
            "fs.torn_records_dropped"
        )

    # --- exports ---------------------------------------------------------

    def add_rw_export(self, key: PrivateKey, fs: MemFs,
                      authserver: AuthServer,
                      lease_duration: float = 30.0,
                      name: str = "default") -> SelfCertifyingPath:
        """Export *fs* read-write under *key*; returns its pathname."""
        path = make_path(self.location, key.public_key)
        export = RwExport(
            name=name, key=key, path=path, fs=fs, authserver=authserver,
            lease_duration=lease_duration,
            handles=self._derive_handles(key),
            nfs_client=None, nfs_server=None,  # set by _build_loopback
            master=self,
        )
        self._build_loopback(export)
        self._rw[path.hostid] = export
        self._authservers[path.hostid] = authserver
        if not authserver.pathname:
            authserver.pathname = str(path)
        self.config.add_export(name, path.hostid, proto.DIALECT_RW)
        return path

    def add_ro_export(self, image: ReadOnlyImage,
                      name: str = "readonly") -> SelfCertifyingPath:
        """Serve a published read-only image (possibly as a mirror)."""
        path = image.path()
        if path.location != self.location:
            # Untrusted mirrors serve images published for another
            # Location; clients still verify against the original name.
            path = SelfCertifyingPath(image.location, path.hostid)
        export = RoExport(
            name=name, path=path, store=ReadOnlyStore(image),
            public_key_bytes=image.public_key_bytes,
        )
        self._ro[path.hostid] = export
        self.config.add_export(name, path.hostid, proto.DIALECT_RO)
        return path

    def rw_export(self, hostid: bytes) -> RwExport | None:
        return self._rw.get(hostid)

    @staticmethod
    def _derive_handles(key: PrivateKey) -> EncryptedHandles:
        """The handle map is a pure function of the durable private key,
        so handles clients cached before a crash decode after restart."""
        handle_key = key.sign(b"SFS-handle-key")[:21][1:]  # 20 secret bytes
        return EncryptedHandles(handle_key)

    def _build_loopback(self, export: RwExport) -> None:
        """(Re)create an export's local NFS server and loopback RPC pair.

        Run at export time and again on every restart: the loopback is
        volatile machinery, and rebuilding the Nfs3Server gives it a
        fresh write verifier (NFS3's restart-detection signal).
        """
        loop_client_side, loop_server_side = link_pair(
            self.clock, metrics=self.metrics
        )
        export.loop_links = (loop_client_side, loop_server_side)
        export.nfs_server = Nfs3Server(export.fs, metrics=self.metrics,
                                       clock=self.clock)
        export.nfs_server._mutation_hook = export.on_mutation
        export.nfs_client = Nfs3Client(RpcPeer(loop_client_side,
                                               "sfssd-nfsc"))
        nfsd_peer = RpcPeer(loop_server_side, "nfsd")
        nfsd_peer.register(export.nfs_server.program)

    # --- crash and restart -------------------------------------------------

    def install_crash_injector(
        self, schedule: "list[tuple[str, int]]"
    ) -> CrashInjector:
        """Arm scheduled crashes; each fires a full :meth:`crash`."""
        self.crash_injector = CrashInjector(
            schedule, on_crash=lambda point: self.crash()
        )
        return self.crash_injector

    def crashpoint(self, point: str) -> None:
        """Annotate a named crash point (no-op without an injector)."""
        if self.crash_injector is not None:
            self.crash_injector.hit(point)

    def note_pruned(self) -> None:
        """A dead connection was dropped from an export's fan-out list."""
        self.dead_connections_pruned += 1
        self._m_pruned.inc()

    def crash(self) -> None:
        """Power failure: every connection dies, volatile state is gone.

        Durable state survives in place: each export's private key, its
        handle map (derived from the key), the authserver database, and
        whatever the file system had flushed.  Leases, authnos, reply
        caches, and session keys all live on the ServerConnection
        objects discarded here — exactly the paper's split between
        long-lived key material and per-session state.
        """
        if self.down:
            return
        self.down = True
        self.crashes += 1
        self._m_crashes.inc()
        if self.request_queue is not None:
            # Queued-but-unserved requests die with the machine; their
            # clients learn via the closing links, not busy replies.
            self.request_queue.clear()
        for connection in self.connections:
            connection.pipe.raw.close()
        self.connections.clear()
        for export in self._rw.values():
            export.connections.clear()
            export.active_connection = None
            if export.loop_links is not None:
                for side in export.loop_links:
                    side.close()
            report = export.fs.crash()
            self._m_lost_writes.inc(report["lost_writes"])
            self._m_lost_bytes.inc(report["lost_bytes"])

    def restart(self) -> None:
        """Boot the machine back up from durable state only.

        Re-registers the same keypair and exports (same HostIDs — the
        whole point of self-certifying pathnames is that clients need no
        new key-management step to trust the reborn server), replays the
        file system journal, and rebuilds the volatile loopback plumbing.
        """
        if not self.down:
            raise RuntimeError("restart() on a server that is not down")
        for export in self._rw.values():
            report = export.fs.recover()
            if report["mismatched"]:
                raise RuntimeError(
                    f"journal mismatch on export {export.name!r}: "
                    f"{report['mismatched']} records disagree with "
                    "recovered data"
                )
            self._m_torn_dropped.inc(report["dropped_torn"])
            rebuilt = self._derive_handles(export.key)
            # Same durable key => same handle map; clients' cached
            # handles (and their lease state, once re-established)
            # remain meaningful across the restart.
            assert rebuilt.fingerprint == export.handles.fingerprint
            export.handles = rebuilt
            self._build_loopback(export)
        self.down = False
        self.restarts += 1
        self._m_restarts.inc()
        for hook in list(self.restart_hooks):
            hook()

    # --- revocation state --------------------------------------------------

    def set_revocation(self, hostid: bytes, certificate: Record) -> None:
        """Serve *certificate* to clients that connect asking for hostid.

        "When SFS first connects to a server, it announces the Location
        and HostID of the file system it wishes to access.  The server
        can respond with a revocation certificate."
        """
        self._revocations[hostid] = certificate
        self._rw.pop(hostid, None)
        self._ro.pop(hostid, None)

    def set_forwarding_pointer(self, hostid: bytes, certificate: Record) -> None:
        self._forwards[hostid] = certificate
        self._rw.pop(hostid, None)
        self._ro.pop(hostid, None)

    # --- concurrency -----------------------------------------------------

    def enable_concurrency(
        self,
        scheduler,
        max_depth: int = 32,
        workers: int = 4,
        policy: str = FIFO,
        service_time: float = 0.0,
    ) -> RequestQueue:
        """Serve requests through a bounded queue + worker pool.

        Until this is called the master keeps the classic model — every
        call executes inline during record delivery, which is correct
        but serializes the world.  Afterwards each connection's inbound
        calls are admitted (or busy-rejected) into one shared
        :class:`~repro.core.admission.RequestQueue` whose workers run as
        daemon tasks on *scheduler*.  The loopback NFS connection stays
        inline: its calls are issued *by* the workers, and queueing them
        behind the same pool would deadlock.
        """
        queue = RequestQueue(
            self.clock, max_depth=max_depth, workers=workers,
            policy=policy, metrics=self.metrics, service_time=service_time,
        )
        queue.start(scheduler, name=f"{self.location}")
        self.request_queue = queue
        for connection in self.connections:
            queue.bind(connection.peer, connection,
                       inline_calls=CHANNEL_CALLS)
        return queue

    # --- accepting connections ------------------------------------------------

    def accept(self, link: LinkSide) -> "ServerConnection":
        """Attach a new inbound connection (sfssd's accept loop)."""
        if self.down:
            raise ConnectionError(
                f"connection refused: {self.location} is down"
            )
        self.connections_accepted += 1
        # Reap connections whose transports have since closed, so the
        # live list does not grow monotonically across redials.
        self.connections = [c for c in self.connections if c.alive]
        connection = ServerConnection(self, link)
        self.connections.append(connection)
        if self.request_queue is not None:
            self.request_queue.bind(connection.peer, connection,
                                    inline_calls=CHANNEL_CALLS)
        return connection


class ServerConnection:
    """One client connection through its whole lifecycle."""

    def __init__(self, master: SfsServerMaster, link: LinkSide) -> None:
        self.master = master
        self.pipe = SwitchablePipe(link)
        self.peer = RpcPeer(self.pipe, f"sfssd@{master.location}")
        self.export: RwExport | None = None
        self.ro_export: RoExport | None = None
        self.service = 0
        self.session_keys = None
        self.encrypt_traffic = True
        self.channel: SecureChannel | None = None
        self.leased_handles: set[bytes] = set()
        self._authnos: dict[int, Cred] = {ANONYMOUS_AUTHNO: ANONYMOUS}
        self._next_authno = 1
        self._seen_seqnos: set[int] = set()
        self._max_seqno = 0
        self._auth_protocol_states: dict[str, dict] = {}
        self._srp_session: SrpSession | None = None
        self.invalidations_sent = 0
        #: Session keys replaced by the last rekey; a client that never
        #: saw that rekey's reply still authenticates its next REKEY
        #: under these (see :meth:`_rekey`).
        self._prior_session_keys = None
        self.rekeys = 0
        self.rekeys_denied = 0
        self.resyncs_served = 0
        self.metrics = self.peer.metrics
        self._m_invalidations = self.metrics.counter(
            "server.invalidations_sent"
        )
        self._m_rekeys = self.metrics.counter("server.rekeys")
        self._m_rekeys_denied = self.metrics.counter("server.rekeys_denied")
        self._m_resyncs_served = self.metrics.counter("server.resyncs_served")
        self._m_logins_ok = self.metrics.counter("auth.logins_ok")
        self._m_logins_denied = self.metrics.counter("auth.logins_denied")
        self.pipe.control_handler = self._on_control
        self.peer.register(self._connect_program())

    # --- plaintext phase: CONNECT + ENCRYPT -----------------------------------

    def _connect_program(self) -> Program:
        program = Program("sfs-connect", proto.SFS_CONNECT_PROGRAM, proto.SFS_VERSION)
        program.add_proc(proto.PROC_CONNECT, "CONNECT",
                         proto.ConnectArgs, proto.ConnectRes, self._connect)
        program.add_proc(proto.PROC_ENCRYPT, "ENCRYPT",
                         proto.EncryptArgs, proto.EncryptRes, self._encrypt)
        program.add_proc(proto.PROC_REKEY, "REKEY",
                         proto.RekeyArgs, proto.RekeyRes, self._rekey)
        return program

    def _connect(self, args: Record, ctx: CallContext):
        master = self.master
        self.service = args.service
        if "noenc" in list(args.extensions):
            # The paper's "SFS w/o encryption" configuration (section 4):
            # key negotiation still runs, the channel passes plaintext.
            self.encrypt_traffic = False
        hostid = args.hostid
        revocation = master._revocations.get(hostid)
        if revocation is not None:
            return proto.CONNECT_REVOKED, revocation
        forward = master._forwards.get(hostid)
        if forward is not None:
            return proto.CONNECT_REDIRECT, forward
        export_name = master.config.dispatch(args.service, hostid,
                                             list(args.extensions))
        if export_name is None and args.service != proto.SERVICE_AUTHSERV:
            return proto.CONNECT_NOENT, None
        ro = master._ro.get(hostid)
        if ro is not None and args.service in (proto.SERVICE_READONLY,
                                               proto.SERVICE_FILESERVER):
            self.ro_export = ro
            self._register_readonly_program()
            return proto.CONNECT_OK, proto.ServInfo.make(
                location=ro.path.location,
                public_key=ro.public_key_bytes,
                dialect=proto.DIALECT_RO,
                lease_duration=0,
            )
        rw = master._rw.get(hostid)
        if rw is None and export_name is not None:
            # A custom dispatch rule can route a HostID the master does
            # not actually hold a key for (e.g. an impersonation attempt,
            # or a test harness).  The client's HostID check is what
            # keeps this from mattering.
            rw = next(
                (e for e in master._rw.values() if e.name == export_name),
                None,
            )
        if rw is None and args.service == proto.SERVICE_AUTHSERV:
            # sfskey connects for SRP *before* it knows any HostID — the
            # channel key is unverified and SRP provides the mutual
            # authentication (paper section 2.4).  Route to the default
            # export's authserver.
            rw = next(iter(master._rw.values()), None)
        if rw is None:
            return proto.CONNECT_NOENT, None
        self.export = rw
        return proto.CONNECT_OK, proto.ServInfo.make(
            location=rw.path.location,
            public_key=rw.key.public_key.to_bytes(),
            dialect=proto.DIALECT_RW,
            lease_duration=int(rw.lease_duration),
        )

    def _encrypt(self, args: Record, ctx: CallContext):
        """Figure 3 steps 3-4, server side."""
        if self.export is None:
            raise RuntimeError("ENCRYPT before a successful CONNECT")
        reply = self._negotiate(args.client_pubkey, args.encrypted_keyhalves)
        # Session keys derived, reply not yet sent: the window where a
        # crash leaves the client waiting on a handshake that will
        # never complete.
        self.master.crashpoint("mid-handshake")
        return reply

    def _negotiate(self, client_pubkey: bytes, sealed_halves: bytes) -> Record:
        """Derive fresh session keys and arm a new channel (ENCRYPT/REKEY)."""
        from ..crypto.rabin import PublicKey  # local import avoids cycle

        assert self.export is not None
        client_key = PublicKey.from_bytes(client_pubkey)
        kc1, kc2 = decrypt_key_halves(self.export.key, sealed_halves)
        ks1, ks2 = make_key_halves(self.master.rng)
        self.session_keys = derive_session_keys(
            self.export.key.public_key, client_key, kc1, kc2, ks1, ks2
        )
        reply = proto.EncryptRes.make(
            encrypted_keyhalves=encrypt_key_halves(
                client_key, ks1, ks2, self.master.rng
            )
        )
        # The new channel always sits on the raw transport: during a
        # rekey the pipe's current lower may be the dead old channel.
        channel = SecureChannel(
            self.pipe.raw,
            send_key=self.session_keys.ksc,
            recv_key=self.session_keys.kcs,
            encrypt=self.encrypt_traffic,
        )
        self.channel = channel
        self.pipe.switch_after_reply(channel)
        self._register_session_programs()
        return reply

    def _rekey(self, args: Record, ctx: CallContext):
        """Re-run key negotiation for an established session.

        The request must prove continuity with a tag only the session's
        real client can mint (HMAC under the SessionID — or the one it
        replaced, in case the client never saw the last rekey's reply).
        Authnos therefore survive: the entity on the new streams is
        cryptographically the entity that authenticated on the old ones.
        """
        if self.export is None or self.session_keys is None:
            return proto.REKEY_DENIED, None
        for candidate in (self.session_keys, self._prior_session_keys):
            if candidate is not None and constant_time_eq(
                args.auth,
                rekey_auth(candidate, args.client_pubkey,
                           args.encrypted_keyhalves),
            ):
                break
        else:
            self.rekeys_denied += 1
            self._m_rekeys_denied.inc()
            return proto.REKEY_DENIED, None
        try:
            reply = self._negotiate(args.client_pubkey,
                                    args.encrypted_keyhalves)
        except (KeyNegotiationError, ValueError):
            return proto.REKEY_DENIED, None
        self._prior_session_keys = candidate
        self.rekeys += 1
        self._m_rekeys.inc()
        return proto.REKEY_OK, reply

    def _on_control(self, payload: bytes) -> None:
        """Plaintext control records: the resync handshake.

        Control records are unauthenticated by necessity (they exist for
        when the streams are broken), so they must grant nothing.  A
        forged RESYNC-REQ drops the connection to plaintext framing, so
        for the whole fallback window the session dialect is *withdrawn*
        — only SFS_CONNECT (whose REKEY proves continuity) stays
        registered.  An attacker who forges the request therefore cannot
        follow it with plaintext session calls under a guessed authno;
        forgery stays one more DoS lever.
        """
        if payload == RESYNC_REQUEST:
            if self.session_keys is None:
                return  # nothing to resynchronize yet
            self.master.crashpoint("mid-resync")
            self.resyncs_served += 1
            self._m_resyncs_served.inc()
            self.pipe.reset_to_plaintext()
            self._deregister_session_programs()
            self.pipe.send_control(RESYNC_ACK)
        # Unknown payloads (injected garbage) are ignored.

    # --- secure phase ------------------------------------------------------------

    def _register_session_programs(self) -> None:
        if self.service == proto.SERVICE_AUTHSERV:
            self.peer.register(self._authserv_program())
        else:
            self.peer.register(self._rw_program())
            assert self.export is not None
            if self not in self.export.connections:
                self.export.connections.append(self)

    def _deregister_session_programs(self) -> None:
        """Withdraw the session dialect while the pipe is in plaintext
        fallback.  A successful REKEY re-registers it (via
        :meth:`_negotiate`); until then the peer answers session calls
        with PROG_UNAVAIL instead of executing them in the clear."""
        self.peer.unregister(proto.SFS_RW_PROGRAM, proto.SFS_VERSION)
        self.peer.unregister(proto.SFS_AUTHSERV_PROGRAM, proto.SFS_VERSION)

    def _register_readonly_program(self) -> None:
        self.peer.register(self._readonly_program())

    # -- read-write dialect --

    def _rw_program(self) -> Program:
        program = Program("sfs-rw", proto.SFS_RW_PROGRAM, proto.SFS_VERSION)
        for proc, (arg_codec, res_codec) in proto.NFS_PROC_CODECS.items():
            if proc == nfs_const.NFSPROC3_NULL:
                continue
            program.add_proc(proc, nfs_const.PROC_NAMES[proc],
                             arg_codec, res_codec, self._make_relay(proc))
        program.add_proc(proto.PROC_LOGIN, "LOGIN",
                         proto.LoginArgs, proto.LoginRes, self._login)
        program.add_proc(proto.PROC_LOGOUT, "LOGOUT",
                         proto.LogoutArgs, VOID, self._logout)
        program.add_proc(proto.PROC_IDTONAME, "IDTONAME",
                         proto.IdToNameArgs, proto.IdToNameRes,
                         self._id_to_name)
        program.add_proc(proto.PROC_NAMETOID, "NAMETOID",
                         proto.NameToIdArgs, proto.NameToIdRes,
                         self._name_to_id)
        return program

    # -- libsfs id/name queries (paper section 3.3) --

    def _id_to_name(self, args: Record, ctx: CallContext):
        assert self.export is not None
        name = self.export.authserver.id_to_name(args.numeric_id,
                                                 args.is_group)
        if name is None:
            return proto.IDMAP_NOENT, None
        return proto.IDMAP_OK, name

    def _name_to_id(self, args: Record, ctx: CallContext):
        assert self.export is not None
        numeric_id = self.export.authserver.name_to_id(args.name,
                                                       args.is_group)
        if numeric_id is None:
            return proto.IDMAP_NOENT, None
        return proto.IDMAP_OK, numeric_id

    def _make_relay(self, proc: int):
        def relay(args: Record, ctx: CallContext):
            return self._relay(proc, args, ctx)
        return relay

    def _relay(self, proc: int, args: Record, ctx: CallContext):
        """Tag with credentials, translate handles, forward to local NFS."""
        export = self.export
        assert export is not None
        authno = parse_sfs_cred(ctx.cred)
        cred = self._authnos.get(authno, ANONYMOUS)
        if (proc == nfs_const.NFSPROC3_LOOKUP
                and args.what.dir == ZERO_HANDLE and args.what.name == "."):
            # Mount convention: hand out the export's root handle.
            args.what.dir = export.nfs_server.root_handle()
        else:
            try:
                handlemap.translate_args(proc, args, self._decrypt_handle)
            except BadHandle:
                return nfs_const.NFS3ERR_BADHANDLE, nfs_failure_shape(proc)
        auth_sys = AuthSys(uid=cred.uid, gid=cred.gid, gids=tuple(cred.groups))
        if proc == nfs_const.NFSPROC3_COMMIT:
            # Whatever unstable writes preceded this COMMIT are still
            # volatile; a crash here provably loses them.
            self.master.crashpoint("before-commit")
        export.active_connection = self
        try:
            _arg_codec, res_codec = proto.NFS_PROC_CODECS[proc]
            status, body = export.nfs_client.peer.call(
                nfs_const.NFS3_PROGRAM, nfs_const.NFS3_VERSION, proc,
                _arg_codec, args, res_codec, cred=auth_sys.to_auth(),
            )
        finally:
            export.active_connection = None
        if proc in (nfs_const.NFSPROC3_WRITE, nfs_const.NFSPROC3_WRITEV):
            # The write executed but its reply is not out yet; the
            # client must replay it after reconnecting (and the crash
            # itself rolls the un-committed data back).
            self.master.crashpoint("after-write")
        self._record_leases(proc, args, status, body)
        handlemap.translate_result(proc, status, body, self._encrypt_handle)
        return status, body

    def _decrypt_handle(self, handle: bytes) -> bytes:
        assert self.export is not None
        fsid, ino, generation = self.export.handles.decode(handle)
        return PlainHandles().encode(fsid, ino, generation)

    def _encrypt_handle(self, handle: bytes) -> bytes:
        assert self.export is not None
        fsid, ino, generation = PlainHandles().decode(handle)
        return self.export.handles.encode(fsid, ino, generation)

    def _record_leases(self, proc: int, args: Record, status: int,
                       body: Record) -> None:
        """Remember (plain) handles this client now caches attributes for."""
        if status != nfs_const.NFS3_OK:
            return
        for path in handlemap._ARG_HANDLES.get(proc, []):
            target = args
            for attr in path:
                target = getattr(target, attr)
            self.leased_handles.add(target)
        for path, optional in handlemap._RES_HANDLES.get(proc, []):
            target = body
            for attr in path:
                target = getattr(target, attr)
            if target is not None:
                self.leased_handles.add(target)
        if proc == nfs_const.NFSPROC3_READDIRPLUS:
            for entry in body.entries:
                if entry.name_handle is not None:
                    self.leased_handles.add(entry.name_handle)

    @property
    def alive(self) -> bool:
        """False once the underlying transport reports itself closed."""
        return getattr(self.pipe.raw, "is_open", True)

    def send_invalidate(self, encrypted_handle: bytes,
                        plain_handle: bytes) -> None:
        """Server->client lease invalidation; fire and forget."""
        self.invalidations_sent += 1
        self._m_invalidations.inc()
        self.leased_handles.discard(plain_handle)
        try:
            # One-way on purpose ("without waiting for acknowledgment"):
            # waiting would let one unreachable lease holder — crashed,
            # partitioned, or mid-resync — stall the worker serving the
            # write that triggered the fan-out.
            self.peer.call_oneway(
                proto.SFS_CB_PROGRAM, proto.SFS_VERSION, proto.PROC_INVALIDATE,
                proto.InvalidateArgs,
                proto.InvalidateArgs.make(handle=encrypted_handle),
            )
        except Exception:  # noqa: BLE001 - invalidations are best-effort
            if not self.alive and self.export is not None:
                try:
                    self.export.connections.remove(self)
                except ValueError:
                    pass
                else:
                    self.master.note_pruned()

    # -- user authentication --

    def _login(self, args: Record, ctx: CallContext):
        """Figure 4, steps 3-6: forward to the authserver, assign authno.

        Messages are opaque to this file server: enveloped messages are
        dispatched to whatever protocol plugin the authserver registered
        (possibly answering with a LOGIN_MORE challenge for another
        round); everything else is the classic signed public-key request.
        """
        export = self.export
        assert export is not None and self.session_keys is not None
        if not self._seqno_fresh(args.seqno):
            self._m_logins_denied.inc()
            return proto.LOGIN_FAILED, None
        authinfo_bytes = proto.AuthInfo.pack(self.authinfo())
        from ..crypto.sha1 import sha1
        authid = sha1(authinfo_bytes)
        from .authplugins import FAIL, MORE, OK, unwrap_envelope

        envelope = unwrap_envelope(args.authmsg)
        if envelope is not None:
            protocol_name, body = envelope
            plugin = export.authserver.protocols.get(protocol_name)
            if plugin is None:
                self._m_logins_denied.inc()
                return proto.LOGIN_FAILED, None
            state = self._auth_protocol_states.setdefault(protocol_name, {})
            outcome, value = plugin.step(body, authid, args.seqno, state)
            if outcome == MORE:
                return proto.LOGIN_MORE, value
            if outcome != OK:
                self._m_logins_denied.inc()
                return proto.LOGIN_FAILED, None
            record = value
        else:
            record = export.authserver.validate(
                authid, args.seqno, args.authmsg
            )
        if record is None:
            self._m_logins_denied.inc()
            return proto.LOGIN_FAILED, None
        authno = self._next_authno
        self._next_authno += 1
        self._authnos[authno] = Cred(
            uid=record.uid, gid=record.gid, groups=tuple(record.groups)
        )
        self._m_logins_ok.inc()
        return proto.LOGIN_OK, proto.LoginOk.make(authno=authno)

    def _logout(self, args: Record, ctx: CallContext):
        self._authnos.pop(args.authno, None)

    def authinfo(self) -> Record:
        """The AuthInfo structure for this session (both sides compute it)."""
        assert self.export is not None and self.session_keys is not None
        return proto.AuthInfo.make(
            auth_type="AuthInfo",
            service="FS",
            location=self.export.path.location,
            hostid=self.export.path.hostid,
            sessionid=self.session_keys.session_id,
        )

    def _seqno_fresh(self, seqno: int) -> bool:
        """Accept each sequence number once, within a reordering window."""
        if seqno in self._seen_seqnos:
            return False
        if seqno + _SEQNO_WINDOW < self._max_seqno:
            return False
        self._seen_seqnos.add(seqno)
        self._max_seqno = max(self._max_seqno, seqno)
        return True

    # -- authserver service (sfskey over the network) --

    def _authserv_program(self) -> Program:
        program = Program("sfs-authserv", proto.SFS_AUTHSERV_PROGRAM,
                          proto.SFS_VERSION)
        program.add_proc(proto.PROC_SRP_INIT, "SRP_INIT",
                         proto.SrpInitArgs, proto.SrpInitRes, self._srp_init)
        program.add_proc(proto.PROC_SRP_CONFIRM, "SRP_CONFIRM",
                         proto.SrpConfirmArgs, proto.SrpConfirmRes,
                         self._srp_confirm)
        program.add_proc(proto.PROC_REGISTER, "REGISTER",
                         proto.RegisterArgs, proto.RegisterRes, self._register)
        return program

    def _authserver_for_service(self) -> AuthServer | None:
        # The connect hostid selected the export; its authserver serves us.
        if self.export is not None:
            return self.export.authserver
        # Authserv-only connections name the file server's hostid too.
        for hostid, authserver in self.master._authservers.items():
            return authserver
        return None

    def _srp_init(self, args: Record, ctx: CallContext):
        authserver = self._authserver_for_service()
        if authserver is None:
            return proto.SRP_FAILED, None
        self._srp_session = authserver.srp_sessions().new_session()
        challenge = self._srp_session.init(
            args.user, int.from_bytes(args.A, "big")
        )
        if challenge is None:
            return proto.SRP_FAILED, None
        salt, B, cost = challenge
        from ..crypto.util import int_to_bytes
        return proto.SRP_OK, proto.SrpInitOk.make(
            salt=salt, B=int_to_bytes(B), cost=cost
        )

    def _srp_confirm(self, args: Record, ctx: CallContext):
        if self._srp_session is None:
            return proto.SRP_FAILED, None
        outcome = self._srp_session.confirm(args.m1)
        if outcome is None:
            return proto.SRP_FAILED, None
        m2, sealed = outcome
        return proto.SRP_OK, proto.SrpConfirmOk.make(
            m2=m2, sealed_payload=sealed
        )

    def _register(self, args: Record, ctx: CallContext):
        authserver = self._authserver_for_service()
        if authserver is None or not authserver.register(args):
            return proto.REGISTER_DENIED, None
        return proto.REGISTER_OK, None

    # -- read-only dialect --

    def _readonly_program(self) -> Program:
        program = Program("sfs-ro", proto.SFS_RO_PROGRAM, proto.SFS_VERSION)
        program.add_proc(proto.PROC_GETROOT, "GETROOT",
                         VOID, proto.GetRootRes, self._getroot)
        program.add_proc(proto.PROC_GETDATA, "GETDATA",
                         proto.GetDataArgs, proto.GetDataRes, self._getdata)
        return program

    def _getroot(self, args, ctx: CallContext):
        assert self.ro_export is not None
        return self.ro_export.store.get_root()

    def _getdata(self, args: Record, ctx: CallContext):
        assert self.ro_export is not None
        blob = self.ro_export.store.get_data(args.digest)
        if blob is None:
            return proto.GETDATA_NOENT, None
        return proto.GETDATA_OK, blob
