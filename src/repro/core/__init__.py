"""The SFS core: self-certifying pathnames and everything they enable."""

from .agent import Agent, AgentRefused
from .authserv import AuthServer, KeyDatabase, PrivateRecord, UserRecord
from .cache import ClientCaches, LeaseCache
from .channel import SecureChannel
from .client import (
    MountError,
    MountedRemoteFs,
    ReadOnlyMount,
    SecurityError,
    ServerSession,
    SfsClientDaemon,
)
from .config import DispatchConfig
from .keyneg import (
    EphemeralKeyCache,
    KeyNegotiationError,
    SessionKeys,
    derive_session_keys,
)
from .pathnames import (
    PathnameError,
    SelfCertifyingPath,
    compute_hostid,
    hostid_from_text,
    hostid_to_text,
    make_path,
    parse_mount_name,
    parse_path,
)
from .readonly import (
    ReadOnlyClient,
    ReadOnlyError,
    ReadOnlyImage,
    ReadOnlyStore,
    publish,
)
from .revocation import (
    CertificateError,
    REVOKED_LINK_TARGET,
    VerifiedRevocation,
    make_forwarding_pointer,
    make_revocation_certificate,
    verify_certificate,
)
from .agentproxy import AgentServer, RemoteAgent
from .libsfs import LibSfs, LocalAccounts
from .server import SfsServerMaster
from .splitkey import KeyHalfServer, SplitKeyAgent, SplitKeyPair
from .tcpstack import TcpConnector, TcpServerHost
from . import proto, sfskey

__all__ = [
    "Agent",
    "AgentRefused",
    "AgentServer",
    "AuthServer",
    "KeyHalfServer",
    "LibSfs",
    "LocalAccounts",
    "RemoteAgent",
    "SplitKeyAgent",
    "SplitKeyPair",
    "TcpConnector",
    "TcpServerHost",
    "CertificateError",
    "ClientCaches",
    "DispatchConfig",
    "EphemeralKeyCache",
    "KeyDatabase",
    "KeyNegotiationError",
    "LeaseCache",
    "MountError",
    "MountedRemoteFs",
    "PathnameError",
    "PrivateRecord",
    "REVOKED_LINK_TARGET",
    "ReadOnlyClient",
    "ReadOnlyError",
    "ReadOnlyImage",
    "ReadOnlyMount",
    "ReadOnlyStore",
    "SecureChannel",
    "SecurityError",
    "SelfCertifyingPath",
    "ServerSession",
    "SessionKeys",
    "SfsClientDaemon",
    "SfsServerMaster",
    "UserRecord",
    "VerifiedRevocation",
    "compute_hostid",
    "derive_session_keys",
    "hostid_from_text",
    "hostid_to_text",
    "make_forwarding_pointer",
    "make_path",
    "make_revocation_certificate",
    "parse_mount_name",
    "parse_path",
    "proto",
    "publish",
    "sfskey",
    "verify_certificate",
]
