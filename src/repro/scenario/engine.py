"""The scenario engine: compile a spec, run it, judge the wreckage.

``run_scenario`` takes a :class:`~repro.scenario.spec.ScenarioSpec`
(or a dict, or a file path) and turns it into one seeded World run in
three stages:

1. **build** — construct the world in deterministic order: control
   plane first (so machines get teed registries), then load servers
   with armed crash points, link profiles *before* anything dials,
   certificate-target servers, the fleet namespace with its untrusted
   mirrors, kernel clients whose HostID caches are pre-populated (a
   revocation storm against an empty cache proves nothing), and
   finally the load harnesses and the pre-storm integrity marker.
2. **run** — spawn the phased workload clients, the kernel clients'
   namespace-resolution loops, and the timeline driver (a non-daemon
   task that sleeps to each event's virtual time and applies it), then
   run the scheduler to completion.  Restart timers are clock timers
   scheduled relative to the crash they heal, so they fire even while
   a synchronous client reconnect owns the clock.
3. **evaluate** — total the reports, run every assertion in the spec,
   and fold the deterministic facts of the run (fired events, per-phase
   op counts and simulated latency sums, virtual duration) into a
   SHA-256 digest: two runs of the same spec and seed must produce the
   same digest, which is what the CI matrix holds us to.

The artifact written per run carries the world registry snapshot, the
scenario accounting, the assertion outcomes, and (when enabled) the
control plane's own artifact — one JSON file per (scenario, seed).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field

from ..fs.memfs import Cred
from ..kernel.world import ClientMachine, ServerMachine, World
from ..load.harness import LoadConfig, LoadHarness, LoadReport, WorkloadPhase
from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types
from ..obs.export import registry_snapshot
from ..sim.network import NetworkParameters
from ..sim.sched import Sleep
from .events import EVENT_TYPES
from .spec import ScenarioSpec, load_spec, spec_from_dict

#: Name of the pre-run data-integrity marker on every load server.
MARKER_NAME = "integrity-marker"
MARKER_SIZE = 2048


def _marker_content(seed: int) -> bytes:
    return bytes((seed + index) % 256 for index in range(MARKER_SIZE))


@dataclass
class AssertionOutcome:
    check: str
    params: dict
    failures: list[str]

    @property
    def passed(self) -> bool:
        return not self.failures


@dataclass
class ScenarioResult:
    """One finished scenario run, everything the caller needs."""

    name: str
    seed: int
    passed: bool
    duration: float                 # simulated seconds
    digest: str                     # deterministic run fingerprint
    totals: dict
    assertions: list[AssertionOutcome]
    artifact: dict = field(repr=False)
    artifact_path: str | None = None

    @property
    def failures(self) -> list[str]:
        return [f"{outcome.check}: {failure}"
                for outcome in self.assertions
                for failure in outcome.failures]


class _Runtime:
    """The live state of one scenario run; event handlers and assertion
    checks both operate on this."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.world = World(seed=spec.seed)
        self.clock = self.world.clock
        self.scheduler = self.world.enable_concurrency(seed=spec.seed)
        self.aliases: dict[str, ServerMachine] = {}
        self.load_servers: list[ServerMachine] = []
        self.extra_servers: list[ServerMachine] = []
        self.kernel_clients: list[ClientMachine] = []
        self.kernel_procs: list = []
        self.harnesses: list[LoadHarness] = []
        self.fleet = None
        #: (session, agent) pairs for the auth accounts auth0..authN-1,
        #: dialed to the primary — login_storm events draw from these.
        self.login_sessions: list[tuple] = []
        self.login_accounts: list[str] = []
        self.name_targets: dict[str, str] = {}
        self.reports: dict[str, LoadReport] = {}
        self.storm_report = LoadReport(clients=0)
        self.rollovers: list = []
        self.revocations: list = []
        self.fired: list[dict] = []
        self.blocked: list = []
        self.offered_ops = 0
        self.expected_resolves = 0
        self.marker_content = _marker_content(spec.seed)
        self.duration = 0.0
        self._adversary_index = 0
        self._storm_index = 0

    # -- services for event handlers and checks ----------------------------

    @property
    def daemons(self) -> list:
        return [machine.sfscd for machine in self.kernel_clients]

    @property
    def authservers(self) -> list:
        """Every live authserver in the world, deduplicated — the
        decision-cache epoch-bump targets for revocation fan-out (a
        retired server key may have influenced who authenticated on any
        of them, so none may keep serving pre-sweep cached decisions)."""
        servers: list = []
        for machine in self.world.servers.values():
            for export in machine.exports.values():
                authserver = export[2]
                if authserver is not None and authserver not in servers:
                    servers.append(authserver)
        return servers

    def machine(self, alias: str) -> ServerMachine:
        try:
            return self.aliases[alias]
        except KeyError:
            raise KeyError(f"scenario has no machine aliased {alias!r}") \
                from None

    def harness_for(self, alias: str) -> LoadHarness:
        machine = self.machine(alias)
        for harness in self.harnesses:
            if harness.server is machine:
                return harness
        raise KeyError(f"no load harness drives {alias!r}")

    def count(self, name: str, amount: int = 1) -> None:
        self.world.metrics.counter(name).inc(amount)

    def next_adversary(self) -> int:
        self._adversary_index += 1
        return self._adversary_index

    def next_storm(self) -> int:
        self._storm_index += 1
        return self._storm_index

    # -- build -------------------------------------------------------------

    def build(self) -> None:
        spec = self.spec
        topology = spec.topology
        if topology.control:
            self.world.enable_control(period=topology.control_period,
                                      start=topology.control_start)
        if topology.contention:
            self.world.enable_contention()
        for index in range(topology.servers):
            machine = self.world.add_server(f"s{index}.load.test")
            machine.export_fs(lease_duration=topology.lease_duration)
            self.aliases[f"s{index}"] = machine
            self.load_servers.append(machine)
        self.aliases["primary"] = self.load_servers[0]
        self._arm_crash_points()
        # Link profiles before anything dials: the WAN is in place when
        # the first session handshake crosses it.
        for alias, profile in spec.links:
            machine = self.machine(alias) if alias in self.aliases else None
            location = machine.location if machine else alias
            self.world.set_link_params(location, NetworkParameters(
                latency=float(profile.get("latency", 0.020)),
                bandwidth=float(profile.get("bandwidth", 5_000_000.0)),
                per_message_overhead=int(profile.get("overhead", 100)),
            ))
        for index in range(topology.extra_servers):
            machine = self.world.add_server(f"x{index}.cert.test")
            machine.export_fs()
            self._seed_world_readable(machine, "victim", b"certified data")
            self.aliases[f"x{index}"] = machine
            self.extra_servers.append(machine)
        self._build_fleet()
        self._build_kernel_clients()
        # Login accounts connect before the harnesses enable queueing:
        # the session handshakes run synchronously, and the established
        # connections then share the admission queue with the workload.
        self._build_login_accounts()
        self._build_harnesses()

    def _arm_crash_points(self) -> None:
        by_server: dict[str, list] = {}
        for point in self.spec.topology.crash_points:
            by_server.setdefault(point.server, []).append(point)
        for alias, points in by_server.items():
            machine = self.machine(alias)
            injector = machine.install_crash_injector(
                [(point.point, point.nth) for point in points]
            )
            recover = {point.point: point.recover_after for point in points}
            crash = injector.on_crash      # the master's own power-fail

            def on_crash(point, _machine=machine, _recover=recover,
                         _crash=crash):
                _crash(point)
                # Reboot on a clock timer relative to this crash: it
                # fires from inside Clock.advance while the victims'
                # reconnect backoff waits the outage out.
                _machine.schedule_restart(
                    self.clock.now + _recover.get(point, 0.05)
                )
                self.count("scenario.crashes")

            injector.on_crash = on_crash

    def _seed_world_readable(self, machine: ServerMachine, name: str,
                             content: bytes) -> None:
        fs = machine.fs
        owner = Cred(uid=0, gid=0)
        inode = fs.create(fs.root_ino, name, owner, mode=0o666)
        fs.write(inode.ino, 0, content, owner)
        fs.commit(inode.ino)

    def _build_fleet(self) -> None:
        topology = self.spec.topology
        if not topology.names:
            return
        self.fleet = self.world.add_fleet(1, name="fleet")
        for index in range(topology.names):
            name = f"name{index}"
            self.name_targets[name] = self.fleet.provision(name)
        self.fleet.publish(mirrors=topology.mirrors)
        for index in range(topology.mirrors):
            self.aliases[f"mirror{index}"] = \
                self.world.servers[f"mirror{index}.fleet"]
        self.aliases["ca"] = self.fleet.ca_server

    def _build_kernel_clients(self) -> None:
        topology = self.spec.topology
        for index in range(topology.kernel_clients):
            machine = self.world.add_client(f"kc{index}.client")
            proc = machine.login_user(f"user{index}", None, uid=1000 + index)
            if self.fleet is not None:
                self.fleet.attach(machine)
            # Populate the HostID cache: mount every certificate-target
            # server now, so a later revocation storm hits warm state.
            for extra in self.extra_servers:
                path = extra.path
                assert proc.read_file(f"/sfs/{path.mount_name}/victim") \
                    == b"certified data"
            self.kernel_clients.append(machine)
            self.kernel_procs.append(proc)

    def _build_login_accounts(self) -> None:
        """Provision ``topology.login_users`` accounts on the primary's
        authserver and pre-dial one session + agent per account — the
        steady-state population a login_storm event then drives."""
        count = self.spec.topology.login_users
        if not count:
            return
        from ..core import proto
        from ..core.agent import Agent
        from ..core.client import ServerSession
        from ..core.keyneg import EphemeralKeyCache
        from ..crypto.rabin import generate_key
        from ..rpc.peer import RetryPolicy

        primary = self.load_servers[0]
        authserver = primary.exports["default"][2]
        shared_keys = EphemeralKeyCache(self.world.rng)
        for index in range(count):
            name = f"auth{index}"
            key = generate_key(768, self.world.rng)
            authserver.add_account(name, 2000 + index, 100,
                                   public_key_bytes=key.public_key.to_bytes())
            link = self.world.connector(primary.location,
                                        proto.SERVICE_FILESERVER)
            session = ServerSession.connect(
                link, primary.path, shared_keys, self.world.rng,
                encrypt=self.spec.workload.encrypt,
            )
            # Storm-queue waits dwarf the default retransmit timer, and a
            # spurious retransmit escalates to a channel rekey that would
            # invalidate in-flight signed AuthIDs (see repro.auth.bench).
            session.peer.retry_policy = RetryPolicy(base_delay=0.25)
            agent = Agent(name, self.world.rng)
            agent.add_key(key)
            self.login_accounts.append(name)
            self.login_sessions.append((session, agent))

    def _build_harnesses(self) -> None:
        spec = self.spec
        workload = spec.workload
        config = LoadConfig(
            clients=workload.clients,
            ops_per_client=max(phase.ops_per_client
                               for phase in workload.phases),
            seed=spec.seed,
            think_time=workload.think_time,
            io_size=workload.io_size,
            mix=workload.mix,
            file_count=workload.file_count,
            encrypt=workload.encrypt,
            max_depth=workload.max_depth,
            workers=workload.workers,
            service_time=workload.service_time,
            contention=spec.topology.contention,
            rpc_timeout=workload.rpc_timeout,
            failover=workload.failover,
        )
        for machine in self.load_servers:
            self._seed_world_readable(machine, MARKER_NAME,
                                      self.marker_content)
            harness = LoadHarness(config, world=self.world, server=machine)
            self._wire_handle_refresh(harness)
            self.harnesses.append(harness)

    def _wire_handle_refresh(self, harness: LoadHarness) -> None:
        """After a session retargets (key rollover → new HostID → new
        handle map), re-resolve the workload handles through the fresh
        session.  OpStreams hold a live reference to ``harness.handles``,
        so the in-place mutation reaches every client immediately; the
        one op already built with a stale handle is the scenario's
        bounded casualty."""
        for session in harness.sessions:
            session.on_retarget = (
                lambda old, new, _h=harness, _s=session:
                self._refresh_handles(_h, _s)
            )

    def _refresh_handles(self, harness: LoadHarness, session) -> None:
        root = self._lookup(session, bytes(24), ".")
        fresh = [self._lookup(session, root, f"load{index}")
                 for index in range(harness.config.file_count)]
        harness.handles[:] = fresh
        self.count("scenario.handle_refreshes")

    def _lookup(self, session, dir_handle: bytes, name: str) -> bytes:
        status, body = session.call_nfs(
            nfs_const.NFSPROC3_LOOKUP,
            nfs_types.LookupArgs.make(
                what=nfs_types.DirOpArgs.make(dir=dir_handle, name=name)
            ),
            authno=0,
        )
        if status != nfs_const.NFS3_OK:
            raise RuntimeError(f"lookup({name}) failed: status {status}")
        return body.object

    def read_marker(self, harness: LoadHarness) -> bytes:
        """Re-read the integrity marker through the protocol."""
        session = harness.sessions[0]
        root = self._lookup(session, bytes(24), ".")
        handle = self._lookup(session, root, MARKER_NAME)
        status, body = session.call_nfs(
            nfs_const.NFSPROC3_READ,
            nfs_types.ReadArgs.make(file=handle, offset=0,
                                    count=MARKER_SIZE),
            authno=0,
        )
        if status != nfs_const.NFS3_OK:
            raise RuntimeError(f"marker read failed: status {status}")
        return body.data

    # -- run ---------------------------------------------------------------

    def run(self) -> None:
        workload = self.spec.workload
        phases = [WorkloadPhase(name=phase.name,
                                ops_per_client=phase.ops_per_client,
                                think_time=phase.think_time,
                                io_size=phase.io_size, mix=phase.mix)
                  for phase in workload.phases]
        for harness in self.harnesses:
            harness.spawn_phased_clients(phases, self.reports)
        self.offered_ops = (len(self.harnesses) * workload.clients
                            * sum(phase.ops_per_client for phase in phases))
        self._spawn_resolvers()
        self.scheduler.spawn(self._timeline(), name="scenario-timeline")
        start = self.clock.now
        self.blocked = self.scheduler.run()
        self.duration = self.clock.now - start
        self.offered_ops += int(self.world.metrics.counter(
            "scenario.lease_storm_writes").value)

    def _spawn_resolvers(self) -> None:
        workload = self.spec.workload
        if not (workload.resolve_rounds and self.fleet
                and self.kernel_clients):
            return
        ca_mount = self.fleet.namespace_path.mount_name
        expected = sorted(self.name_targets.items())
        self.expected_resolves = (len(self.kernel_clients)
                                  * workload.resolve_rounds * len(expected))

        def resolver(proc, hostname):
            for _round in range(workload.resolve_rounds):
                for name, target in expected:
                    yield Sleep(workload.resolve_think)
                    try:
                        got = proc.readlink(f"/sfs/{ca_mount}/{name}")
                    except Exception:  # noqa: BLE001 - a miss is a wrong link
                        got = None
                    self.count("scenario.resolves")
                    if got != target:
                        self.count("scenario.wrong_links")

        for machine, proc in zip(self.kernel_clients, self.kernel_procs):
            self.scheduler.spawn(resolver(proc, machine.hostname),
                                 name=f"resolver-{machine.hostname}")

    def _timeline(self):
        """The driver: sleep to each event's virtual time, apply it."""
        start = self.clock.now
        for event in self.spec.events:
            target = start + event.at
            if target > self.clock.now:
                yield Sleep(target - self.clock.now)
            EVENT_TYPES[event.type].fn(self, event.params)
            self.fired.append({
                "at": round(self.clock.now - start, 9),
                "type": event.type,
            })
            self.count("scenario.events_fired")
        settle = self._settle_time()
        target = start + settle
        if target > self.clock.now:
            yield Sleep(target - self.clock.now)

    def _settle_time(self) -> float:
        """Keep the timeline task alive past every scheduled after-effect
        (restart timers, adversary window closings) so the clock provably
        reaches them before the scheduler drains."""
        settle = 0.0
        for event in self.spec.events:
            tail = event.at
            tail += float(event.params.get("restart_after") or 0.0)
            tail += float(event.params.get("duration") or 0.0)
            settle = max(settle, tail)
        return settle + 0.005

    # -- evaluate ----------------------------------------------------------

    @property
    def total_completed(self) -> int:
        return (sum(report.ops_completed for report in self.reports.values())
                + self.storm_report.ops_completed)

    @property
    def total_errors(self) -> int:
        return (sum(report.op_errors for report in self.reports.values())
                + self.storm_report.op_errors)

    def evaluate(self) -> ScenarioResult:
        from .assertions import CHECKS

        for report in self.reports.values():
            report.finish(self.duration)
        self.storm_report.finish(self.duration)
        outcomes = [
            AssertionOutcome(
                check=entry.check, params=dict(entry.params),
                failures=CHECKS[entry.check].fn(self, entry.params),
            )
            for entry in self.spec.assertions
        ]
        totals = {
            "offered": self.offered_ops,
            "completed": self.total_completed,
            "errors": self.total_errors,
            "events_fired": len(self.fired),
            "duration": round(self.duration, 9),
        }
        digest = self._digest(totals)
        artifact = self._artifact(totals, outcomes, digest)
        return ScenarioResult(
            name=self.spec.name,
            seed=self.spec.seed,
            passed=all(outcome.passed for outcome in outcomes),
            duration=self.duration,
            digest=digest,
            totals=totals,
            assertions=outcomes,
            artifact=artifact,
        )

    def _phase_facts(self) -> dict:
        facts = {
            name: {
                "completed": report.ops_completed,
                "errors": report.op_errors,
                "latency_sum": round(sum(report.latencies), 9),
            }
            for name, report in sorted(self.reports.items())
        }
        if self.storm_report.ops_completed or self.storm_report.op_errors:
            facts["__storm__"] = {
                "completed": self.storm_report.ops_completed,
                "errors": self.storm_report.op_errors,
                "latency_sum": round(sum(self.storm_report.latencies), 9),
            }
        return facts

    def _digest(self, totals: dict) -> str:
        """A fingerprint over *simulated* facts only — never CPU time —
        so the same (spec, seed) digests identically on any machine."""
        facts = {
            "scenario": self.spec.name,
            "seed": self.spec.seed,
            "events": self.fired,
            "phases": self._phase_facts(),
            "totals": totals,
        }
        encoded = json.dumps(facts, sort_keys=True).encode()
        return hashlib.sha256(encoded).hexdigest()

    def _artifact(self, totals: dict, outcomes, digest: str) -> dict:
        artifact = {
            "meta": {
                "scenario": self.spec.name,
                "description": self.spec.description,
                "seed": self.spec.seed,
            },
            "scenario": {
                "events": self.fired,
                "phases": self._phase_facts(),
                "totals": totals,
                "assertions": [
                    {"check": outcome.check, "params": outcome.params,
                     "passed": outcome.passed,
                     "failures": outcome.failures}
                    for outcome in outcomes
                ],
                "digest": digest,
            },
            "metrics": registry_snapshot(
                self.world.metrics,
                meta={"source": f"scenario:{self.spec.name}"},
            ),
        }
        if self.world.control is not None:
            artifact["control"] = self.world.control.artifact()
        return artifact


def run_scenario(source, seed: int | None = None,
                 out_dir: str | None = None) -> ScenarioResult:
    """Compile and run one scenario; optionally write its artifact.

    *source* is a :class:`ScenarioSpec`, a plain dict, or a path to a
    spec file.  *seed* overrides the spec's seed (the CI matrix runs
    every scenario under several).  With *out_dir*, the run's artifact
    lands at ``<out_dir>/<name>-seed<seed>.json``.
    """
    if isinstance(source, str):
        spec = load_spec(source)
    elif isinstance(source, dict):
        spec = spec_from_dict(source)
    else:
        spec = source
    if seed is not None:
        spec = dataclasses.replace(spec, seed=int(seed))
    runtime = _Runtime(spec)
    runtime.build()
    runtime.run()
    result = runtime.evaluate()
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{spec.name}-seed{spec.seed}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(result.artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        result.artifact_path = path
    return result
