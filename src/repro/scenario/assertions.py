"""The scenario assertion vocabulary: what a run must leave behind.

Every check is a function of the finished runtime returning a list of
failure strings (empty = pass); the engine runs the spec's whole
assertion set and reports *all* failures, not just the first — a chaos
run that breaks three invariants should say so in one pass.

The vocabulary maps to the issue's invariant classes:

* scheduler drain (``drain``) — no hung tasks once the timeline and
  workload finish;
* operation accounting (``all_ops_complete``, ``min_ops_completed``,
  ``max_op_errors``) — closed-loop clients completed what they offered,
  with an explicit bound on casualties where the scenario *earns* some
  (a rollover invalidates in-flight handles, at most one per session);
* namespace integrity (``no_wrong_links``, ``revoked_unreachable``) —
  zero wrong links resolved, revoked HostIDs evicted and replaced by
  poisoned local links;
* data integrity (``integrity``) — a marker file seeded before the
  storm re-reads bit-for-bit through the protocol afterwards;
* observability predicates (``counter``) — any world-registry counter
  compared against a bound, e.g. ``session.retargets >= clients``;
* control-plane liveness (``collector_state``, ``collector_flaps``,
  ``no_dead_sources``) — the flap-vs-dead distinction the boot beacon
  exists for.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable

from ..control.collector import DEAD
from ..core.revocation import verify_certificate

_OPS = {
    ">=": operator.ge,
    ">": operator.gt,
    "==": operator.eq,
    "<=": operator.le,
    "<": operator.lt,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class CheckHandler:
    fn: Callable            # (runtime, params) -> list[str]
    allowed_params: tuple[str, ...]


def _chk_drain(rt, params: dict) -> list[str]:
    failures = [f"hung task {task.name!r} never finished"
                for task in rt.blocked]
    failures.extend(
        f"task {task.name!r} died: {task.error!r}"
        for task in rt.scheduler.tasks
        if task.failed and not task.daemon
    )
    return failures


def _chk_all_ops_complete(rt, params: dict) -> list[str]:
    failures = []
    if rt.total_errors:
        failures.append(f"{rt.total_errors} operation(s) failed")
    if rt.total_completed != rt.offered_ops:
        failures.append(
            f"completed {rt.total_completed} of {rt.offered_ops} "
            f"offered operations"
        )
    return failures


def _chk_min_ops_completed(rt, params: dict) -> list[str]:
    minimum = int(params["value"])
    if rt.total_completed < minimum:
        return [f"completed {rt.total_completed} ops, needed >= {minimum}"]
    return []


def _chk_max_op_errors(rt, params: dict) -> list[str]:
    bound = int(params["value"])
    if rt.total_errors > bound:
        return [f"{rt.total_errors} op errors, allowed at most {bound}"]
    return []


def _chk_counter(rt, params: dict) -> list[str]:
    name = str(params["name"])
    op = str(params.get("op", ">="))
    compare = _OPS.get(op)
    if compare is None:
        return [f"counter check: unknown operator {op!r}"]
    value = rt.world.metrics.counter(name).value
    bound = params["value"]
    if not compare(value, bound):
        return [f"counter {name} = {value}, wanted {op} {bound}"]
    return []


def _chk_auth_denied(rt, params: dict) -> list[str]:
    """The server-side denial count — a revoked or rotated-away user
    whose agent kept signing must show up here, cached decision or not.
    Defaults to ``>= 1``; any ``counter``-style op/value pair works."""
    op = str(params.get("op", ">="))
    compare = _OPS.get(op)
    if compare is None:
        return [f"auth_denied check: unknown operator {op!r}"]
    bound = params.get("value", 1)
    value = rt.world.metrics.counter("auth.logins_denied").value
    if not compare(value, bound):
        return [f"auth.logins_denied = {value}, wanted {op} {bound}"]
    return []


def _chk_no_wrong_links(rt, params: dict) -> list[str]:
    wrong = rt.world.metrics.counter("scenario.wrong_links").value
    failures = []
    if wrong:
        failures.append(f"{wrong} namespace resolution(s) returned a "
                        f"wrong link")
    if rt.expected_resolves:
        done = rt.world.metrics.counter("scenario.resolves").value
        if done < rt.expected_resolves:
            failures.append(f"resolver loops finished {done} of "
                            f"{rt.expected_resolves} lookups")
    return failures


def _chk_revoked_unreachable(rt, params: dict) -> list[str]:
    """Every revoked HostID must be evicted from every kernel client:
    no cached mount survives, and the local poisoned link (if the
    client ever saw the certificate) refuses future traversals."""
    from ..core.client import REVOKED_LINK_TARGET
    from ..core.pathnames import SelfCertifyingPath

    failures = []
    for cert in rt.revocations:
        verified = verify_certificate(cert)
        path = SelfCertifyingPath(verified.location, verified.hostid)
        for machine in rt.kernel_clients:
            daemon = machine.sfscd
            if verified.hostid in daemon._mounts:
                failures.append(
                    f"{machine.hostname}: revoked {path.mount_name} still "
                    f"mounted"
                )
            reader = machine.root_process()
            try:
                target = reader.readlink(f"/sfs/{path.mount_name}")
            except Exception:  # noqa: BLE001 - never cached: nothing to check
                continue
            if target != REVOKED_LINK_TARGET:
                failures.append(
                    f"{machine.hostname}: /sfs/{path.mount_name} -> "
                    f"{target!r}, not the poisoned revocation link"
                )
    return failures


def _chk_integrity(rt, params: dict) -> list[str]:
    """Re-read every load server's pre-run marker file through the
    protocol and compare bit-for-bit."""
    failures = []
    for harness in rt.harnesses:
        try:
            data = rt.read_marker(harness)
        except Exception as exc:  # noqa: BLE001 - a dead server IS the failure
            failures.append(f"{harness.location}: marker re-read failed: "
                            f"{exc}")
            continue
        if data != rt.marker_content:
            failures.append(
                f"{harness.location}: marker corrupted "
                f"({len(data)} bytes back, {len(rt.marker_content)} written)"
            )
    return failures


def _chk_collector_state(rt, params: dict) -> list[str]:
    states = rt.world.control.collector.states()
    source = rt.machine(str(params["source"])).location
    want = str(params["state"])
    got = states.get(source)
    if got != want:
        return [f"collector sees {source} as {got!r}, expected {want!r}"]
    return []


def _chk_collector_flaps(rt, params: dict) -> list[str]:
    source = rt.machine(str(params["source"])).location
    record = rt.world.control.collector.sources.get(source)
    if record is None:
        return [f"collector never registered {source}"]
    minimum = int(params.get("value", 1))
    if record.flaps < minimum:
        return [f"{source} flapped {record.flaps} time(s), expected >= "
                f"{minimum}"]
    return []


def _chk_no_dead_sources(rt, params: dict) -> list[str]:
    states = rt.world.control.collector.states()
    return [f"collector declared {name} dead" for name, state
            in states.items() if state == DEAD]


CHECKS: dict[str, CheckHandler] = {
    "drain": CheckHandler(_chk_drain, ()),
    "all_ops_complete": CheckHandler(_chk_all_ops_complete, ()),
    "min_ops_completed": CheckHandler(_chk_min_ops_completed, ("value",)),
    "max_op_errors": CheckHandler(_chk_max_op_errors, ("value",)),
    "counter": CheckHandler(_chk_counter, ("name", "op", "value")),
    "auth_denied": CheckHandler(_chk_auth_denied, ("op", "value")),
    "no_wrong_links": CheckHandler(_chk_no_wrong_links, ()),
    "revoked_unreachable": CheckHandler(_chk_revoked_unreachable, ()),
    "integrity": CheckHandler(_chk_integrity, ()),
    "collector_state": CheckHandler(_chk_collector_state,
                                    ("source", "state")),
    "collector_flaps": CheckHandler(_chk_collector_flaps,
                                    ("source", "value")),
    "no_dead_sources": CheckHandler(_chk_no_dead_sources, ()),
}
