"""ScenarioSpec: the declarative description a scenario run compiles.

A spec is plain data — a dict (or a YAML/JSON file that parses to one)
with five sections:

``topology``
    What the World looks like: load servers, certificate-target
    servers, kernel clients with agents, a CA-served namespace with
    untrusted mirrors, Medium contention, the control plane, armed
    crash points.
``links``
    Per-host link profiles applied before anything dials (latency,
    bandwidth, framing overhead) — the WAN in "WAN churn".
``workload``
    The closed-loop phased workload every load server carries, plus
    the kernel clients' namespace-resolution loop.
``events``
    The virtual-clock timeline: crashes, restarts, adversary windows,
    link re-profiling, key rollovers, revocation storms, lease storms,
    control ticks.  Times are seconds after the run starts.
``assertions``
    The post-run invariant set, from the vocabulary in
    :mod:`repro.scenario.assertions`.

Everything unknown is an error: a typo in a spec must fail loudly at
compile time, not silently weaken the scenario.  See PROTOCOLS.md §15
for the full schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..load.workload import DEFAULT_MIX, OpMix


class ScenarioSpecError(Exception):
    """The spec does not describe a runnable scenario."""


def _take(data: dict, context: str, allowed: set[str]) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ScenarioSpecError(
            f"{context}: unknown key(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _number(data: dict, key: str, context: str, default=None,
            minimum=None):
    value = data.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioSpecError(f"{context}.{key} must be a number")
    if minimum is not None and value < minimum:
        raise ScenarioSpecError(f"{context}.{key} must be >= {minimum}")
    return value


@dataclass(frozen=True)
class CrashPointSpec:
    """Arm a named crash point on a load server's injector."""

    server: str
    point: str
    nth: int
    recover_after: float    # restart this long after the crash fires


@dataclass(frozen=True)
class TopologySpec:
    servers: int = 1            # load servers s0..sN-1 ("primary" = s0)
    extra_servers: int = 0      # revocation targets x0..xM-1
    kernel_clients: int = 0     # full client machines kc0.. with agents
    names: int = 0              # names provisioned on the fleet CA
    mirrors: int = 0            # untrusted namespace mirrors
    login_users: int = 0        # auth accounts auth0.. on the primary
    contention: bool = True
    control: bool = False
    control_period: float = 0.010
    control_start: bool = True  # False: control_tick events drive it
    lease_duration: float = 30.0
    crash_points: tuple[CrashPointSpec, ...] = ()


@dataclass(frozen=True)
class PhaseSpec:
    name: str
    ops_per_client: int
    think_time: float | None = None
    io_size: int | None = None
    mix: OpMix | None = None


@dataclass(frozen=True)
class WorkloadSpec:
    clients: int = 4            # sessions per load server
    think_time: float = 0.004
    io_size: int = 2048
    file_count: int = 4
    mix: OpMix = DEFAULT_MIX
    max_depth: int = 32
    workers: int = 2
    service_time: float = 0.0005
    rpc_timeout: float = 1.0
    failover: bool = True
    encrypt: bool = True
    phases: tuple[PhaseSpec, ...] = (PhaseSpec("main", 25),)
    #: Kernel clients resolve every provisioned name this many times.
    resolve_rounds: int = 0
    resolve_think: float = 0.005


@dataclass(frozen=True)
class EventSpec:
    at: float
    type: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AssertionSpec:
    check: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSpec:
    name: str
    description: str = ""
    seed: int = 2026
    topology: TopologySpec = TopologySpec()
    links: tuple[tuple[str, dict], ...] = ()
    workload: WorkloadSpec = WorkloadSpec()
    events: tuple[EventSpec, ...] = ()
    assertions: tuple[AssertionSpec, ...] = ()


def _parse_mix(data, context: str) -> OpMix:
    if isinstance(data, OpMix):
        return data
    if not isinstance(data, dict):
        raise ScenarioSpecError(f"{context} must be a mapping of weights")
    _take(data, context, {"getattr", "read", "write"})
    try:
        return OpMix(
            getattr_weight=float(data.get("getattr", 0.0)),
            read_weight=float(data.get("read", 0.0)),
            write_weight=float(data.get("write", 0.0)),
        )
    except ValueError as exc:
        raise ScenarioSpecError(f"{context}: {exc}") from None


def _parse_topology(data: dict) -> TopologySpec:
    _take(data, "topology", {
        "servers", "extra_servers", "kernel_clients", "names", "mirrors",
        "login_users", "contention", "control", "control_period",
        "control_start", "lease_duration", "crash_points",
    })
    points = []
    for index, raw in enumerate(data.get("crash_points", [])):
        context = f"topology.crash_points[{index}]"
        if not isinstance(raw, dict):
            raise ScenarioSpecError(f"{context} must be a mapping")
        _take(raw, context, {"server", "point", "nth", "recover_after"})
        if "point" not in raw:
            raise ScenarioSpecError(f"{context} needs a 'point'")
        points.append(CrashPointSpec(
            server=str(raw.get("server", "primary")),
            point=str(raw["point"]),
            nth=int(_number(raw, "nth", context, default=1, minimum=1)),
            recover_after=float(_number(raw, "recover_after", context,
                                        default=0.05, minimum=0.0)),
        ))
    spec = TopologySpec(
        servers=int(_number(data, "servers", "topology", 1, minimum=1)),
        extra_servers=int(_number(data, "extra_servers", "topology", 0,
                                  minimum=0)),
        kernel_clients=int(_number(data, "kernel_clients", "topology", 0,
                                   minimum=0)),
        names=int(_number(data, "names", "topology", 0, minimum=0)),
        mirrors=int(_number(data, "mirrors", "topology", 0, minimum=0)),
        login_users=int(_number(data, "login_users", "topology", 0,
                                minimum=0)),
        contention=bool(data.get("contention", True)),
        control=bool(data.get("control", False)),
        control_period=float(_number(data, "control_period", "topology",
                                     0.010, minimum=1e-6)),
        control_start=bool(data.get("control_start", True)),
        lease_duration=float(_number(data, "lease_duration", "topology",
                                     30.0, minimum=0.0)),
        crash_points=tuple(points),
    )
    if spec.mirrors and not spec.names:
        raise ScenarioSpecError("topology.mirrors without topology.names: "
                                "there is no namespace to mirror")
    if (spec.names or spec.mirrors) and not spec.kernel_clients:
        raise ScenarioSpecError("a namespace needs kernel_clients to "
                                "resolve it")
    return spec


def _parse_workload(data: dict) -> WorkloadSpec:
    _take(data, "workload", {
        "clients", "think_time", "io_size", "file_count", "mix",
        "max_depth", "workers", "service_time", "rpc_timeout", "failover",
        "encrypt", "phases", "resolve_rounds", "resolve_think",
    })
    phases = []
    for index, raw in enumerate(data.get("phases", [])):
        context = f"workload.phases[{index}]"
        if not isinstance(raw, dict):
            raise ScenarioSpecError(f"{context} must be a mapping")
        _take(raw, context,
              {"name", "ops_per_client", "think_time", "io_size", "mix"})
        if "name" not in raw or "ops_per_client" not in raw:
            raise ScenarioSpecError(
                f"{context} needs 'name' and 'ops_per_client'"
            )
        phases.append(PhaseSpec(
            name=str(raw["name"]),
            ops_per_client=int(_number(raw, "ops_per_client", context,
                                       minimum=1)),
            think_time=_number(raw, "think_time", context, minimum=0.0),
            io_size=(int(_number(raw, "io_size", context, minimum=1))
                     if "io_size" in raw else None),
            mix=(_parse_mix(raw["mix"], f"{context}.mix")
                 if "mix" in raw else None),
        ))
    if len({phase.name for phase in phases}) != len(phases):
        raise ScenarioSpecError("workload.phases names must be unique")
    defaults = WorkloadSpec()
    return WorkloadSpec(
        clients=int(_number(data, "clients", "workload",
                            defaults.clients, minimum=1)),
        think_time=float(_number(data, "think_time", "workload",
                                 defaults.think_time, minimum=0.0)),
        io_size=int(_number(data, "io_size", "workload",
                            defaults.io_size, minimum=1)),
        file_count=int(_number(data, "file_count", "workload",
                               defaults.file_count, minimum=1)),
        mix=(_parse_mix(data["mix"], "workload.mix")
             if "mix" in data else DEFAULT_MIX),
        max_depth=int(_number(data, "max_depth", "workload",
                              defaults.max_depth, minimum=1)),
        workers=int(_number(data, "workers", "workload",
                            defaults.workers, minimum=1)),
        service_time=float(_number(data, "service_time", "workload",
                                   defaults.service_time, minimum=0.0)),
        rpc_timeout=float(_number(data, "rpc_timeout", "workload",
                                  defaults.rpc_timeout, minimum=1e-6)),
        failover=bool(data.get("failover", defaults.failover)),
        encrypt=bool(data.get("encrypt", defaults.encrypt)),
        phases=tuple(phases) if phases else defaults.phases,
        resolve_rounds=int(_number(data, "resolve_rounds", "workload", 0,
                                   minimum=0)),
        resolve_think=float(_number(data, "resolve_think", "workload",
                                    0.005, minimum=0.0)),
    )


def _parse_events(data: list) -> tuple[EventSpec, ...]:
    from .events import EVENT_TYPES  # late: events imports nothing of ours

    events = []
    for index, raw in enumerate(data):
        context = f"events[{index}]"
        if not isinstance(raw, dict):
            raise ScenarioSpecError(f"{context} must be a mapping")
        if "type" not in raw:
            raise ScenarioSpecError(f"{context} needs a 'type'")
        kind = str(raw["type"])
        handler = EVENT_TYPES.get(kind)
        if handler is None:
            raise ScenarioSpecError(
                f"{context}: unknown event type {kind!r}; known: "
                f"{sorted(EVENT_TYPES)}"
            )
        at = _number(raw, "at", context, default=None, minimum=0.0)
        if at is None:
            raise ScenarioSpecError(f"{context} needs an 'at' time")
        params = {key: value for key, value in raw.items()
                  if key not in ("at", "type")}
        _take(params, context, set(handler.allowed_params))
        events.append(EventSpec(at=float(at), type=kind, params=params))
    return tuple(sorted(events, key=lambda event: event.at))


def _parse_assertions(data: list) -> tuple[AssertionSpec, ...]:
    from .assertions import CHECKS  # late, same reason as events

    assertions = []
    for index, raw in enumerate(data):
        context = f"assertions[{index}]"
        if not isinstance(raw, dict):
            raise ScenarioSpecError(f"{context} must be a mapping")
        if "check" not in raw:
            raise ScenarioSpecError(f"{context} needs a 'check'")
        name = str(raw["check"])
        check = CHECKS.get(name)
        if check is None:
            raise ScenarioSpecError(
                f"{context}: unknown check {name!r}; known: "
                f"{sorted(CHECKS)}"
            )
        params = {key: value for key, value in raw.items()
                  if key != "check"}
        _take(params, context, set(check.allowed_params))
        assertions.append(AssertionSpec(check=name, params=params))
    return tuple(assertions)


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Compile a plain dict into a validated :class:`ScenarioSpec`."""
    if not isinstance(data, dict):
        raise ScenarioSpecError("a scenario spec must be a mapping")
    _take(data, "scenario", {
        "name", "description", "seed", "topology", "links", "workload",
        "events", "assertions",
    })
    if "name" not in data:
        raise ScenarioSpecError("a scenario needs a name")
    links = []
    raw_links = data.get("links", {})
    if not isinstance(raw_links, dict):
        raise ScenarioSpecError("links must map host aliases to profiles")
    for alias, profile in raw_links.items():
        context = f"links[{alias!r}]"
        if not isinstance(profile, dict):
            raise ScenarioSpecError(f"{context} must be a mapping")
        _take(profile, context, {"latency", "bandwidth", "overhead"})
        links.append((str(alias), dict(profile)))
    spec = ScenarioSpec(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        seed=int(_number(data, "seed", "scenario", 2026)),
        topology=_parse_topology(data.get("topology", {})),
        links=tuple(links),
        workload=_parse_workload(data.get("workload", {})),
        events=_parse_events(data.get("events", [])),
        assertions=_parse_assertions(data.get("assertions", [])),
    )
    _check_references(spec)
    return spec


def _known_aliases(topology: TopologySpec) -> set[str]:
    aliases = {"primary"}
    aliases.update(f"s{index}" for index in range(topology.servers))
    aliases.update(f"x{index}" for index in range(topology.extra_servers))
    aliases.update(f"mirror{index}" for index in range(topology.mirrors))
    if topology.names:
        aliases.add("ca")
    return aliases


def _check_references(spec: ScenarioSpec) -> None:
    """Cross-section validation: events may only name machines that the
    topology actually builds, and control events need a control plane."""
    aliases = _known_aliases(spec.topology)
    for event in spec.events:
        server = event.params.get("server")
        if server is not None and server not in aliases:
            raise ScenarioSpecError(
                f"event {event.type!r} at {event.at} names unknown server "
                f"{server!r}; topology provides {sorted(aliases)}"
            )
        if event.type == "control_tick" and not spec.topology.control:
            raise ScenarioSpecError(
                "control_tick event without topology.control"
            )
        if event.type == "revoke" and not spec.topology.extra_servers:
            raise ScenarioSpecError(
                "revoke event without topology.extra_servers targets"
            )
        if (event.type in ("login_storm", "user_key_change")
                and not spec.topology.login_users):
            raise ScenarioSpecError(
                f"{event.type} event without topology.login_users accounts"
            )
        if event.type == "user_key_change" and "user" not in event.params:
            raise ScenarioSpecError(
                f"user_key_change event at {event.at} needs a 'user'"
            )
    for point in spec.topology.crash_points:
        if point.server not in aliases:
            raise ScenarioSpecError(
                f"crash point on unknown server {point.server!r}"
            )
    for alias, _profile in spec.links:
        if alias not in aliases:
            raise ScenarioSpecError(f"link profile for unknown host "
                                    f"{alias!r}")


def load_spec(path: str) -> ScenarioSpec:
    """Load a spec from a ``.json`` / ``.yaml`` / ``.yml`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML ships in the image
            raise ScenarioSpecError(
                f"{path}: YAML spec but PyYAML is unavailable; use JSON"
            ) from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioSpecError(f"{path}: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioSpecError(f"{path}: spec must be a mapping")
    return spec_from_dict(data)
