"""CLI for the scenario engine.

    python -m repro.scenario list
    python -m repro.scenario run revocation-storm
    python -m repro.scenario run --all --seeds 2026,31337 --out-dir out/
    python -m repro.scenario run path/to/spec.json --seed 7

``run`` exits non-zero if any (scenario, seed) pair fails an assertion
or crashes, and names the offender loudly — the CI matrix greps for
``SCENARIO FAILED``.
"""

from __future__ import annotations

import argparse
import sys

from .engine import run_scenario
from .library import get_scenario, load_library
from .spec import ScenarioSpecError, load_spec


def _cmd_list(args) -> int:
    library = load_library()
    if not library:
        print("no scenarios found (is scenarios/ present, or is "
              "REPRO_SCENARIO_DIR set wrong?)")
        return 1
    width = max(len(name) for name in library)
    for name, spec in sorted(library.items()):
        print(f"{name:<{width}}  seed={spec.seed}  {spec.description}")
    return 0


def _resolve_specs(args) -> list:
    if args.all:
        library = load_library()
        if not library:
            raise ScenarioSpecError("no scenarios shipped to run")
        return [spec for _name, spec in sorted(library.items())]
    if not args.scenario:
        raise ScenarioSpecError("name a scenario, a spec file, or --all")
    specs = []
    for ref in args.scenario:
        if ref.endswith((".json", ".yaml", ".yml")):
            specs.append(load_spec(ref))
        else:
            specs.append(get_scenario(ref))
    return specs


def _seeds(args) -> list[int | None]:
    if args.seeds:
        return [int(part) for part in args.seeds.split(",") if part]
    if args.seed is not None:
        return [args.seed]
    return [None]       # each spec's own seed


def _cmd_run(args) -> int:
    try:
        specs = _resolve_specs(args)
    except ScenarioSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failures = 0
    for spec in specs:
        for seed in _seeds(args):
            try:
                result = run_scenario(spec, seed=seed,
                                      out_dir=args.out_dir)
            except Exception as error:  # noqa: BLE001 - report, keep going
                failures += 1
                shown = seed if seed is not None else spec.seed
                print(f"SCENARIO FAILED: {spec.name} seed={shown} "
                      f"(crashed: {error!r})")
                continue
            status = "ok" if result.passed else "FAILED"
            print(f"[{status}] {result.name} seed={result.seed} "
                  f"ops={result.totals['completed']}/"
                  f"{result.totals['offered']} "
                  f"errors={result.totals['errors']} "
                  f"events={result.totals['events_fired']} "
                  f"t={result.duration:.3f}s "
                  f"digest={result.digest[:12]}")
            if result.artifact_path:
                print(f"       artifact: {result.artifact_path}")
            if not result.passed:
                failures += 1
                print(f"SCENARIO FAILED: {result.name} seed={result.seed}")
                for failure in result.failures:
                    print(f"       - {failure}")
    if failures:
        print(f"{failures} scenario run(s) failed", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Run declarative chaos scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list shipped scenarios")
    run = sub.add_parser("run", help="run scenarios")
    run.add_argument("scenario", nargs="*",
                     help="scenario names or spec file paths")
    run.add_argument("--all", action="store_true",
                     help="run every shipped scenario")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec seed")
    run.add_argument("--seeds", default=None,
                     help="comma-separated seed list (the CI matrix)")
    run.add_argument("--out-dir", default=None,
                     help="write one artifact JSON per (scenario, seed)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
