"""The named scenario library: specs shipped under ``scenarios/``.

Every ``*.json`` (and, with PyYAML present, ``*.yaml``/``*.yml``) file
in the repository's top-level ``scenarios/`` directory is a scenario;
its ``name`` field is how the CLI and the CI matrix refer to it.  Set
``REPRO_SCENARIO_DIR`` to point somewhere else (tests, private decks).
"""

from __future__ import annotations

import os
from pathlib import Path

from .spec import ScenarioSpec, ScenarioSpecError, load_spec

ENV_VAR = "REPRO_SCENARIO_DIR"


def scenario_dir() -> Path:
    override = os.environ.get(ENV_VAR)
    if override:
        return Path(override)
    # src/repro/scenario/library.py -> repository root / scenarios
    return Path(__file__).resolve().parents[3] / "scenarios"


def _spec_files(directory: Path) -> list[Path]:
    if not directory.is_dir():
        return []
    patterns = ["*.json"]
    try:
        import yaml  # noqa: F401 - probe only
        patterns += ["*.yaml", "*.yml"]
    except ImportError:  # pragma: no cover - PyYAML ships in the image
        pass
    files: list[Path] = []
    for pattern in patterns:
        files.extend(directory.glob(pattern))
    return sorted(files)


def load_library(directory: Path | None = None) -> dict[str, ScenarioSpec]:
    """All shipped scenarios by name; a bad file is a loud error."""
    directory = directory if directory is not None else scenario_dir()
    library: dict[str, ScenarioSpec] = {}
    for path in _spec_files(directory):
        spec = load_spec(str(path))
        if spec.name in library:
            raise ScenarioSpecError(
                f"duplicate scenario name {spec.name!r} (in {path})"
            )
        library[spec.name] = spec
    return library


def get_scenario(name: str,
                 directory: Path | None = None) -> ScenarioSpec:
    library = load_library(directory)
    try:
        return library[name]
    except KeyError:
        known = ", ".join(sorted(library)) or "(none found)"
        raise ScenarioSpecError(
            f"no scenario named {name!r}; shipped scenarios: {known}"
        ) from None
