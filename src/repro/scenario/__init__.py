"""Declarative scenario engine: the chaos matrix as data.

A scenario is a spec — topology, link profiles, an event timeline, a
phased workload, and an assertion set — that compiles into one seeded
:class:`~repro.kernel.world.World` run.  The event vocabulary covers
the failure modes the paper's key-management separation has to survive
together: server crashes at named protocol windows, adversary windows
on the wire, WAN route churn, server key rollover under live clients,
revocation-certificate storms against populated HostID caches, and
lease-invalidation bursts.  The assertion vocabulary states what must
still hold afterwards: every task drained, every operation accounted
for, zero wrong links, revoked HostIDs unreachable, data bit-for-bit
intact, and the observability counters telling the same story.

Run one with :func:`run_scenario`; the shipped deck lives under the
repository's ``scenarios/`` directory and behind
``python -m repro.scenario``.  See PROTOCOLS.md §15 for the schema.
"""

from .engine import ScenarioResult, run_scenario
from .library import get_scenario, load_library, scenario_dir
from .spec import ScenarioSpec, ScenarioSpecError, load_spec, spec_from_dict

__all__ = [
    "ScenarioResult",
    "ScenarioSpec",
    "ScenarioSpecError",
    "get_scenario",
    "load_library",
    "load_spec",
    "run_scenario",
    "scenario_dir",
    "spec_from_dict",
]
