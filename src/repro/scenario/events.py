"""The scenario event vocabulary: what a timeline entry can do.

Each event type is a handler applied at its scheduled virtual time by
the engine's timeline driver.  Handlers receive the live runtime (the
built world, machines by alias, harnesses, daemons, fleet) and the
event's parameter dict — already validated against
``allowed_params`` when the spec compiled, so a handler can trust its
inputs.

The vocabulary covers the chaos matrix from the issue: crash/restart
(with automatic reboot timers scheduled *relative to the crash*, so
ordering survives a lagging driver), adversary windows that expand into
an on/off pair, WAN re-profiling of live links, server key rollover
with live clients attached, revocation-certificate storms against
populated HostID caches, lease-invalidation write bursts, and manual
control-plane ticks for liveness-flap scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..keymgmt.rollover import fan_out_revocations, revoke_export, \
    rollover_export
from ..load.workload import OpMix, OpStream
from ..rpc.peer import RpcBusy, RpcError
from ..sim.network import ChaosAdversary, NetworkParameters
from ..sim.sched import Sleep


@dataclass(frozen=True)
class EventHandler:
    fn: Callable            # (runtime, params) -> None
    allowed_params: tuple[str, ...]


def _ev_crash(rt, params: dict) -> None:
    machine = rt.machine(params.get("server", "primary"))
    if machine.master.down:
        return                  # a crash point beat the timeline to it
    machine.crash()
    rt.count("scenario.crashes")
    restart_after = params.get("restart_after")
    if restart_after is not None:
        # Relative to the crash that just happened, via a clock timer:
        # the reboot then fires from inside Clock.advance even while a
        # synchronous client reconnect owns the scheduler.
        machine.schedule_restart(rt.clock.now + float(restart_after))


def _ev_restart(rt, params: dict) -> None:
    machine = rt.machine(params.get("server", "primary"))
    if machine.master.down:
        machine.restart()
        rt.count("scenario.restarts")


def _ev_adversary(rt, params: dict) -> None:
    location = params.get("location")
    if location is not None:
        location = rt.machine(location).location
    drop = float(params.get("drop", 0.0))
    corrupt = float(params.get("corrupt", 0.0))
    duplicate = float(params.get("duplicate", 0.0))
    base_seed = (rt.spec.seed << 12) ^ (0xC4A05 + rt.next_adversary())
    counter = [0]

    def factory():
        # One rng per link so per-link fault counters are independent
        # but the whole window is a pure function of the scenario seed.
        counter[0] += 1
        return ChaosAdversary(
            random.Random(base_seed + counter[0]),
            drop_rate=drop, corrupt_rate=corrupt,
            duplicate_rate=duplicate,
        )

    rt.world.set_wire_adversary(factory, existing=True, location=location)
    rt.count("scenario.adversary_windows")
    duration = params.get("duration")
    if duration is not None:
        def lift() -> None:
            rt.world.set_wire_adversary(None, existing=True,
                                        location=location)

        rt.clock.call_at(rt.clock.now + float(duration), lift)


def _ev_wan(rt, params: dict) -> None:
    machine = rt.machine(params.get("location", "primary"))
    wan = NetworkParameters.wan()
    profile = NetworkParameters(
        latency=float(params.get("latency", wan.latency)),
        bandwidth=float(params.get("bandwidth", wan.bandwidth)),
        per_message_overhead=int(params.get("overhead",
                                            wan.per_message_overhead)),
    )
    changed = rt.world.apply_link_profile(machine.location, profile)
    rt.count("scenario.link_changes")
    rt.count("scenario.links_reprofiled", changed)


def _ev_rollover(rt, params: dict) -> None:
    alias = params.get("server", "primary")
    machine = rt.machine(alias)
    ca = None
    ca_name = params.get("ca_name")
    if params.get("update_ca"):
        if rt.fleet is None:
            raise RuntimeError("rollover update_ca without a fleet CA")
        ca = rt.fleet.ca
    result = rollover_export(
        machine, name="default", mode=params.get("mode", "forward"),
        ca=ca, ca_name=ca_name,
    )
    rt.rollovers.append(result)
    rt.count("scenario.rollovers")
    if params.get("fan_out"):
        fan_out_revocations([result.certificate], daemons=rt.daemons,
                            authservers=rt.authservers,
                            metrics=rt.world.metrics)


def _ev_revoke(rt, params: dict) -> None:
    """The revocation storm: retire several extra servers at once and
    push the certificates at every client daemon's populated cache."""
    targets = params.get("targets", "all")
    extras = rt.extra_servers
    if targets != "all":
        extras = extras[:int(targets)]
    certificates = [revoke_export(machine) for machine in extras]
    rt.revocations.extend(certificates)
    rt.count("scenario.revocations", len(certificates))
    ca = rt.fleet.ca if (params.get("via_ca") and rt.fleet) else None
    if params.get("fan_out", True) or ca is not None:
        daemons = rt.daemons if params.get("fan_out", True) else ()
        fan_out_revocations(certificates, daemons=daemons, ca=ca,
                            authservers=rt.authservers,
                            metrics=rt.world.metrics)


def _ev_lease_storm(rt, params: dict) -> None:
    """A write burst from one session: every *other* session holding
    read leases on the seeded files gets invalidation callbacks."""
    harness = rt.harness_for(params.get("server", "primary"))
    writes = int(params.get("writes", 16))
    io_size = int(params.get("io_size", 4096))
    session = harness.sessions[0]
    stream = OpStream(
        harness.handles, OpMix(getattr_weight=0.0, read_weight=0.0,
                               write_weight=1.0),
        io_size, seed=(rt.spec.seed << 8) ^ 0xB57,
    )

    def burst():
        for _write in range(writes):
            yield from harness._run_op(session, stream, rt.storm_report)

    rt.scheduler.spawn(burst(), name=f"lease-storm-{harness.location}")
    rt.count("scenario.lease_storm_writes", writes)


def _ev_control_tick(rt, params: dict) -> None:
    rt.world.control.tick()
    rt.count("scenario.control_ticks")


def _ev_login_storm(rt, params: dict) -> None:
    """Poisson login arrivals over the pre-built auth accounts.

    Each arrival is one ``login_task`` on the next account's session
    (round-robin), sharing the primary's admission queue with the
    workload.  Outcomes land in counters: ``scenario.logins_ok``,
    ``scenario.logins_denied`` (the server said no — e.g. the user was
    revoked mid-storm), ``scenario.logins_shed`` (admission backoff
    exhausted), ``scenario.login_errors`` (anything else, which a
    healthy scenario asserts to be zero).
    """
    if not rt.login_sessions:
        raise RuntimeError("login_storm without topology.login_users")
    rate = float(params.get("rate", 200.0))
    duration = float(params.get("duration", 0.1))
    rng = random.Random((rt.spec.seed << 16) ^ 0xA07 ^ rt.next_storm())

    def login_once(session, agent):
        try:
            authno = yield from session.login_task(agent)
        except RpcBusy:
            rt.count("scenario.logins_shed")
            return
        except RpcError:
            rt.count("scenario.login_errors")
            return
        rt.count("scenario.logins_ok" if authno > 0
                 else "scenario.logins_denied")

    def arrivals():
        deadline = rt.clock.now + duration
        index = 0
        while rt.clock.now < deadline:
            yield Sleep(rng.expovariate(rate))
            session, agent = rt.login_sessions[
                index % len(rt.login_sessions)
            ]
            rt.scheduler.spawn(login_once(session, agent),
                               name=f"login-storm-{index}")
            index += 1
        rt.count("scenario.login_arrivals", index)

    rt.scheduler.spawn(arrivals(), name="login-storm-arrivals")
    rt.count("scenario.login_storms")


def _ev_user_key_change(rt, params: dict) -> None:
    """Revoke or rotate one auth account's key on the live authserver.

    Either way the eviction hooks fire synchronously, so any cached
    login decision for the old key dies *before* the next validate — a
    storm running across this event must see the change immediately.
    ``mode="rotate"`` with ``update_agent`` also re-arms the account's
    agent with the new key (the user who rotated on purpose);
    without it the agent keeps signing with the dead key and is locked
    out, exactly like a revocation.
    """
    user = str(params["user"])
    mode = str(params.get("mode", "revoke"))
    machine = rt.machine(params.get("server", "primary"))
    authserver = machine.exports["default"][2]
    if mode == "revoke":
        if not authserver.revoke_user(user):
            raise RuntimeError(f"user_key_change: unknown user {user!r}")
        rt.count("scenario.users_revoked")
    elif mode == "rotate":
        from ..core.authserv import UserRecord
        from ..crypto.rabin import generate_key

        record = authserver.local_db.lookup_user(user)
        if record is None:
            raise RuntimeError(f"user_key_change: unknown user {user!r}")
        new_key = generate_key(768, rt.world.rng)
        authserver.local_db.add_user(UserRecord(
            user, record.uid, record.gid, record.groups,
            new_key.public_key.to_bytes(),
        ))
        if params.get("update_agent"):
            from ..core.agent import Agent

            index = rt.login_accounts.index(user)
            session, _old_agent = rt.login_sessions[index]
            agent = Agent(user, rt.world.rng)
            agent.add_key(new_key)
            rt.login_sessions[index] = (session, agent)
        rt.count("scenario.users_rotated")
    else:
        raise RuntimeError(f"user_key_change: unknown mode {mode!r}")
    rt.count("scenario.user_key_changes")


EVENT_TYPES: dict[str, EventHandler] = {
    "crash": EventHandler(_ev_crash, ("server", "restart_after")),
    "restart": EventHandler(_ev_restart, ("server",)),
    "adversary": EventHandler(
        _ev_adversary,
        ("duration", "drop", "corrupt", "duplicate", "location"),
    ),
    "wan": EventHandler(_ev_wan,
                        ("location", "latency", "bandwidth", "overhead")),
    "rollover": EventHandler(
        _ev_rollover, ("server", "mode", "update_ca", "ca_name", "fan_out"),
    ),
    "revoke": EventHandler(_ev_revoke, ("targets", "fan_out", "via_ca")),
    "lease_storm": EventHandler(_ev_lease_storm,
                                ("server", "writes", "io_size")),
    "control_tick": EventHandler(_ev_control_tick, ()),
    "login_storm": EventHandler(_ev_login_storm, ("rate", "duration")),
    "user_key_change": EventHandler(
        _ev_user_key_change, ("user", "mode", "server", "update_agent"),
    ),
}
