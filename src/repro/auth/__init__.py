"""The scaled auth plane: sharded authservers behind signed user images.

Lazy exports (PEP 562): :mod:`repro.core.authserv` imports
:mod:`repro.auth.cache` for the decision cache, while
:mod:`repro.auth.fleet` imports :mod:`repro.core.authserv` for the
authserver itself.  Resolving attributes on demand keeps that pair of
dependencies acyclic at import time.
"""

from __future__ import annotations

_EXPORTS = {
    "DecisionCache": ("cache", "DecisionCache"),
    "CachedDecision": ("cache", "CachedDecision"),
    "ParseCache": ("cache", "ParseCache"),
    "AuthFleet": ("fleet", "AuthFleet"),
    "AuthShard": ("fleet", "AuthShard"),
    "AuthAccount": ("fleet", "AuthAccount"),
    "synthetic_key_bytes": ("fleet", "synthetic_key_bytes"),
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    return getattr(module, attribute)


def __dir__() -> list[str]:
    return __all__
