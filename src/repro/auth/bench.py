"""The ``bench auth`` figure: the auth plane under login storms.

Three questions, three phases, all in simulated time (deterministic per
seed):

* **Storm sweep** — Poisson login arrivals (reusing the open-loop
  arrival model of :mod:`repro.load.harness`) against the sharded auth
  fleet at a 10^5-user table: does adding authserver shards raise
  aggregate login throughput when the arrival rate exceeds one shard's
  admission capacity?  The shards sit behind the standard
  :class:`RequestQueue` bounded admission control, so overload becomes
  SERVER_BUSY + client backoff (and eventually shed logins), not
  unbounded queueing.
* **Decision cache** — steady-state logins on live sessions must hit
  the fileserver decision cache (>90%), and revoking a user must yield
  *zero* successful authentications afterwards, cached decision or not.
* **eksblowfish cost sweep** — the paper's section 2.5.2 trade: the
  cost parameter doubles the password-hardening work per unit, which
  pacing guessing attacks *also* charges every honest login.  Each SRP
  login (the real ``sfskey add`` flow) is attributed per layer: modeled
  client hardening (``HARDEN_UNIT`` seconds per eksblowfish expansion,
  2^cost expansions), server service time, and network/protocol time.

The user-table sweep pads the database with synthetic users (unique,
unsignable key bytes — :func:`repro.auth.fleet.synthetic_key_bytes`),
so table *size* is swept without paying a real key generation per user;
the users actually logging in carry real keys.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core import proto, sfskey
from ..core.agent import Agent
from ..core.authserv import PrivateRecord
from ..core.client import ServerSession
from ..core.keyneg import EphemeralKeyCache
from ..kernel.world import World
from ..rpc.peer import RetryPolicy, RpcBusy, RpcError
from ..sim.sched import Sleep

#: Modeled client CPU per eksblowfish expansion (seconds of virtual
#: time); a login at cost c is charged ``HARDEN_UNIT * 2**c``.  The
#: protocol legs of the cost sweep run for real — only the hardening
#: charge is modeled, so the sweep stays deterministic across hosts.
HARDEN_UNIT = 0.0008


@dataclass
class AuthLoadConfig:
    """One storm: a user table, an arrival process, an admission queue."""

    shards: int = 4
    users: int = 100_000
    login_users: int = 16
    arrival_rate: float = 1600.0   # Poisson logins per simulated second
    duration: float = 0.5          # arrival window, simulated seconds
    seed: int = 2026
    workers: int = 2
    service_time: float = 0.004    # per-login authserver service charge
    max_depth: int = 16            # admission queue bound per shard
    encrypt: bool = True
    vnodes: int = 16
    queueing: bool = True          # admission control on the shards


@dataclass
class AuthStormReport:
    shards: int
    users: int
    arrival_rate: float
    offered: int = 0
    logins_ok: int = 0
    denied: int = 0
    shed: int = 0
    errors: int = 0
    unfinished_tasks: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    queue_rejected: int = 0
    srp_evicted: int = 0
    latencies: list[float] = field(default_factory=list)

    def finish(self, duration: float, metrics) -> None:
        self.duration = duration
        self.throughput = self.logins_ok / duration if duration > 0 else 0.0
        ordered = sorted(self.latencies)
        self.p50 = _percentile(ordered, 0.50)
        self.p95 = _percentile(ordered, 0.95)
        self.p99 = _percentile(ordered, 0.99)
        self.cache_hits = metrics.counter("auth.cache.hits").value
        self.cache_misses = metrics.counter("auth.cache.misses").value
        self.queue_rejected = metrics.counter("server.queue.rejected").value
        self.srp_evicted = metrics.counter(
            "auth.srp.sessions_evicted").value

    def row(self) -> dict:
        return {
            "shards": self.shards, "users": self.users,
            "arrival_rate": self.arrival_rate, "offered": self.offered,
            "logins_ok": self.logins_ok, "denied": self.denied,
            "shed": self.shed, "errors": self.errors,
            "duration_s": self.duration, "logins_per_second": self.throughput,
            "p50_ms": self.p50 * 1000, "p95_ms": self.p95 * 1000,
            "p99_ms": self.p99 * 1000,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "queue_rejected": self.queue_rejected,
        }


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


class AuthHarness:
    """A World with an auth fleet, a padded user table, live sessions."""

    def __init__(self, config: AuthLoadConfig) -> None:
        self.config = config
        self.world = World(seed=config.seed)
        self.scheduler = self.world.enable_concurrency(config.seed)
        self.fleet = self.world.add_auth_fleet(config.shards,
                                               vnodes=config.vnodes)
        for index in range(max(0, config.users - config.login_users)):
            self.fleet.add_user(f"user{index:07d}")
        self.accounts = [
            self.fleet.add_real_user(f"login{index:02d}", uid=3000 + index)
            for index in range(config.login_users)
        ]
        if config.queueing:
            for shard in self.fleet.shards:
                shard.server.enable_queueing(
                    max_depth=config.max_depth, workers=config.workers,
                    service_time=config.service_time,
                )
        shared_keys = EphemeralKeyCache(self.world.rng)
        #: (session, agent) per login account, dialed to the account's
        #: owning shard — login storms reuse these (the steady state a
        #: decision cache exists for).
        self.sessions: list[tuple[ServerSession, Agent]] = []
        for account in self.accounts:
            shard = self.fleet.shard_for(account.name)
            link = self.world.connector(shard.location,
                                        proto.SERVICE_FILESERVER)
            session = ServerSession.connect(
                link, shard.path, shared_keys, self.world.rng,
                encrypt=config.encrypt,
            )
            # Queue waits under a storm dwarf the default 2 ms retransmit
            # timer; a spurious retransmit escalates to channel recovery
            # (rekey), which would invalidate every in-flight login's
            # AuthID.  Give storm sessions a timer above queue-wait scale.
            session.peer.retry_policy = RetryPolicy(base_delay=0.25)
            agent = Agent(account.name, self.world.rng)
            agent.add_key(account.key)
            self.sessions.append((session, agent))

    def run_storm(self) -> AuthStormReport:
        """Open-loop Poisson login arrivals over the session pool."""
        config = self.config
        clock = self.world.clock
        report = AuthStormReport(shards=config.shards, users=config.users,
                                 arrival_rate=config.arrival_rate)
        rng = random.Random(config.seed ^ 0x517A7E)

        def login_once(session: ServerSession, agent: Agent):
            begin = clock.now
            try:
                authno = yield from session.login_task(agent)
            except RpcBusy:
                report.shed += 1
                return
            except RpcError:
                report.errors += 1
                return
            if authno > 0:
                report.logins_ok += 1
                report.latencies.append(clock.now - begin)
            else:
                report.denied += 1

        def arrivals():
            deadline = clock.now + config.duration
            index = 0
            while clock.now < deadline:
                yield Sleep(rng.expovariate(config.arrival_rate))
                session, agent = self.sessions[index % len(self.sessions)]
                self.scheduler.spawn(login_once(session, agent),
                                     name=f"login-{index}")
                index += 1
            report.offered = index

        start = clock.now
        self.scheduler.spawn(arrivals(), name="auth-arrivals")
        blocked = self.scheduler.run()
        report.unfinished_tasks = len(blocked)
        report.finish(clock.now - start, self.world.metrics)
        return report


# --- phase 2: decision cache + revocation ---------------------------------


@dataclass
class CacheReport:
    users: int
    shards: int
    sessions: int
    logins_per_session: int
    logins_ok: int = 0
    hits: int = 0
    misses: int = 0
    hit_rate: float = 0.0
    revoked_user: str = ""
    post_revocation_attempts: int = 0
    post_revocation_ok: int = 0
    other_user_ok: bool = False

    def data(self) -> dict:
        return {
            "users": self.users, "shards": self.shards,
            "sessions": self.sessions,
            "logins_per_session": self.logins_per_session,
            "logins_ok": self.logins_ok,
            "cache_hits": self.hits, "cache_misses": self.misses,
            "hit_rate": self.hit_rate,
            "revoked_user": self.revoked_user,
            "post_revocation_attempts": self.post_revocation_attempts,
            "post_revocation_ok": self.post_revocation_ok,
            "other_user_ok": self.other_user_ok,
        }


def run_cache_phase(users: int = 2000, shards: int = 2,
                    login_users: int = 8, logins_per_session: int = 40,
                    seed: int = 2026) -> CacheReport:
    """Steady-state cache hit rate, then a revocation mid-stream.

    Closed-loop synchronous logins (no admission queue — this phase
    measures the cache, not contention).  After the steady state, one
    account is revoked fleet-wide and retried: the cached decision must
    already be gone (the eviction hooks ran inside ``revoke_user``), so
    *every* post-revocation attempt fails, and an unrelated account
    still logs in.
    """
    harness = AuthHarness(AuthLoadConfig(
        shards=shards, users=users, login_users=login_users, seed=seed,
        queueing=False,
    ))
    report = CacheReport(users=users, shards=shards, sessions=login_users,
                         logins_per_session=logins_per_session)
    for session, agent in harness.sessions:
        for _ in range(logins_per_session):
            if session.login(agent) > 0:
                report.logins_ok += 1
    metrics = harness.world.metrics
    report.hits = metrics.counter("auth.cache.hits").value
    report.misses = metrics.counter("auth.cache.misses").value
    total = report.hits + report.misses
    report.hit_rate = report.hits / total if total else 0.0

    victim_index = 0
    victim = harness.accounts[victim_index]
    report.revoked_user = victim.name
    harness.fleet.revoke_user(victim.name)
    session, agent = harness.sessions[victim_index]
    report.post_revocation_attempts = 5
    for _ in range(report.post_revocation_attempts):
        if session.login(agent) > 0:
            report.post_revocation_ok += 1
    other_session, other_agent = harness.sessions[victim_index + 1]
    report.other_user_ok = other_session.login(other_agent) > 0
    return report


# --- phase 3: the eksblowfish cost sweep ----------------------------------


def run_cost_sweep(costs=(2, 4, 6), seed: int = 2026,
                   service_time: float = 0.002) -> list[dict]:
    """Login latency per eksblowfish cost, attributed per layer.

    Each cost gets a fresh World: one server, one enrolled user, one
    real ``sfskey add`` (SRP over the authserv service, through the
    admission queue).  The protocol legs are measured in simulated
    time; the client-side hardening is charged to the virtual clock as
    ``HARDEN_UNIT * 2**cost`` (see :data:`HARDEN_UNIT`).
    """
    rows = []
    for cost in costs:
        world = World(seed=seed)
        server = world.add_server("files.test")
        server.export_fs()
        server.enable_queueing(max_depth=8, workers=1,
                               service_time=service_time)
        authserver = server.authserver
        password = b"correct horse"
        enrolment = sfskey.prepare_enrolment(
            "traveller", password, world.rng, cost=cost)
        record = authserver.add_account(
            "traveller", 4000, 100,
            public_key_bytes=enrolment.key.public_key.to_bytes(),
        )
        authserver.local_db.add_user(record, PrivateRecord(
            srp_salt=enrolment.srp_salt,
            srp_verifier=enrolment.srp_verifier,
            srp_cost=enrolment.srp_cost,
            encrypted_privkey=enrolment.encrypted_privkey,
        ))
        agent = Agent("traveller", world.rng)
        clock = world.clock
        begin = clock.now
        result = sfskey.add(world.connector, agent, "traveller",
                            "files.test", password, world.rng)
        protocol = clock.now - begin
        harden = HARDEN_UNIT * (1 << cost)
        clock.advance(harden)
        assert result.key is not None and agent.key_count == 1
        service = 2 * service_time  # SRP_INIT + SRP_CONFIRM service legs
        rows.append({
            "cost": cost,
            "expansions": 1 << cost,
            "harden_ms": harden * 1000,
            "service_ms": service * 1000,
            "network_ms": max(0.0, protocol - service) * 1000,
            "protocol_ms": protocol * 1000,
            "total_ms": (protocol + harden) * 1000,
        })
    return rows
