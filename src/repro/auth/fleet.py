"""The scaled auth plane: sharded authservers behind signed user images.

The paper's authserver split (section 2.5) means user authentication is
"simply another program" — so it scales the same way the file tier did
in :mod:`repro.fleet`: run N authserver machines in one World and shard
the user database across them by consistent hashing
(:class:`repro.fleet.sharding.HashRing`) over *user names*.

Each shard's **public** database half — users, credentials, public
keys; never SRP verifiers or encrypted private keys — is serialized
into a file tree (``/users/<name>``, one marshaled :data:`AuthDbEntry`
per user) and published as a signed read-only image with
:func:`repro.core.readonly.publish`, exactly the mechanism
certification authorities use.  That realizes the paper's claim that "a
server can import a centrally-maintained list of users over SFS while
also keeping a few guest accounts in a local database": a file server
calls :meth:`AuthFleet.import_into`, which pulls every shard's image
through a fully verifying :class:`~repro.core.readonly.ReadOnlyClient`
(pathname-committed key, root signature, per-blob digests, rollback
serial) and attaches the result to the server's own authserver as a
read-only :class:`~repro.core.authserv.KeyDatabase`.

Key change and revocation stay coherent with the fileserver
decision cache (PROTOCOLS.md section 16): mutating a user's key on its
owning shard republishes that shard's image *incrementally* and
synchronously refreshes every importer through the verified image —
and because the imported databases fire their eviction hooks as records
are replaced or removed, every cached login decision proved by the dead
key is gone before the next validate call anywhere in the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

from ..core.authserv import AuthServer, KeyDatabase, UserRecord
from ..core.pathnames import SelfCertifyingPath, hostid_to_text
from ..core.readonly import ReadOnlyClient, ReadOnlyImage, ReadOnlyStore, \
    publish
from ..crypto.rabin import PrivateKey, generate_key
from ..crypto.sha1 import sha1
from ..fleet.sharding import DEFAULT_VNODES, HashRing
from ..fs.memfs import MemFs
from ..rpc.xdr import Array, Opaque, String, Struct, UInt32

DEFAULT_KEY_BITS = 768

#: One user's public record as stored in a shard's signed image.
AuthDbEntry = Struct("AuthDbEntry", [
    ("user", String(255)),
    ("uid", UInt32),
    ("gid", UInt32),
    ("groups", Array(UInt32, 64)),
    ("public_key", Opaque()),
])


def synthetic_key_bytes(name: str) -> bytes:
    """A deterministic stand-in public key for population-scale tables.

    Sweeping user-table size to 10^6 cannot pay a real key generation
    per user; what the sweep measures — sharding, lookup, publication,
    cache behavior — only needs each user's key bytes to be unique and
    stable.  The ``synthetic:`` prefix can never parse as a real Rabin
    key, so a synthetic user can appear in databases and images but can
    never actually sign a login.
    """
    return b"synthetic:" + sha1(b"auth-fleet-user:" + name.encode())


@dataclass
class AuthAccount:
    """A provisioned account with a real key pair (it can log in)."""

    name: str
    uid: int
    gid: int
    key: PrivateKey


@dataclass
class AuthShard:
    """One authserver machine of the fleet."""

    server: object            # kernel.world.ServerMachine
    path: SelfCertifyingPath
    export: str

    @property
    def location(self) -> str:
        return self.server.location

    @property
    def hostid_text(self) -> str:
        return hostid_to_text(self.path.hostid)

    @property
    def authserver(self) -> AuthServer:
        return self.server.exports[self.export][2]


class AuthFleet:
    """N sharded authservers with signed, importable user databases."""

    def __init__(self, world, count: int, name: str = "auth",
                 key_bits: int = DEFAULT_KEY_BITS,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if count < 1:
            raise ValueError("an auth fleet needs at least one shard")
        self.world = world
        self.name = name
        self.key_bits = key_bits
        self.shards: list[AuthShard] = []
        self.ring = HashRing(vnodes=vnodes)
        self._by_hostid: dict[str, AuthShard] = {}
        #: user name -> owning shard location (provisioning record).
        self.assignments: dict[str, str] = {}
        self._next_uid = 10000
        self._db_keys: dict[str, PrivateKey] = {}
        self._images: dict[str, ReadOnlyImage] = {}
        self._serials: dict[str, int] = {}
        self._imports: dict[str, KeyDatabase] = {}
        self._importers: list[AuthServer] = []
        metrics = world.metrics
        self._m_shards = metrics.gauge("auth.fleet.shards")
        self._m_users = metrics.counter("auth.fleet.users")
        self._m_publications = metrics.counter("auth.fleet.publications")
        self._m_published_blobs = metrics.counter(
            "auth.fleet.published_blobs")
        self._m_imports = metrics.counter("auth.fleet.imports")
        self._m_key_changes = metrics.counter("auth.fleet.key_changes")
        self._m_revocations = metrics.counter("auth.fleet.revocations")
        for index in range(count):
            self.add_shard(f"auth{index}.{self.name}")

    # --- topology ---------------------------------------------------------

    def add_shard(self, location: str) -> AuthShard:
        server = self.world.add_server(location)
        path = server.export_fs(name=f"{self.name}-shard",
                                key_bits=self.key_bits)
        shard = AuthShard(server, path, f"{self.name}-shard")
        self.shards.append(shard)
        self.ring.add(shard.hostid_text)
        self._by_hostid[shard.hostid_text] = shard
        self._m_shards.set(len(self.shards))
        return shard

    def shard_for(self, user: str) -> AuthShard:
        """The shard whose database owns *user* (consistent hashing)."""
        return self._by_hostid[self.ring.lookup(user)]

    # --- provisioning -----------------------------------------------------

    def add_user(self, name: str, uid: int | None = None, gid: int = 100,
                 groups: tuple[int, ...] = (),
                 public_key_bytes: bytes | None = None) -> UserRecord:
        """Provision one account on its ring-assigned shard.

        Without *public_key_bytes* the account gets a deterministic
        synthetic key — population-scale tables without
        population-scale key generation (see :func:`synthetic_key_bytes`).
        """
        if uid is None:
            uid = self._next_uid
            self._next_uid += 1
        record = UserRecord(
            name, uid, gid, tuple(groups),
            public_key_bytes if public_key_bytes is not None
            else synthetic_key_bytes(name),
        )
        shard = self.shard_for(name)
        shard.authserver.local_db.add_user(record)
        self.assignments[name] = shard.location
        self._m_users.inc()
        return record

    def add_real_user(self, name: str, uid: int | None = None,
                      gid: int = 100,
                      key_bits: int = DEFAULT_KEY_BITS) -> AuthAccount:
        """Provision an account with a real key pair (it can log in)."""
        key = generate_key(key_bits, self.world.rng)
        record = self.add_user(
            name, uid=uid, gid=gid,
            public_key_bytes=key.public_key.to_bytes(),
        )
        return AuthAccount(name, record.uid, gid, key)

    def placement(self) -> dict[str, int]:
        """How many provisioned users each shard location owns."""
        counts = {shard.location: 0 for shard in self.shards}
        for location in self.assignments.values():
            counts[location] += 1
        return counts

    # --- publication ------------------------------------------------------

    def publish(self) -> dict[str, ReadOnlyImage]:
        """Sign every shard's public database into a read-only image.

        Each shard's image is signed by a dedicated database key (not
        the shard's file-service key) and registered as a read-only
        export on the shard's own server, so any SFS client can fetch
        the user list through the verifying read-only dialect.
        Publication is incremental per shard: the content-addressed
        store carries unchanged user entries over from the previous
        image, so republishing after one key change pays for the entry
        that moved, not the whole table.
        """
        for shard in self.shards:
            self._publish_shard(shard)
            if shard.location in self._imports:
                self._refresh_import(shard)
        return dict(self._images)

    def _publish_shard(self, shard: AuthShard) -> ReadOnlyImage:
        from ..fs import pathops

        db_key = self._db_keys.get(shard.location)
        if db_key is None:
            db_key = generate_key(self.key_bits, self.world.rng)
            self._db_keys[shard.location] = db_key
        fs = MemFs(fsid=0x5A0)
        pathops.mkdirs(fs, "/users")
        public = shard.authserver.local_db
        for user in public.users():
            record = public.lookup_user(user)
            blob = AuthDbEntry.pack(AuthDbEntry.make(
                user=record.user, uid=record.uid, gid=record.gid,
                groups=list(record.groups),
                public_key=record.public_key_bytes,
            ))
            pathops.write_file(fs, f"/users/{user}", blob)
        serial = self._serials.get(shard.location, 0) + 1
        image = publish(fs, db_key, shard.location, serial=serial,
                        previous=self._images.get(shard.location))
        self._images[shard.location] = image
        self._serials[shard.location] = serial
        shard.server.master.add_ro_export(image, name=f"{self.name}-db")
        self._m_publications.inc()
        self._m_published_blobs.inc(
            image.new_blobs if serial > 1 else len(image.store))
        return image

    # --- import into file servers ----------------------------------------

    def import_into(self, machine, export: str = "default") -> int:
        """Attach every shard's published user database to *machine*.

        The file server's authserver gains one read-only
        :class:`KeyDatabase` per shard, filled through a verifying
        read-only client; the databases are shared across importers, so
        a key change refreshed once evicts stale cached decisions on
        every file server at once.  Returns the number of users
        imported.
        """
        if not self._images:
            self.publish()
        authserver = machine.exports[export][2]
        imported = 0
        for shard in self.shards:
            db = self._imports.get(shard.location)
            if db is None:
                db = KeyDatabase(f"{shard.location}-import", writable=False)
                self._imports[shard.location] = db
                self._refresh_import(shard)
            if db not in authserver.databases:
                authserver.attach_database(db)
                imported += len(db.users())
        if authserver not in self._importers:
            self._importers.append(authserver)
        self._m_imports.inc()
        return imported

    def _refresh_import(self, shard: AuthShard) -> None:
        """Mirror a shard's signed image into its shared imported DB.

        The image is re-read through :class:`ReadOnlyClient` — the same
        verification an untrusted mirror's client performs — against a
        replicated (bytes-only) copy.  Records are diffed in place:
        replaced keys and removed users fire the imported database's
        eviction hooks synchronously, which is what evicts stale cached
        login decisions on every attached file server *before* the next
        validate call can run.
        """
        image = self._images[shard.location].replicate()
        store = ReadOnlyStore(image)

        def fetch_root():
            res = store.get_root()
            return SimpleNamespace(
                root_bytes=res.root_bytes, signature=res.signature,
                public_key=image.public_key_bytes,
            )

        client = ReadOnlyClient(
            image.path(), fetch_root, store.get_data,
            min_serial=self._serials[shard.location],
        )
        db = self._imports[shard.location]
        users_digest = client.resolve_path("users")
        seen: set[str] = set()
        for name, digest in client.listdir(users_digest):
            entry = AuthDbEntry.unpack(client.read_file(digest))
            seen.add(entry.user)
            existing = db.lookup_user(entry.user)
            if (existing is not None
                    and existing.public_key_bytes == entry.public_key
                    and existing.uid == entry.uid
                    and existing.gid == entry.gid
                    and existing.groups == tuple(entry.groups)):
                continue
            db.add_user(UserRecord(
                entry.user, entry.uid, entry.gid, tuple(entry.groups),
                entry.public_key,
            ))
        for name in [user for user in db.users() if user not in seen]:
            db.remove_user(name)

    # --- key change and revocation ----------------------------------------

    def change_user_key(self, name: str,
                        new_public_key_bytes: bytes | None = None,
                        ) -> UserRecord:
        """Rotate *name*'s key on its owning shard and everywhere after.

        The shard's local database replaces the record (its own decision
        cache evicts the old key synchronously); if the shard has
        published, the image is republished incrementally and every
        imported copy refreshed, so the replaced key stops
        authenticating fleet-wide before the next validate.
        """
        shard = self.shard_for(name)
        record = shard.authserver.local_db.lookup_user(name)
        if record is None:
            raise KeyError(f"no user {name!r} on shard {shard.location}")
        if new_public_key_bytes is None:
            new_public_key_bytes = b"synthetic:" + sha1(
                b"rotated:" + record.public_key_bytes)
        replacement = UserRecord(record.user, record.uid, record.gid,
                                 record.groups, new_public_key_bytes)
        shard.authserver.local_db.add_user(replacement)
        self._republish_and_refresh(shard)
        self._m_key_changes.inc()
        return replacement

    def revoke_user(self, name: str) -> bool:
        """Remove *name* fleet-wide; cached decisions die first."""
        shard = self.shard_for(name)
        removed = shard.authserver.revoke_user(name)
        self.assignments.pop(name, None)
        self._republish_and_refresh(shard)
        if removed:
            self._m_revocations.inc()
        return removed

    def _republish_and_refresh(self, shard: AuthShard) -> None:
        if shard.location not in self._images:
            return
        self._publish_shard(shard)
        if shard.location in self._imports:
            self._refresh_import(shard)

    @property
    def importers(self) -> list[AuthServer]:
        return list(self._importers)
