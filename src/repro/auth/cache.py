"""The fileserver auth-decision cache: authid -> verified credentials.

The paper's authserver split (section 2.5) keeps user knowledge out of
the file server, but it also puts a full key→credentials resolution —
parse the key, walk every attached database — on every login.  At
fleet scale (a file server importing many shards' user databases) that
resolution dominates the login hot path, so file servers remember the
*decision*: once an authid (the SHA-1 of the session's AuthInfo) has
been proven to belong to a signing key, later logins on the same
session map straight to the proven credentials.

What a hit does **not** skip is the signature verification itself:
public keys are public, so a cached decision keyed on key bytes alone
would hand out credentials to anyone able to send on the session.
:meth:`AuthServer.validate` verifies the Rabin signature (a modular
squaring — cheap by construction, which is why the paper chose Rabin)
on every request, cached or not; only then may the cache substitute
for the database walk.

A cached decision is only safe while the signing key is still live, so
the cache supports two invalidation paths, both ordered strictly before
the next ``validate`` call can observe stale state:

* **Targeted eviction** (``evict_key_hash``): key rotation or user
  revocation names the dead key hash; every decision proved by that key
  dies synchronously.  :class:`~repro.core.authserv.KeyDatabase` fires
  these through its eviction hooks the moment a key stops resolving.
* **Epoch bump** (``bump_epoch``): revocation fan-out
  (:func:`repro.keymgmt.rollover.fan_out_revocations`) does not know
  which cached authids a revoked server key may have influenced, so it
  advances the cache epoch instead; entries stamped with an older epoch
  lazily miss on their next lookup.

The cache is a bounded LRU — a login storm across many sessions cannot
grow fileserver state without limit.  Eviction statistics are plain
ints here; the owning :class:`~repro.core.authserv.AuthServer` mirrors
them into its metrics registry as ``auth.cache.*``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

DEFAULT_CAPACITY = 4096


@dataclass
class CachedDecision:
    """One proven login: this key hash authenticated this authid."""

    key_hash: bytes
    record: Any
    epoch: int


class DecisionCache:
    """Bounded authid -> :class:`CachedDecision` map with invalidation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("decision cache capacity must be positive")
        self.capacity = capacity
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[bytes, CachedDecision] = OrderedDict()
        self._by_key_hash: dict[bytes, set[bytes]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, authid: bytes) -> CachedDecision | None:
        """The live decision for *authid*, or None.

        An entry stamped with an older epoch is dead (some revocation
        happened since it was stored); it is dropped here so the caller
        re-verifies from scratch.
        """
        entry = self._entries.get(authid)
        if entry is None:
            self.misses += 1
            return None
        if entry.epoch != self.epoch:
            self._drop(authid)
            self.evictions += 1
            self.misses += 1
            return None
        self._entries.move_to_end(authid)
        self.hits += 1
        return entry

    def store(self, authid: bytes, key_hash: bytes, record: Any) -> None:
        if authid in self._entries:
            self._drop(authid)
        self._entries[authid] = CachedDecision(key_hash, record, self.epoch)
        self._by_key_hash.setdefault(key_hash, set()).add(authid)
        while len(self._entries) > self.capacity:
            oldest, _ = next(iter(self._entries.items()))
            self._drop(oldest)
            self.evictions += 1

    def evict_key_hash(self, key_hash: bytes) -> int:
        """Kill every decision proved by *key_hash*; returns the count."""
        authids = self._by_key_hash.pop(key_hash, None)
        if not authids:
            return 0
        count = 0
        for authid in list(authids):
            if authid in self._entries:
                del self._entries[authid]
                count += 1
        self.evictions += count
        return count

    def bump_epoch(self) -> None:
        """Invalidate everything, lazily: old-epoch entries miss."""
        self.epoch += 1

    def _drop(self, authid: bytes) -> None:
        entry = self._entries.pop(authid)
        peers = self._by_key_hash.get(entry.key_hash)
        if peers is not None:
            peers.discard(authid)
            if not peers:
                del self._by_key_hash[entry.key_hash]


class ParseCache:
    """Bounded LRU memo for a deterministic parse function.

    Used to amortize ``PublicKey.from_bytes`` across a connection burst:
    the same agent key arrives in every AuthMsg of the burst, but only
    the first occurrence pays the parse.  Failures are not cached (a
    malformed key must keep failing loudly, and garbage keys must not
    occupy slots).
    """

    def __init__(self, parse: Callable[[bytes], Any],
                 capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("parse cache capacity must be positive")
        self._parse = parse
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[bytes, Any] = OrderedDict()

    def get(self, raw: bytes) -> Any:
        cached = self._entries.get(raw)
        if cached is not None:
            self._entries.move_to_end(raw)
            self.hits += 1
            return cached
        self.misses += 1
        value = self._parse(raw)
        self._entries[raw] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return value
