"""SFS: a secure network file system with self-certifying pathnames.

A from-scratch Python reproduction of *Separating key management from
file system security* (Mazieres, Kaminsky, Kaashoek, Witchel — SOSP '99),
including every substrate the paper's system depends on: the
cryptographic primitives (SHA-1, ARC4, Blowfish/eksblowfish,
Rabin-Williams, SRP, the DSS PRG), XDR and Sun RPC, NFS version 3 with an
in-memory Unix file system, a simulated kernel/disk/network, and the SFS
protocols themselves — self-certifying pathnames, the secure channel,
modular user authentication, agents, the authserver, revocation, the
read-only dialect, and the key-management schemes built on top.

Quick start::

    from repro import World

    world = World()
    server = world.add_server("sfs.lcs.mit.edu")
    path = server.export_fs()
    alice = server.add_user("alice", uid=1000)
    client = world.add_client("laptop")
    proc = client.login_user("alice", alice.key, uid=1000)
    proc.makedirs(f"{path}/home/alice")
    proc.write_file(f"{path}/home/alice/hello", b"self-certifying!")
"""

from . import core, crypto, fs, kernel, nfs3, rpc, sim
from .core import (
    Agent,
    AuthServer,
    MountError,
    SecurityError,
    SelfCertifyingPath,
    SfsClientDaemon,
    SfsServerMaster,
    compute_hostid,
    make_path,
    parse_path,
    publish,
)
from .kernel import ClientMachine, Kernel, KernelError, Process, ServerMachine, World

__version__ = "1.0.0"

__all__ = [
    "Agent",
    "AuthServer",
    "ClientMachine",
    "Kernel",
    "KernelError",
    "MountError",
    "Process",
    "SecurityError",
    "SelfCertifyingPath",
    "ServerMachine",
    "SfsClientDaemon",
    "SfsServerMaster",
    "World",
    "__version__",
    "compute_hostid",
    "core",
    "crypto",
    "fs",
    "kernel",
    "make_path",
    "nfs3",
    "parse_path",
    "publish",
    "rpc",
    "sim",
]
