"""Key-management schemes built *on top of* SFS (paper section 2.4).

None of these touch the file system core — that is the paper's thesis.
Each module realizes one scheme with ordinary file operations and agent
hooks: manual links, secure links and bookmarks, certification
authorities (read-only link farms), certification paths, password
authentication via sfskey/SRP, and external-PKI bridges.
"""

from . import bookmarks, ca, certpaths, extpki, manual, rollover
from .bookmarks import BookmarkError, bookmark, cd_bookmark, secure_pwd
from .ca import CertificationAuthority
from .certpaths import (
    prepend_directory,
    set_certification_path,
    set_revocation_directories,
)
from .extpki import SslBridgeResolver, SslDirectory
from .manual import install_link, make_secure_link, resolve_secure_link
from .rollover import (
    RolloverResult,
    fan_out_revocations,
    revoke_export,
    rollover_export,
)

__all__ = [
    "BookmarkError",
    "CertificationAuthority",
    "RolloverResult",
    "fan_out_revocations",
    "revoke_export",
    "rollover_export",
    "rollover",
    "SslBridgeResolver",
    "SslDirectory",
    "bookmark",
    "bookmarks",
    "ca",
    "cd_bookmark",
    "certpaths",
    "extpki",
    "install_link",
    "make_secure_link",
    "manual",
    "prepend_directory",
    "resolve_secure_link",
    "secure_pwd",
    "set_certification_path",
    "set_revocation_directories",
]
