"""Certification paths (paper section 2.4).

"A user can give his agent a list of directories containing symbolic
links, for example /verisign, /sfs-bookmarks, /work/trusted-hosts.  When
the user accesses a non-self-certifying pathname in /sfs, the agent maps
the name by looking in each directory of the certification path in
sequence."

The mechanics live in :meth:`repro.core.agent.Agent.resolve`; this module
provides the user-facing configuration helpers and demonstrates chaining
("people can bootstrap one key management mechanism using another": a
certification path can point *into* another SFS file system, so
resolving a name through it securely traverses a CA).
"""

from __future__ import annotations

from ..core.agent import Agent


def set_certification_path(agent: Agent, directories: list[str]) -> None:
    """Configure the ordered list of link directories the agent consults."""
    agent.certpaths = list(directories)


def prepend_directory(agent: Agent, directory: str) -> None:
    agent.certpaths.insert(0, directory)


def set_revocation_directories(agent: Agent, directories: list[str]) -> None:
    """Directories to check for revocation certificates before mounting.

    Typically CA-served, e.g. ``["/verisign/revocations"]``; the agent
    checks ``<dir>/<HostID>`` for a self-authenticating certificate.
    "Even users who distrust Verisign and would not submit a revocation
    certificate to them can still check Verisign for other people's
    revocations."
    """
    agent.revocation_dirs = list(directories)
