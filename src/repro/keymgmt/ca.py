"""Certification authorities as file systems (paper section 2.4).

"SFS certification authorities are nothing more than ordinary file
systems serving symbolic links. ... Unlike traditional certification
authorities, SFS certification authorities get queried interactively.
This simplifies certificate revocation, but also places high integrity,
availability, and performance needs on the servers" — which is why CAs
serve the read-only dialect: contents proven by precomputed signatures,
replicable on untrusted machines, no online private key.

A :class:`CertificationAuthority` builds the link farm (and optionally a
revocation directory full of self-authenticating revocation
certificates), publishes it signed, and hands out images for mirrors.
"""

from __future__ import annotations

import random

from ..core.pathnames import SelfCertifyingPath, hostid_to_text, make_path
from ..core.readonly import ReadOnlyImage, publish
from ..core.revocation import verify_certificate, CertificateError
from ..core import proto
from ..crypto.rabin import PrivateKey, generate_key
from ..fs.memfs import MemFs
from ..rpc.xdr import Record


class CertificationAuthority:
    """A CA: a tree of name -> self-certifying-pathname symlinks."""

    def __init__(self, location: str, rng: random.Random,
                 key: PrivateKey | None = None, key_bits: int = 768) -> None:
        self.location = location
        self.key = key or generate_key(key_bits, rng)
        self.fs = MemFs(fsid=0xCA)
        self._serial = 0
        self._last_image: ReadOnlyImage | None = None
        from ..fs import pathops
        self._pathops = pathops
        pathops.mkdirs(self.fs, "/revocations")

    @property
    def path(self) -> SelfCertifyingPath:
        return make_path(self.location, self.key.public_key)

    # --- certification = creating symlinks -----------------------------------

    def certify(self, name: str, target: SelfCertifyingPath | str) -> None:
        """Certify that *name* belongs to *target*.

        "if Verisign acted as an SFS certification authority ... this
        file system would contain symbolic links to other SFS file
        systems", e.g. ``/verisign/acme -> /sfs/acme.com:HOSTID``.
        """
        self._pathops.symlink(self.fs, "/" + name, str(target))

    def decertify(self, name: str) -> None:
        inode = self._pathops.resolve(self.fs, "/", follow=False)
        from ..fs.memfs import Cred
        self.fs.remove(inode.ino, name, Cred(0, 0))

    # --- revocations ------------------------------------------------------------

    def publish_revocation(self, certificate: Record) -> str:
        """File a revocation certificate under /revocations/<HostID>.

        Certificates are self-authenticating, so the CA accepts them
        from anyone — it verifies the certificate, not the submitter:
        "even someone without permission to obtain ordinary public key
        certificates from Verisign could still submit revocation
        certificates."
        """
        verified = verify_certificate(certificate)  # raises if forged
        if not verified.is_revocation:
            raise CertificateError("not a revocation certificate")
        name = hostid_to_text(verified.hostid)
        blob = proto.SignedCertificate.pack(certificate)
        self._pathops.write_file(self.fs, f"/revocations/{name}", blob)
        return f"/revocations/{name}"

    # --- publication --------------------------------------------------------------

    def publish_image(self) -> ReadOnlyImage:
        """Sign the current tree into a servable read-only image.

        Publication is incremental across calls: unchanged blobs carry
        over from the previous image without re-serialization, so a
        fleet republishing its namespace after certifying one more name
        (or growing by a shard) pays for the links that moved, not the
        whole link farm — :attr:`ReadOnlyImage.new_blobs` counts what
        actually changed.
        """
        self._serial += 1
        image = publish(self.fs, self.key, self.location,
                        serial=self._serial, previous=self._last_image)
        self._last_image = image
        return image
