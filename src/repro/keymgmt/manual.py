"""Manual key distribution and secure links (paper section 2.4).

"Manual key distribution is easily accomplished in SFS using symbolic
links.  If the administrators of a site want to install some server's
public key on the local hard disk of every client, they can simply
create a symbolic link to the appropriate self-certifying pathname."

These helpers operate through the kernel's POSIX facade, underlining the
paper's point: every key-management scheme here is just file utilities.
"""

from __future__ import annotations

from ..core.pathnames import SelfCertifyingPath, parse_path
from ..kernel.vfs import Process


def install_link(admin: Process, link_path: str,
                 target: SelfCertifyingPath | str) -> None:
    """Install a local symlink to a self-certifying pathname.

    E.g. ``install_link(root, "/fs", server_path)`` lets users refer to
    files as ``/fs/...`` — the password file might list a home directory
    as ``/fs/users/ann``.
    """
    admin.symlink(str(target), link_path)


def make_secure_link(user: Process, link_path: str,
                     target: SelfCertifyingPath | str) -> None:
    """A secure link: a symlink on one SFS file system pointing to the
    self-certifying pathname of another.  Following it authenticates the
    destination server with no user-visible key management."""
    user.symlink(str(target), link_path)


def resolve_secure_link(user: Process, link_path: str) -> SelfCertifyingPath:
    """Read a (secure) link and parse its self-certifying target."""
    return parse_path(user.readlink(link_path))
