"""Bridging external public key infrastructures (paper section 2.4).

"On-the-fly symbolic link creation in /sfs can be used to exploit
existing public key infrastructures.  For example, one might want to use
SSL certificates to authenticate SFS servers. ... One can in fact build
an agent that generates self-certifying pathnames from SSL certificates.
The agent might intercept every request for a file name of the form
/sfs/host.ssl.  It would contact host's secure web server, download and
check the server's certificate, and construct from the certificate a
self-certifying pathname to which to redirect the user."

This module implements that bridge against a simulated certificate
directory: an :class:`SslDirectory` stands in for the web-server + CA
machinery (certificates are statements "key K belongs to host H" signed
by a CA key the resolver trusts).  The resolver plugs into an agent via
:meth:`Agent.add_resolver` and rewrites ``host.ssl`` names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pathnames import make_path
from ..crypto.rabin import PrivateKey, PublicKey, RabinError
from ..rpc.xdr import Opaque, String, Struct, XdrError

SSL_SUFFIX = ".ssl"

SslCertBody = Struct(
    "SslCertBody",
    [("hostname", String(255)), ("public_key", Opaque())],
)
SslCertificate = Struct(
    "SslCertificate",
    [("body", Opaque()), ("signature", Opaque())],
)


@dataclass(frozen=True)
class IssuedCert:
    """A marshaled certificate as the directory serves it."""

    blob: bytes


class SslDirectory:
    """The simulated external PKI: a CA that issues host certificates."""

    def __init__(self, ca_key: PrivateKey) -> None:
        self._ca_key = ca_key
        self._certs: dict[str, IssuedCert] = {}

    @property
    def ca_public_key(self) -> PublicKey:
        return self._ca_key.public_key

    def issue(self, hostname: str, host_key: PublicKey) -> IssuedCert:
        """CA signs "host_key belongs to hostname"."""
        body = SslCertBody.pack(
            SslCertBody.make(hostname=hostname, public_key=host_key.to_bytes())
        )
        cert = IssuedCert(SslCertificate.pack(
            SslCertificate.make(body=body, signature=self._ca_key.sign(body))
        ))
        self._certs[hostname] = cert
        return cert

    def fetch(self, hostname: str) -> IssuedCert | None:
        """What "contacting the host's secure web server" returns."""
        return self._certs.get(hostname)


class SslBridgeResolver:
    """An agent resolver mapping ``host.ssl`` -> self-certifying paths."""

    def __init__(self, directory: SslDirectory,
                 trusted_ca: PublicKey) -> None:
        self._directory = directory
        self._trusted_ca = trusted_ca
        self.resolutions = 0
        self.rejected = 0

    def __call__(self, name: str) -> str | None:
        if not name.endswith(SSL_SUFFIX):
            return None
        hostname = name[: -len(SSL_SUFFIX)]
        cert = self._directory.fetch(hostname)
        if cert is None:
            return None
        try:
            parsed = SslCertificate.unpack(cert.blob)
            if not self._trusted_ca.verify(parsed.body, parsed.signature):
                self.rejected += 1
                return None
            body = SslCertBody.unpack(parsed.body)
            host_key = PublicKey.from_bytes(body.public_key)
        except (XdrError, RabinError):
            self.rejected += 1
            return None
        if body.hostname != hostname:
            self.rejected += 1
            return None
        self.resolutions += 1
        return str(make_path(hostname, host_key))
