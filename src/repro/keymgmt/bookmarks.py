"""Secure bookmarks (paper section 2.4).

"When run in an SFS file system, the Unix pwd command returns the full
self-certifying pathname of the current working directory. ... We have a
10-line shell script called bookmark that creates a link
Location -> /sfs/Location:HostID in a user's /sfs-bookmarks directory.
With shells that support the cdpath variable, users can add this
directory to their cdpaths.  By simply typing 'cd Location', they can
subsequently return securely to any file system they have bookmarked."

This module is that shell script, plus the cdpath-style resolution.
"""

from __future__ import annotations

from ..core.pathnames import SFS_ROOT, parse_path
from ..kernel.vfs import KernelError, Process


class BookmarkError(Exception):
    """Raised when a bookmark cannot be created or followed."""


def secure_pwd(process: Process) -> str:
    """pwd: the full (self-certifying, when under /sfs) working directory."""
    return process.getcwd()


def bookmark(process: Process, bookmarks_dir: str = "") -> str:
    """Bookmark the current directory's file system; returns the link name.

    Extracts Location and HostID from `pwd` output and creates the
    ``Location -> /sfs/Location:HostID`` symlink.
    """
    cwd = secure_pwd(process)
    if not cwd.startswith(SFS_ROOT + "/"):
        raise BookmarkError(f"not inside an SFS file system: {cwd}")
    path = parse_path(cwd)
    bookmarks_dir = bookmarks_dir or _default_dir(process)
    try:
        process.makedirs(bookmarks_dir)
    except KernelError as exc:
        raise BookmarkError(f"cannot create {bookmarks_dir}: {exc}") from None
    link = f"{bookmarks_dir}/{path.location}"
    target = f"{SFS_ROOT}/{path.mount_name}"
    try:
        process.symlink(target, link)
    except KernelError as exc:
        raise BookmarkError(f"cannot create bookmark: {exc}") from None
    return link


def cd_bookmark(process: Process, location: str,
                cdpath: list[str] | None = None) -> str:
    """'cd Location' with the bookmarks directory on the cdpath.

    Returns the new working directory (a self-certifying pathname).
    """
    directories = cdpath or [_default_dir(process)]
    for directory in directories:
        candidate = f"{directory}/{location}"
        try:
            process.chdir(candidate)
        except KernelError:
            continue
        return process.getcwd()
    raise BookmarkError(f"no bookmark for {location}")


def _default_dir(process: Process) -> str:
    return f"/home/u{process.uid}/sfs-bookmarks"
