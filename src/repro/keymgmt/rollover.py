"""Programmatic server key rollover and revocation fan-out.

The paper's key-management story turns on two certificate forms (section
2.6): a *forwarding pointer* ``{"PathRevoke", Location, new-path}`` that
retires a HostID in favor of a successor, and a *revocation certificate*
(NULL redirect) that retires it for good.  Both are signed by the old
key and self-authenticating, so they can travel through anything — the
old server itself, certification authorities, or direct delivery to
client daemons — without the bearer being trusted.

This module packages the two operational moves built from them:

* :func:`rollover_export` — roll one export's key in place: generate a
  fresh key, re-export the same file system and authserver under the
  new HostID, and leave a signed trail (forwarding pointer or
  revocation) behind the old one.  Live sessions keep working on their
  established connections; clients that redial — after a crash, or a
  fresh mount — are redirected and re-verify the *new* HostID, which is
  exactly the ServerSession retarget path.
* :func:`revoke_export` — retire an export with no successor.
* :func:`fan_out_revocations` — push a batch of certificates to client
  daemons, server masters, and a CA in one sweep: the revocation-storm
  primitive the scenario engine drives against populated HostID caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.revocation import (
    CertificateError,
    make_forwarding_pointer,
    make_revocation_certificate,
    verify_certificate,
)
from ..crypto.rabin import generate_key
from ..rpc.xdr import Record

#: Modes for :func:`rollover_export`.
FORWARD = "forward"
REVOKE = "revoke"


@dataclass(frozen=True)
class RolloverResult:
    """What one key rollover produced."""

    old_path: object         # SelfCertifyingPath the export used to have
    new_path: object         # SelfCertifyingPath it has now
    certificate: Record      # the signed trail left behind the old HostID
    mode: str                # FORWARD or REVOKE


def rollover_export(server, name: str = "default", mode: str = FORWARD,
                    key_bits: int = 768, ca=None, ca_name: str | None = None
                    ) -> RolloverResult:
    """Roll *server*'s export *name* onto a fresh key, in place.

    *server* is a :class:`~repro.kernel.world.ServerMachine`.  The same
    file system and authserver are re-exported under a newly generated
    key (same Location, new HostID — and, because the handle map derives
    from the key, a new handle map).  The old HostID then serves a
    forwarding pointer to the new path (``mode="forward"``) or a
    revocation certificate (``mode="revoke"``) to every later dial.

    With *ca*, the authority's symlink for *ca_name* (default: the
    export name) is re-pointed at the new path — the certification-path
    step that lets clients resolving by human name land on the new
    HostID without ever seeing the old one — and a revocation is also
    filed under ``/revocations``.

    Returns a :class:`RolloverResult`; the certificate in it can be
    handed to :func:`fan_out_revocations` for active propagation.
    """
    if mode not in (FORWARD, REVOKE):
        raise ValueError(f"unknown rollover mode {mode!r}")
    old_path, fs, authserver = server.exports[name]
    old_export = server.master.rw_export(old_path.hostid)
    if old_export is None:
        raise ValueError(
            f"export {name!r} is not being served (already rolled over?)"
        )
    old_key = old_export.key
    new_key = generate_key(key_bits, server.world.rng)
    new_path = server.master.add_rw_export(
        new_key, fs, authserver,
        lease_duration=old_export.lease_duration, name=name,
    )
    server.exports[name] = (new_path, fs, authserver)
    authserver.pathname = str(new_path)
    if mode == FORWARD:
        cert = make_forwarding_pointer(old_key, old_path.location,
                                       str(new_path))
        server.master.set_forwarding_pointer(old_path.hostid, cert)
    else:
        cert = make_revocation_certificate(old_key, old_path.location)
        server.master.set_revocation(old_path.hostid, cert)
    if ca is not None:
        link = ca_name if ca_name is not None else name
        try:
            ca.decertify(link)
        except Exception:  # noqa: BLE001 - the name may not be certified yet
            pass
        ca.certify(link, new_path)
        if mode == REVOKE:
            ca.publish_revocation(cert)
    server.metrics.counter("server.rollovers").inc()
    return RolloverResult(old_path=old_path, new_path=new_path,
                          certificate=cert, mode=mode)


def revoke_export(server, name: str = "default") -> Record:
    """Retire *server*'s export *name* with no successor.

    The export stops being served; later dials (and redials) for its
    HostID get the revocation certificate, which is also returned for
    fan-out.  Only the key's owner can do this — the signature needs
    the private key — which is the paper's whole revocation policy.
    """
    old_path, _fs, _authserver = server.exports[name]
    export = server.master.rw_export(old_path.hostid)
    if export is None:
        raise ValueError(f"export {name!r} is not being served")
    cert = make_revocation_certificate(export.key, old_path.location)
    server.master.set_revocation(old_path.hostid, cert)
    return cert


def fan_out_revocations(certificates, daemons=(), masters=(), ca=None,
                        authservers=(), metrics=None) -> int:
    """Push certificates everywhere at once; returns deliveries made.

    For each certificate: every server master in *masters* starts
    serving it to future dials of its HostID, every
    :class:`~repro.core.client.SfsClientDaemon` in *daemons* gets it
    out of band (evicting any cached mount — the storm hitting a
    populated HostID cache), and *ca*, if given, files revocations
    under ``/revocations`` for agents that poll revocation directories.
    Every :class:`~repro.core.authserv.AuthServer` in *authservers* gets
    its decision-cache epoch bumped once per sweep that verified at
    least one certificate (revocation or forwarding — a retired server
    key may have influenced who authenticated either way), so cached
    login decisions are not allowed to outlive the sweep; they lazily
    re-verify instead.  Bumps are cache bookkeeping, not certificate
    deliveries: they count as ``auth.cache.epoch_bumps`` on each
    authserver and never inflate the returned delivery total or
    ``keymgmt.revocations_fanned_out``.
    Forged certificates are skipped, not raised: a storm is exactly the
    place hostile junk shows up, and one bad certificate must not stop
    the sweep.
    """
    delivered = 0
    verified_any = False
    for cert in certificates:
        try:
            verified = verify_certificate(cert)
        except CertificateError:
            continue
        verified_any = True
        for master in masters:
            if verified.is_revocation:
                master.set_revocation(verified.hostid, cert)
            else:
                master.set_forwarding_pointer(verified.hostid, cert)
            delivered += 1
        for daemon in daemons:
            if daemon.submit_certificate(cert):
                delivered += 1
        if ca is not None and verified.is_revocation:
            ca.publish_revocation(cert)
            delivered += 1
    if verified_any:
        for authserver in authservers:
            authserver.bump_epoch()
    if metrics is not None:
        metrics.counter("keymgmt.revocations_fanned_out").inc(delivered)
    return delivered
