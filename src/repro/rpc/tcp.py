"""Real TCP transport with RFC 1831 record marking.

The virtual network (:mod:`repro.sim.network`) is the default substrate —
deterministic and adversary-instrumentable — but SFS is a network file
system, so the same RPC peers also run over genuine sockets.  Records are
framed with the standard record-marking header: a 4-byte big-endian word
whose high bit marks the final fragment.

`TcpPipe` satisfies the :class:`repro.rpc.peer.Pipe` protocol.  Because
socket delivery is not synchronous like the virtual network's, `TcpPipe`
pumps the socket when a caller waits for a reply; a background listener
(`TcpListener`) accepts connections and runs a service loop per
connection thread.
"""

from __future__ import annotations

import socket
import struct
import threading
from typing import Callable

_LAST_FRAGMENT = 0x80000000
_MAX_FRAGMENT = 0x7FFFFFFF


class TcpClosed(Exception):
    """The peer closed the connection."""


def send_record(sock: socket.socket, data: bytes) -> None:
    """Send one record-marked record.

    Header and payload go out with one scatter-gather ``sendmsg`` —
    no ``header + data`` copy of every record just to prepend 4 bytes.
    """
    if len(data) > _MAX_FRAGMENT:
        raise ValueError("record too large for a single fragment")
    header = struct.pack(">I", _LAST_FRAGMENT | len(data))
    buffers = [memoryview(header)]
    if data:
        buffers.append(memoryview(data))
    remaining = 4 + len(data)
    while remaining:
        sent = sock.sendmsg(buffers)
        remaining -= sent
        while sent:
            if sent >= len(buffers[0]):
                sent -= len(buffers[0])
                del buffers[0]
            else:
                buffers[0] = buffers[0][sent:]
                sent = 0


def recv_record(sock: socket.socket) -> bytes:
    """Receive one record (possibly multiple fragments)."""
    fragments = []
    while True:
        header = _recv_exact(sock, 4)
        word = struct.unpack(">I", header)[0]
        length = word & _MAX_FRAGMENT
        body = _recv_exact(sock, length)
        if word & _LAST_FRAGMENT:
            if not fragments:
                return body
            fragments.append(body)
            return b"".join(fragments)
        fragments.append(body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buf = bytearray(count)
    view = memoryview(buf)
    got = 0
    while got < count:
        n = sock.recv_into(view[got:])
        if not n:
            raise TcpClosed("connection closed mid-record")
        got += n
    return bytes(buf)


class TcpPipe:
    """A Pipe over a connected TCP socket.

    ``pump()`` reads and delivers exactly one inbound record; callers that
    expect a synchronous reply (RpcPeer.call) should be wrapped with
    :func:`pumping_call`.  For fully asynchronous service, `serve_loop`
    pumps until the peer closes.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._handler: Callable[[bytes], None] | None = None
        self._lock = threading.Lock()
        #: RpcPeer picks this up so calls pump the socket while waiting.
        self.suggested_reply_waiter = self.pump

    def send(self, data: bytes) -> None:
        with self._lock:
            send_record(self._sock, data)

    def on_receive(self, handler: Callable[[bytes], None]) -> None:
        self._handler = handler

    def pump(self) -> None:
        """Deliver one inbound record to the handler (blocking)."""
        record = recv_record(self._sock)
        if self._handler is None:
            raise RuntimeError("no receive handler installed")
        self._handler(record)

    def serve_loop(self) -> None:
        """Pump records until the peer disconnects."""
        try:
            while True:
                self.pump()
        except (TcpClosed, OSError):
            pass

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def attach_peer(pipe: TcpPipe, peer) -> None:
    """Wire an RpcPeer to a TcpPipe for synchronous-style calls.

    Socket delivery is not synchronous like the virtual network's, so the
    peer's ``reply_waiter`` pumps the socket until the awaited reply (or
    an inbound call, which gets served) arrives.
    """
    peer.reply_waiter = pipe.pump


class TcpListener:
    """Accepts TCP connections and hands each to a connection factory."""

    def __init__(
        self,
        host: str,
        port: int,
        factory: Callable[[TcpPipe], None],
    ) -> None:
        self._server = socket.create_server((host, port))
        self._factory = factory
        self._threads: list[threading.Thread] = []
        self._running = True
        self._acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        self._acceptor.start()

    @property
    def port(self) -> int:
        return self._server.getsockname()[1]

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return
            pipe = TcpPipe(sock)

            def session(pipe: TcpPipe = pipe) -> None:
                self._factory(pipe)
                pipe.serve_loop()

            thread = threading.Thread(target=session, daemon=True)
            thread.start()
            self._threads.append(thread)

    def close(self) -> None:
        self._running = False
        self._server.close()


def connect(host: str, port: int) -> TcpPipe:
    """Open a TcpPipe to a listener."""
    return TcpPipe(socket.create_connection((host, port)))
