"""The port mapper (RFC 1833 version 2 flavor), from scratch.

Sun RPC services register (program, version, protocol) -> port with the
portmapper; clients query it before connecting.  The paper mentions it
in its firewall advice: sites should block "NFS and portmap (which
relays RPC calls) traffic" — the CALLIT indirection is why portmap is a
hazard, so it is implemented here too (and a test shows how it launders
a caller's identity, which is why firewalls block it).
"""

from __future__ import annotations

from .peer import CallContext, Program, RpcPeer
from .xdr import Array, Bool, Codec, Opaque, Record, Struct, UInt32, VOID

PMAP_PROGRAM = 100000
PMAP_VERSION = 2

PMAPPROC_SET = 1
PMAPPROC_UNSET = 2
PMAPPROC_GETPORT = 3
PMAPPROC_DUMP = 4
PMAPPROC_CALLIT = 5

IPPROTO_TCP = 6
IPPROTO_UDP = 17

Mapping = Struct(
    "mapping",
    [("prog", UInt32), ("vers", UInt32), ("prot", UInt32), ("port", UInt32)],
)

CallitArgs = Struct(
    "call_args",
    [("prog", UInt32), ("vers", UInt32), ("proc", UInt32), ("args", Opaque())],
)
CallitRes = Struct("call_result", [("port", UInt32), ("res", Opaque())])


class PortMapper:
    """The pmap service plus, optionally, CALLIT relaying.

    *local_dispatch* lets CALLIT forward to co-located programs: a
    mapping from (prog, vers) to an RpcPeer-compatible dispatcher — in
    this repository, the same peer that serves them.
    """

    def __init__(self, callit_peer: RpcPeer | None = None) -> None:
        self._mappings: dict[tuple[int, int, int], int] = {}
        self._callit_peer = callit_peer
        self.program = self._build_program()

    def _build_program(self) -> Program:
        program = Program("portmap", PMAP_PROGRAM, PMAP_VERSION)
        program.add_proc(PMAPPROC_SET, "SET", Mapping, Bool, self._set)
        program.add_proc(PMAPPROC_UNSET, "UNSET", Mapping, Bool, self._unset)
        program.add_proc(PMAPPROC_GETPORT, "GETPORT", Mapping, UInt32,
                         self._getport)
        program.add_proc(PMAPPROC_DUMP, "DUMP", VOID, Array(Mapping),
                         self._dump)
        if self._callit_peer is not None:
            program.add_proc(PMAPPROC_CALLIT, "CALLIT", CallitArgs,
                             CallitRes, self._callit)
        return program

    def _set(self, args: Record, ctx: CallContext) -> bool:
        key = (args.prog, args.vers, args.prot)
        if key in self._mappings:
            return False  # first registration wins, per the RFC
        self._mappings[key] = args.port
        return True

    def _unset(self, args: Record, ctx: CallContext) -> bool:
        removed = False
        for prot in (IPPROTO_TCP, IPPROTO_UDP):
            removed |= self._mappings.pop(
                (args.prog, args.vers, prot), None
            ) is not None
        return removed

    def _getport(self, args: Record, ctx: CallContext) -> int:
        return self._mappings.get((args.prog, args.vers, args.prot), 0)

    def _dump(self, args, ctx: CallContext):
        return [
            Mapping.make(prog=prog, vers=vers, prot=prot, port=port)
            for (prog, vers, prot), port in sorted(self._mappings.items())
        ]

    def _callit(self, args: Record, ctx: CallContext):
        """Indirect call: relay to a local program, under OUR identity.

        This is the firewall hazard: the original caller's credentials
        are discarded and the target sees the portmapper as the caller.
        """
        assert self._callit_peer is not None
        key = (args.prog, args.vers, IPPROTO_UDP)
        port = self._mappings.get(key) or self._mappings.get(
            (args.prog, args.vers, IPPROTO_TCP), 0
        )
        if not port:
            raise RuntimeError("CALLIT target not registered")
        raw = Opaque()
        program = self._callit_peer._programs.get((args.prog, args.vers))
        if program is None:
            raise RuntimeError("CALLIT target not served here")
        procedure = program.procedures[args.proc]
        decoded = procedure.arg_codec.unpack(args.args)
        result = procedure.handler(decoded, ctx)
        return CallitRes.make(
            port=port, res=procedure.res_codec.pack(result)
        )


class PortMapperClient:
    """Client stubs for pmap queries."""

    def __init__(self, peer: RpcPeer) -> None:
        self._peer = peer

    def set(self, prog: int, vers: int, prot: int, port: int) -> bool:
        return self._peer.call(
            PMAP_PROGRAM, PMAP_VERSION, PMAPPROC_SET, Mapping,
            Mapping.make(prog=prog, vers=vers, prot=prot, port=port), Bool,
        )

    def unset(self, prog: int, vers: int) -> bool:
        return self._peer.call(
            PMAP_PROGRAM, PMAP_VERSION, PMAPPROC_UNSET, Mapping,
            Mapping.make(prog=prog, vers=vers, prot=0, port=0), Bool,
        )

    def getport(self, prog: int, vers: int, prot: int = IPPROTO_TCP) -> int:
        return self._peer.call(
            PMAP_PROGRAM, PMAP_VERSION, PMAPPROC_GETPORT, Mapping,
            Mapping.make(prog=prog, vers=vers, prot=prot, port=0), UInt32,
        )

    def dump(self) -> list[tuple[int, int, int, int]]:
        mappings = self._peer.call(
            PMAP_PROGRAM, PMAP_VERSION, PMAPPROC_DUMP, VOID, None,
            Array(Mapping),
        )
        return [(m.prog, m.vers, m.prot, m.port) for m in mappings]

    def callit(self, prog: int, vers: int, proc: int, arg_codec: Codec,
               args, res_codec: Codec):
        result = self._peer.call(
            PMAP_PROGRAM, PMAP_VERSION, PMAPPROC_CALLIT, CallitArgs,
            CallitArgs.make(prog=prog, vers=vers, proc=proc,
                            args=arg_codec.pack(args)),
            CallitRes,
        )
        return res_codec.unpack(result.res)
