"""Sun RPC version 2 message format (RFC 1831), from scratch.

Only the pieces SFS needs: CALL and REPLY messages, AUTH_NONE and
AUTH_SYS credential flavors, and the accept/reject status hierarchy.
Argument and result bodies are carried as raw trailing bytes so each
program's codecs stay independent of the envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .xdr import Opaque, Packer, String, Unpacker, XdrError

RPC_VERSION = 2

CALL = 0
REPLY = 1

# Reply status
MSG_ACCEPTED = 0
MSG_DENIED = 1

# Accept status
SUCCESS = 0
PROG_UNAVAIL = 1
PROG_MISMATCH = 2
PROC_UNAVAIL = 3
GARBAGE_ARGS = 4
SYSTEM_ERR = 5
#: SFS extension (outside RFC 1831's 0-5 range): the server's request
#: queue is full and the call was never executed.  Retryable — the
#: client backs off and resends; admission control's backpressure path.
SERVER_BUSY = 102

# Reject status
RPC_MISMATCH = 0
AUTH_ERROR = 1

# Auth flavors
AUTH_NONE = 0
AUTH_SYS = 1

_MAX_AUTH_BODY = 400


class RpcMsgError(XdrError):
    """Raised on malformed RPC envelopes."""


@dataclass(frozen=True)
class OpaqueAuth:
    """An RPC authenticator: flavor + opaque body."""

    flavor: int = AUTH_NONE
    body: bytes = b""

    def pack_into(self, packer: Packer) -> None:
        packer.pack_uint32(self.flavor)
        packer.pack_opaque(self.body, _MAX_AUTH_BODY)

    @classmethod
    def unpack_from(cls, unpacker: Unpacker) -> "OpaqueAuth":
        flavor = unpacker.unpack_uint32()
        body = unpacker.unpack_opaque(_MAX_AUTH_BODY)
        return cls(flavor, body)


NULL_AUTH = OpaqueAuth()


@dataclass(frozen=True)
class AuthSys:
    """AUTH_SYS (a.k.a. AUTH_UNIX) credentials: the classic NFS identity."""

    stamp: int = 0
    machinename: str = "localhost"
    uid: int = 0
    gid: int = 0
    gids: tuple[int, ...] = ()

    def to_auth(self) -> OpaqueAuth:
        packer = Packer()
        packer.pack_uint32(self.stamp)
        packer.pack_string(self.machinename, 255)
        packer.pack_uint32(self.uid)
        packer.pack_uint32(self.gid)
        gids = self.gids[:16]
        packer.pack_uint32(len(gids))
        for gid in gids:
            packer.pack_uint32(gid)
        return OpaqueAuth(AUTH_SYS, packer.detach())

    @classmethod
    def from_auth(cls, auth: OpaqueAuth) -> "AuthSys":
        if auth.flavor != AUTH_SYS:
            raise RpcMsgError("not an AUTH_SYS credential")
        unpacker = Unpacker(auth.body)
        stamp = unpacker.unpack_uint32()
        machinename = unpacker.unpack_string(255)
        uid = unpacker.unpack_uint32()
        gid = unpacker.unpack_uint32()
        count = unpacker.unpack_uint32()
        if count > 16:
            raise RpcMsgError("too many groups in AUTH_SYS")
        gids = tuple(unpacker.unpack_uint32() for _ in range(count))
        unpacker.done()
        return cls(stamp, machinename, uid, gid, gids)


@dataclass(frozen=True)
class CallHeader:
    """A parsed RPC CALL envelope (argument bytes carried separately)."""

    xid: int
    prog: int
    vers: int
    proc: int
    cred: OpaqueAuth = NULL_AUTH
    verf: OpaqueAuth = NULL_AUTH


def pack_call(header: CallHeader, args: bytes) -> bytes:
    packer = Packer()
    packer.pack_uint32(header.xid)
    packer.pack_uint32(CALL)
    packer.pack_uint32(RPC_VERSION)
    packer.pack_uint32(header.prog)
    packer.pack_uint32(header.vers)
    packer.pack_uint32(header.proc)
    header.cred.pack_into(packer)
    header.verf.pack_into(packer)
    packer.pack_raw(args)  # envelope + body leave as one buffer
    return packer.detach()


@dataclass(frozen=True)
class ReplyHeader:
    """A parsed RPC REPLY envelope (result bytes carried separately)."""

    xid: int
    reply_stat: int = MSG_ACCEPTED
    accept_stat: int = SUCCESS
    reject_stat: int = RPC_MISMATCH
    auth_stat: int = 0
    verf: OpaqueAuth = NULL_AUTH
    mismatch_low: int = 0
    mismatch_high: int = 0

    @property
    def successful(self) -> bool:
        return self.reply_stat == MSG_ACCEPTED and self.accept_stat == SUCCESS


def pack_reply(header: ReplyHeader, results: bytes = b"") -> bytes:
    packer = Packer()
    packer.pack_uint32(header.xid)
    packer.pack_uint32(REPLY)
    packer.pack_uint32(header.reply_stat)
    if header.reply_stat == MSG_ACCEPTED:
        header.verf.pack_into(packer)
        packer.pack_uint32(header.accept_stat)
        if header.accept_stat == PROG_MISMATCH:
            packer.pack_uint32(header.mismatch_low)
            packer.pack_uint32(header.mismatch_high)
        elif header.accept_stat == SUCCESS:
            packer.pack_raw(results)
    else:
        packer.pack_uint32(header.reject_stat)
        if header.reject_stat == RPC_MISMATCH:
            packer.pack_uint32(header.mismatch_low)
            packer.pack_uint32(header.mismatch_high)
        else:
            packer.pack_uint32(header.auth_stat)
    return packer.detach()


@dataclass(frozen=True)
class ParsedMessage:
    """Either a CALL or a REPLY, with the trailing body bytes.

    ``body`` is a ``memoryview`` over the record's tail, not a copy —
    an 8 KB READ payload crosses three RPC hops in the SFS
    configuration, and slicing it out of every envelope showed up in
    profiles.  The codec layer accepts views everywhere and copies only
    the opaque payloads it hands to callers as real ``bytes``.
    """

    mtype: int
    call: CallHeader | None
    reply: ReplyHeader | None
    body: bytes


def peek_message(data: bytes) -> tuple[int, int] | None:
    """Cheaply read ``(mtype, xid)`` off a record without full parsing.

    The duplicate-reply cache consults this on every inbound record to
    spot retransmitted calls before paying for header/auth unpacking.
    Returns None for records too short or of unknown type.
    """
    if len(data) < 8:
        return None
    xid = int.from_bytes(data[0:4], "big")
    mtype = int.from_bytes(data[4:8], "big")
    if mtype not in (CALL, REPLY):
        return None
    return mtype, xid


def parse_message(data: bytes) -> ParsedMessage:
    """Parse an RPC record into its envelope + trailing body bytes."""
    unpacker = Unpacker(data)
    xid = unpacker.unpack_uint32()
    mtype = unpacker.unpack_uint32()
    if mtype == CALL:
        rpcvers = unpacker.unpack_uint32()
        if rpcvers != RPC_VERSION:
            raise RpcMsgError(f"unsupported RPC version {rpcvers}")
        prog = unpacker.unpack_uint32()
        vers = unpacker.unpack_uint32()
        proc = unpacker.unpack_uint32()
        cred = OpaqueAuth.unpack_from(unpacker)
        verf = OpaqueAuth.unpack_from(unpacker)
        body = memoryview(data)[len(data) - unpacker.remaining() :]
        return ParsedMessage(
            CALL, CallHeader(xid, prog, vers, proc, cred, verf), None, body
        )
    if mtype == REPLY:
        reply_stat = unpacker.unpack_uint32()
        if reply_stat == MSG_ACCEPTED:
            verf = OpaqueAuth.unpack_from(unpacker)
            accept_stat = unpacker.unpack_uint32()
            low = high = 0
            if accept_stat == PROG_MISMATCH:
                low = unpacker.unpack_uint32()
                high = unpacker.unpack_uint32()
            body = memoryview(data)[len(data) - unpacker.remaining() :]
            return ParsedMessage(
                REPLY,
                None,
                ReplyHeader(
                    xid,
                    MSG_ACCEPTED,
                    accept_stat,
                    verf=verf,
                    mismatch_low=low,
                    mismatch_high=high,
                ),
                body,
            )
        if reply_stat == MSG_DENIED:
            reject_stat = unpacker.unpack_uint32()
            low = high = auth_stat = 0
            if reject_stat == RPC_MISMATCH:
                low = unpacker.unpack_uint32()
                high = unpacker.unpack_uint32()
            else:
                auth_stat = unpacker.unpack_uint32()
            return ParsedMessage(
                REPLY,
                None,
                ReplyHeader(
                    xid,
                    MSG_DENIED,
                    reject_stat=reject_stat,
                    auth_stat=auth_stat,
                    mismatch_low=low,
                    mismatch_high=high,
                ),
                b"",
            )
        raise RpcMsgError(f"bad reply_stat {reply_stat}")
    raise RpcMsgError(f"bad message type {mtype}")
