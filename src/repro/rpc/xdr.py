"""XDR — External Data Representation (RFC 1832), from scratch.

All SFS programs "communicate with Sun RPC ... the exact bytes exchanged
between programs are clearly and unambiguously described in the XDR
protocol description language.  We also use XDR to define SFS's
cryptographic protocols.  Any data that SFS hashes, signs, or public-key
encrypts is defined as an XDR data structure; SFS computes the hash or
public key function on the raw, marshaled bytes." (paper section 3.2)

This module provides the byte-level :class:`Packer`/:class:`Unpacker`
pair plus a declarative codec-combinator layer (:class:`Struct`,
:class:`Union`, :class:`Array`, ...) used to describe every protocol in
the repository.  Structs decode to :class:`Record` objects that offer
attribute access, equality, and a readable repr — which also powers the
RPC library's traffic pretty-printer.

Marshaling is on the wire path of every RPC hop, so the byte layer is
built to avoid per-item allocation: a :class:`Packer` writes into a
pooled ``bytearray`` with ``struct.pack_into`` (the pool is recycled by
:meth:`Packer.detach`, the terminal snapshot-and-release used by the
one-shot helpers), and an :class:`Unpacker` reads numerics in place with
``struct.unpack_from`` — no intermediate 4/8-byte slices.  An Unpacker
also accepts ``memoryview`` input so record parsing never copies the
payload region just to decode it.  Codecs may additionally carry a
*flat fast path* (installed by :mod:`repro.nfs3.fastpath` on the hot
NFS3 types): :meth:`Codec.pack`/:meth:`Codec.unpack` consult it when
:data:`repro.crypto.backend.use_fast_marshal` is on, falling back to
field-by-field dispatch whenever the fast path declines.  Fast and slow
paths produce identical bytes — the golden wire-vector suite asserts
this — and both enforce XDR's zero-fill rule for padding.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..crypto import backend

UNLIMITED = 0xFFFFFFFF

#: Sentinel a codec's flat fast path returns to decline a value whose
#: shape it cannot marshal; the caller falls back to codec dispatch.
DECLINED = object()

_U32 = struct.Struct(">I")
_I32 = struct.Struct(">i")
_U64 = struct.Struct(">Q")
_I64 = struct.Struct(">q")

_PAD = (b"", b"\x00", b"\x00\x00", b"\x00\x00\x00")


class XdrError(Exception):
    """Raised on malformed XDR data or out-of-range values."""


def _padding(length: int) -> int:
    return (4 - length % 4) % 4


class MarshalStats:
    """Process-wide marshaling counters, surfaced by the bench layer."""

    __slots__ = ("fast_packs", "fast_unpacks", "slow_packs",
                 "slow_unpacks", "pool_hits", "pool_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.fast_packs = 0
        self.fast_unpacks = 0
        self.slow_packs = 0
        self.slow_unpacks = 0
        self.pool_hits = 0
        self.pool_misses = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "fast_packs": self.fast_packs,
            "fast_unpacks": self.fast_unpacks,
            "slow_packs": self.slow_packs,
            "slow_unpacks": self.slow_unpacks,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
        }


STATS = MarshalStats()

# Recycled Packer buffers.  Small stack: steady-state RPC traffic keeps
# a handful in flight (call pack + reply pack per hop).  Buffers above
# _MAX_POOLED (a full WRITE record is ~8.2 KB; 128 KB is far past any
# legal record) are dropped rather than hoarded.
_POOL: list[bytearray] = []
_POOL_MAX = 8
_MAX_POOLED = 1 << 17


class Packer:
    """Serializes primitive XDR items into a pooled, growing buffer."""

    __slots__ = ("_buf", "_len")

    def __init__(self) -> None:
        if _POOL:
            self._buf = _POOL.pop()
            STATS.pool_hits += 1
        else:
            self._buf = bytearray(256)
            STATS.pool_misses += 1
        self._len = 0

    def data(self) -> bytes:
        """Snapshot the packed bytes (non-destructive)."""
        return bytes(memoryview(self._buf)[: self._len])

    def detach(self) -> bytes:
        """Snapshot the packed bytes and recycle the buffer.

        Terminal: the Packer must not be used afterwards.  All one-shot
        pack helpers end with this so steady-state marshaling reuses the
        same few buffers instead of growing a fresh one per message.
        """
        buf = self._buf
        out = bytes(memoryview(buf)[: self._len])
        self._buf = None  # type: ignore[assignment] - poison further use
        if len(_POOL) < _POOL_MAX and len(buf) <= _MAX_POOLED:
            _POOL.append(buf)
        return out

    def _write(self, raw: bytes) -> None:
        off = self._len
        end = off + len(raw)
        # Slice assignment both overwrites reserved space and extends
        # past the end, so one statement covers the grow-or-fit cases.
        self._buf[off:end] = raw
        self._len = end

    def pack_raw(self, raw: bytes) -> None:
        """Append pre-marshaled bytes (an already-packed body)."""
        self._write(raw)

    def pack_uint32(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFF:
            raise XdrError(f"uint32 out of range: {value}")
        off = self._len
        buf = self._buf
        if off + 4 > len(buf):
            buf.extend(bytes(len(buf) or 64))
        _U32.pack_into(buf, off, value)
        self._len = off + 4

    def pack_int32(self, value: int) -> None:
        if not -0x80000000 <= value <= 0x7FFFFFFF:
            raise XdrError(f"int32 out of range: {value}")
        off = self._len
        buf = self._buf
        if off + 4 > len(buf):
            buf.extend(bytes(len(buf) or 64))
        _I32.pack_into(buf, off, value)
        self._len = off + 4

    def pack_uhyper(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise XdrError(f"uhyper out of range: {value}")
        off = self._len
        buf = self._buf
        if off + 8 > len(buf):
            buf.extend(bytes(len(buf) or 64))
        _U64.pack_into(buf, off, value)
        self._len = off + 8

    def pack_hyper(self, value: int) -> None:
        if not -(1 << 63) <= value < (1 << 63):
            raise XdrError(f"hyper out of range: {value}")
        off = self._len
        buf = self._buf
        if off + 8 > len(buf):
            buf.extend(bytes(len(buf) or 64))
        _I64.pack_into(buf, off, value)
        self._len = off + 8

    def pack_bool(self, value: bool) -> None:
        self.pack_uint32(1 if value else 0)

    def pack_fixed_opaque(self, value: bytes, length: int) -> None:
        if len(value) != length:
            raise XdrError(f"fixed opaque must be {length} bytes, got {len(value)}")
        self._write(value)
        pad = _padding(length)
        if pad:
            self._write(_PAD[pad])

    def pack_opaque(self, value: bytes, maximum: int = UNLIMITED) -> None:
        if len(value) > maximum:
            raise XdrError(f"opaque exceeds maximum {maximum}")
        self.pack_uint32(len(value))
        self._write(value)
        pad = _padding(len(value))
        if pad:
            self._write(_PAD[pad])

    def pack_string(self, value: str, maximum: int = UNLIMITED) -> None:
        self.pack_opaque(value.encode(), maximum)


class Unpacker:
    """Deserializes primitive XDR items from a byte buffer.

    Accepts ``bytes``, ``bytearray``, or ``memoryview`` input; numerics
    are read in place with ``unpack_from`` and only opaque payloads are
    materialized as fresh ``bytes`` (callers hash them and use them as
    dict keys, so they must be real immutable bytes).
    """

    __slots__ = ("_data", "_offset", "_len")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0
        self._len = len(data)

    def done(self) -> None:
        """Assert the whole buffer was consumed."""
        if self._offset != self._len:
            raise XdrError(
                f"{self._len - self._offset} unconsumed bytes after decode"
            )

    def remaining(self) -> int:
        return self._len - self._offset

    def unpack_uint32(self) -> int:
        off = self._offset
        if off + 4 > self._len:
            raise XdrError("truncated XDR data")
        self._offset = off + 4
        return _U32.unpack_from(self._data, off)[0]

    def unpack_int32(self) -> int:
        off = self._offset
        if off + 4 > self._len:
            raise XdrError("truncated XDR data")
        self._offset = off + 4
        return _I32.unpack_from(self._data, off)[0]

    def unpack_uhyper(self) -> int:
        off = self._offset
        if off + 8 > self._len:
            raise XdrError("truncated XDR data")
        self._offset = off + 8
        return _U64.unpack_from(self._data, off)[0]

    def unpack_hyper(self) -> int:
        off = self._offset
        if off + 8 > self._len:
            raise XdrError("truncated XDR data")
        self._offset = off + 8
        return _I64.unpack_from(self._data, off)[0]

    def unpack_bool(self) -> bool:
        value = self.unpack_uint32()
        if value not in (0, 1):
            raise XdrError(f"bool must be 0 or 1, got {value}")
        return bool(value)

    def unpack_fixed_opaque(self, length: int) -> bytes:
        off = self._offset
        end = off + length
        pad = _padding(length)
        if end + pad > self._len:
            raise XdrError("truncated XDR data")
        data = self._data
        for k in range(end, end + pad):
            if data[k]:
                raise XdrError("nonzero XDR padding")
        self._offset = end + pad
        chunk = data[off:end]
        return chunk if chunk.__class__ is bytes else bytes(chunk)

    def unpack_opaque(self, maximum: int = UNLIMITED) -> bytes:
        length = self.unpack_uint32()
        if length > maximum:
            raise XdrError(f"opaque length {length} exceeds maximum {maximum}")
        return self.unpack_fixed_opaque(length)

    def unpack_string(self, maximum: int = UNLIMITED) -> str:
        raw = self.unpack_opaque(maximum)
        try:
            return raw.decode()
        except UnicodeDecodeError as exc:
            raise XdrError(f"string is not valid UTF-8: {exc}") from None


class Record:
    """A decoded XDR struct: attribute access, equality, readable repr."""

    def __init__(self, **fields: Any) -> None:
        self.__dict__.update(fields)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self.__dict__ == other.__dict__
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"Record({inner})"

    def _asdict(self) -> dict[str, Any]:
        return dict(self.__dict__)


class Codec:
    """Base class for declarative XDR codecs.

    ``fast_pack``/``fast_unpack`` are optional flat marshal functions
    (installed on hot codec instances by :mod:`repro.nfs3.fastpath`);
    they return :data:`DECLINED` for values/bytes whose shape they do
    not cover, and the one-shot helpers then fall back to the
    field-by-field ``encode``/``decode`` dispatch.
    """

    fast_pack: Callable[[Any], Any] | None = None
    fast_unpack: Callable[[bytes], Any] | None = None

    def encode(self, packer: Packer, value: Any) -> None:
        raise NotImplementedError

    def decode(self, unpacker: Unpacker) -> Any:
        raise NotImplementedError

    def pack(self, value: Any) -> bytes:
        """One-shot encode to bytes."""
        fast = self.fast_pack
        if fast is not None and backend.use_fast_marshal:
            out = fast(value)
            if out is not DECLINED:
                STATS.fast_packs += 1
                return out
        STATS.slow_packs += 1
        packer = Packer()
        self.encode(packer, value)
        return packer.detach()

    def unpack(self, data: bytes) -> Any:
        """One-shot decode from bytes (requires full consumption)."""
        fast = self.fast_unpack
        if fast is not None and backend.use_fast_marshal:
            out = fast(data)
            if out is not DECLINED:
                STATS.fast_unpacks += 1
                return out
        STATS.slow_unpacks += 1
        unpacker = Unpacker(data)
        value = self.decode(unpacker)
        unpacker.done()
        return value


class _Simple(Codec):
    def __init__(self, packname: str, unpackname: str) -> None:
        self._packname = packname
        self._unpackname = unpackname

    def encode(self, packer: Packer, value: Any) -> None:
        getattr(packer, self._packname)(value)

    def decode(self, unpacker: Unpacker) -> Any:
        return getattr(unpacker, self._unpackname)()


UInt32 = _Simple("pack_uint32", "unpack_uint32")
Int32 = _Simple("pack_int32", "unpack_int32")
UHyper = _Simple("pack_uhyper", "unpack_uhyper")
Hyper = _Simple("pack_hyper", "unpack_hyper")
Bool = _Simple("pack_bool", "unpack_bool")


class Void(Codec):
    """The XDR void type (no bytes on the wire)."""

    def encode(self, packer: Packer, value: Any) -> None:
        if value is not None:
            raise XdrError("void takes no value")

    def decode(self, unpacker: Unpacker) -> None:
        return None


VOID = Void()


class Enum(Codec):
    """An int32 constrained to a set of allowed values."""

    def __init__(self, *values: int) -> None:
        self._values = frozenset(values)

    def encode(self, packer: Packer, value: int) -> None:
        if value not in self._values:
            raise XdrError(f"enum value {value} not allowed")
        packer.pack_int32(value)

    def decode(self, unpacker: Unpacker) -> int:
        value = unpacker.unpack_int32()
        if value not in self._values:
            raise XdrError(f"enum value {value} not allowed")
        return value


class FixedOpaque(Codec):
    def __init__(self, length: int) -> None:
        self.length = length

    def encode(self, packer: Packer, value: bytes) -> None:
        packer.pack_fixed_opaque(value, self.length)

    def decode(self, unpacker: Unpacker) -> bytes:
        return unpacker.unpack_fixed_opaque(self.length)


class Opaque(Codec):
    def __init__(self, maximum: int = UNLIMITED) -> None:
        self.maximum = maximum

    def encode(self, packer: Packer, value: bytes) -> None:
        packer.pack_opaque(value, self.maximum)

    def decode(self, unpacker: Unpacker) -> bytes:
        return unpacker.unpack_opaque(self.maximum)


class String(Codec):
    def __init__(self, maximum: int = UNLIMITED) -> None:
        self.maximum = maximum

    def encode(self, packer: Packer, value: str) -> None:
        packer.pack_string(value, self.maximum)

    def decode(self, unpacker: Unpacker) -> str:
        return unpacker.unpack_string(self.maximum)


class Array(Codec):
    """Variable-length XDR array."""

    def __init__(self, element: Codec, maximum: int = UNLIMITED) -> None:
        self.element = element
        self.maximum = maximum

    def encode(self, packer: Packer, value: Sequence[Any]) -> None:
        if len(value) > self.maximum:
            raise XdrError(f"array exceeds maximum {self.maximum}")
        packer.pack_uint32(len(value))
        for item in value:
            self.element.encode(packer, item)

    def decode(self, unpacker: Unpacker) -> list[Any]:
        length = unpacker.unpack_uint32()
        if length > self.maximum:
            raise XdrError(f"array length {length} exceeds maximum {self.maximum}")
        return [self.element.decode(unpacker) for _ in range(length)]


class FixedArray(Codec):
    def __init__(self, element: Codec, length: int) -> None:
        self.element = element
        self.length = length

    def encode(self, packer: Packer, value: Sequence[Any]) -> None:
        if len(value) != self.length:
            raise XdrError(f"fixed array must have {self.length} elements")
        for item in value:
            self.element.encode(packer, item)

    def decode(self, unpacker: Unpacker) -> list[Any]:
        return [self.element.decode(unpacker) for _ in range(self.length)]


class Optional(Codec):
    """XDR optional data (``*`` in the language): bool + value-if-present."""

    def __init__(self, element: Codec) -> None:
        self.element = element

    def encode(self, packer: Packer, value: Any) -> None:
        if value is None:
            packer.pack_bool(False)
        else:
            packer.pack_bool(True)
            self.element.encode(packer, value)

    def decode(self, unpacker: Unpacker) -> Any:
        if unpacker.unpack_bool():
            return self.element.decode(unpacker)
        return None


class Struct(Codec):
    """Named XDR struct; decodes to :class:`Record`.

    Accepts either a mapping or any object with matching attributes when
    encoding, so callers can pass dicts, Records, or dataclasses.
    """

    def __init__(self, name: str, fields: Iterable[tuple[str, Codec]]) -> None:
        self.name = name
        self.fields = list(fields)

    def encode(self, packer: Packer, value: Any) -> None:
        for field_name, codec in self.fields:
            if isinstance(value, Mapping):
                try:
                    item = value[field_name]
                except KeyError:
                    raise XdrError(
                        f"{self.name}: missing field {field_name!r}"
                    ) from None
            else:
                try:
                    item = getattr(value, field_name)
                except AttributeError:
                    raise XdrError(
                        f"{self.name}: missing field {field_name!r}"
                    ) from None
            codec.encode(packer, item)

    def decode(self, unpacker: Unpacker) -> Record:
        return Record(
            **{name: codec.decode(unpacker) for name, codec in self.fields}
        )

    def make(self, **fields: Any) -> Record:
        """Build a Record for this struct, checking the field names."""
        expected = {name for name, _ in self.fields}
        given = set(fields)
        if given != expected:
            missing = expected - given
            extra = given - expected
            raise XdrError(
                f"{self.name}: bad fields (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        return Record(**fields)


class Union(Codec):
    """Discriminated XDR union.

    Values are ``(discriminant, body)`` tuples.  *arms* maps discriminant
    values to codecs (``None`` meaning void); *default* covers all other
    discriminants (omit it to make unknown discriminants an error).
    """

    _NO_DEFAULT = object()

    def __init__(
        self,
        name: str,
        arms: Mapping[int, Codec | None],
        default: Codec | None | object = _NO_DEFAULT,
    ) -> None:
        self.name = name
        self.arms = dict(arms)
        self.default = default

    def _arm(self, disc: int) -> Codec | None:
        if disc in self.arms:
            return self.arms[disc]
        if self.default is Union._NO_DEFAULT:
            raise XdrError(f"{self.name}: unknown union discriminant {disc}")
        return self.default  # type: ignore[return-value]

    def encode(self, packer: Packer, value: tuple[int, Any]) -> None:
        disc, body = value
        codec = self._arm(disc)
        packer.pack_uint32(disc)
        if codec is None:
            if body is not None:
                raise XdrError(f"{self.name}: void arm takes no body")
        else:
            codec.encode(packer, body)

    def decode(self, unpacker: Unpacker) -> tuple[int, Any]:
        disc = unpacker.unpack_uint32()
        codec = self._arm(disc)
        if codec is None:
            return disc, None
        return disc, codec.decode(unpacker)
