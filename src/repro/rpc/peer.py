"""A symmetric RPC peer: issues calls and serves programs over one pipe.

SFS connections are genuinely bidirectional — the server calls back to
the client to invalidate cache leases (paper section 3.3) — so instead of
separate client/server classes a single :class:`RpcPeer` owns each end of
a connection.  Programs register procedure tables; calls marshal through
the codecs in :mod:`repro.rpc.xdr`.

The underlying "pipe" is anything with ``send(bytes)`` and
``on_receive(handler)`` — a :class:`repro.sim.network.LinkSide`, a secure
channel wrapper, or a real TCP transport.  Delivery on the virtual
network is synchronous, so a reply to an outbound call arrives (via
nested handler invocation) before ``call`` returns; the TCP transport
pumps a reader loop to get the same effect.

Set ``trace`` to a callable to pretty-print RPC traffic, mirroring the
debugging aid the paper credits for SFS's reliability ("Our RPC library
can pretty-print RPC traffic for debugging").
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from ..obs.registry import CounterFamily, NULL_REGISTRY
from ..sim.sched import Future, SchedulerStalled, Sleep
from . import rpcmsg
from .rpcmsg import (
    AUTH_NONE,
    CallHeader,
    NULL_AUTH,
    OpaqueAuth,
    ReplyHeader,
    parse_message,
)
from .xdr import Codec, VOID, XdrError


class Pipe(Protocol):
    """Minimal transport interface RpcPeer relies on."""

    def send(self, data: bytes) -> None: ...

    def on_receive(self, handler: Callable[[bytes], None]) -> None: ...


def _request_digest(record: bytes) -> bytes:
    """Identity of a call's bytes, for duplicate detection."""
    return hashlib.sha1(record).digest()


class RpcError(Exception):
    """Base class for RPC-level failures."""


class RpcTimeout(RpcError):
    """No reply arrived for an outstanding call (e.g. record dropped)."""


class RpcTransportDown(RpcTimeout):
    """The transport itself failed mid-call (connection closed).

    Raised immediately — retransmitting into a dead link cannot help,
    and the caller's reconnect machinery should run instead.  Subclasses
    :class:`RpcTimeout` because every handler that tolerates a lost
    reply (mount redial, session reconnect) must tolerate a lost
    connection the same way; this also puts a deadline on handshake
    RPCs, which previously hung when a server crashed mid-CONNECT."""


class RpcNoWaiter(RpcError):
    """No reply *could* arrive: delivery is asynchronous and no
    ``reply_waiter`` is configured.  A transport-wiring problem, not a
    lost record — deliberately *not* an :class:`RpcTimeout`, so retry
    and redial logic that treats timeouts as packet loss (or an attack)
    can never mask the misconfiguration; it fails fast instead."""


#: Minimum first-retransmission timeout on transports that deliver
#: asynchronously (pipelined links).  Generous on purpose — it must
#: outlast not just propagation but reply serialization (a 16-segment
#: READV is ~130 KB on the wire) *and* server-side device time (a
#: COMMIT can charge tens of milliseconds of disk).  Real NFS clients
#: start around a second for the same reason.  Retries exist to
#: recover *lost* records; on a clean link the reply resolves the call
#: future first and the timer never matters.
_ASYNC_RTO_FLOOR = 0.4


@dataclass
class RetryPolicy:
    """At-most-once retransmission with exponential backoff.

    A peer with a policy retransmits an unanswered call up to
    ``max_attempts`` times total, waiting ``base_delay`` before the
    first retry and multiplying by ``multiplier`` (capped at
    ``max_delay``) thereafter.  From the second retry on, the peer first
    invokes its ``recovery_hook`` (if any) so the session layer can
    repair a desynchronized secure channel before the record is resent.
    The receiving peer's duplicate-reply cache keeps the semantics
    at-most-once: a retransmitted call is answered from the cache, never
    re-executed.
    """

    max_attempts: int = 5
    base_delay: float = 0.002
    multiplier: float = 4.0
    max_delay: float = 0.5


class RpcRejected(RpcError):
    """The peer rejected or failed to accept the call."""

    def __init__(self, header: ReplyHeader) -> None:
        super().__init__(
            f"rpc rejected: reply_stat={header.reply_stat} "
            f"accept_stat={header.accept_stat} reject_stat={header.reject_stat}"
        )
        self.header = header


class RpcBusy(RpcRejected):
    """The server's request queue was full; the call never executed.

    The admission-control backpressure signal (``SERVER_BUSY``).  Unlike
    other rejections this one is *retryable by design*: the client backs
    off (``BackoffPolicy``) and resends as a fresh call — no duplicate
    hazard, because the server never started the procedure."""


@dataclass
class Procedure:
    """One registered procedure: codecs plus the handler."""

    name: str
    arg_codec: Codec
    res_codec: Codec
    handler: Callable[[Any, "CallContext"], Any]


@dataclass
class CallContext:
    """Passed to every handler: who called, with what credentials."""

    peer: "RpcPeer"
    header: CallHeader

    @property
    def cred(self) -> OpaqueAuth:
        return self.header.cred


class Program:
    """A (program number, version) with its procedure table."""

    def __init__(self, name: str, prog: int, vers: int) -> None:
        self.name = name
        self.prog = prog
        self.vers = vers
        self.procedures: dict[int, Procedure] = {}
        # Procedure 0 is the conventional NULL ping.
        self.add_proc(0, "NULL", VOID, VOID, lambda args, ctx: None)

    def add_proc(
        self,
        number: int,
        name: str,
        arg_codec: Codec,
        res_codec: Codec,
        handler: Callable[[Any, CallContext], Any],
    ) -> None:
        self.procedures[number] = Procedure(name, arg_codec, res_codec, handler)

    def proc(self, number: int, name: str, arg_codec: Codec, res_codec: Codec):
        """Decorator form of :meth:`add_proc`."""

        def register(handler: Callable[[Any, CallContext], Any]):
            self.add_proc(number, name, arg_codec, res_codec, handler)
            return handler

        return register


TraceFn = Callable[[str], None]


class RpcPeer:
    """One end of an RPC connection; both caller and dispatcher."""

    def __init__(self, pipe: Pipe, name: str = "peer",
                 trace: TraceFn | None = None) -> None:
        self._pipe = pipe
        self.name = name
        self.trace = trace
        #: Optional hook for transports without synchronous delivery
        #: (real TCP): called repeatedly until the awaited reply lands.
        #: Must deliver at least one inbound record or raise.  Pipes can
        #: volunteer one via a `suggested_reply_waiter` attribute, which
        #: wrapper pipes (secure channel, switchable pipe) pass through.
        self.reply_waiter: Callable[[], None] | None = getattr(
            pipe, "suggested_reply_waiter", None
        )
        #: True when the transport delivers inside ``send`` (the virtual
        #: network); lets `call` tell a dropped record from a transport
        #: that has no way to wait for one.
        self.synchronous_delivery: bool = getattr(
            pipe, "synchronous_delivery", False
        )
        #: Virtual clock to charge retry backoff to; None = wall clock.
        self.backoff_clock = getattr(pipe, "suggested_clock", None)
        #: Metrics registry volunteered by the pipe (see :mod:`repro.obs`);
        #: wrapper pipes pass it through like `suggested_clock`.  The
        #: shared ``rpc.*`` counters aggregate across peers; the scoped
        #: call family backs :attr:`proc_counts` per peer.
        self.metrics = getattr(pipe, "suggested_metrics", None) or NULL_REGISTRY
        if self.metrics.enabled:
            self._calls_by_proc = self.metrics.scope(
                f"rpc.peer.{name}"
            ).family("calls")
        else:
            # proc_counts must keep working even with metrics disabled
            # (per-session RPC-mix assertions rely on it), so fall back
            # to an unregistered family.
            self._calls_by_proc = CounterFamily(f"rpc.peer.{name}.calls")
        self._m_calls = self.metrics.counter("rpc.calls")
        self._m_served = self.metrics.counter("rpc.served")
        self._m_retransmissions = self.metrics.counter("rpc.retransmissions")
        self._m_recoveries = self.metrics.counter("rpc.recoveries")
        self._m_timeouts = self.metrics.counter("rpc.timeouts")
        self._m_duplicates = self.metrics.counter("rpc.duplicates_served")
        self._m_evictions = self.metrics.counter("rpc.reply_cache_evictions")
        self._m_call_seconds = self.metrics.histogram("rpc.call_seconds")
        self._m_busy = self.metrics.counter("rpc.busy_replies")
        #: None (default) = classic single-shot calls.  Assign a
        #: :class:`RetryPolicy` to get retransmission + backoff.
        self.retry_policy: RetryPolicy | None = None
        #: Send-window depth for pipelined calls: at most this many
        #: xids in flight per channel.  ``None`` (default) = unlimited,
        #: the pre-window behavior.  When the window is full a new
        #: :meth:`call_task` *yields* on a slot future (backpressure by
        #: parking, never busy-spinning); completions hand their slot
        #: to the oldest waiter FIFO, so out-of-order replies still
        #: admit senders in arrival order.
        self.window_depth: int | None = getattr(
            pipe, "suggested_window_depth", None
        )
        #: Round-trip estimate volunteered by the transport (pipelined
        #: links surface their propagation delay).  Floors the first
        #: retransmission timeout at 2x RTT: under synchronous delivery
        #: a reply is present before the timer is even armed, so the
        #: floor changes nothing, but once delivery takes real wire
        #: time a 2ms base delay would expire long before any reply
        #: could arrive and every call would retransmit itself into a
        #: channel rekey storm.
        self.rtt_estimate: float = getattr(pipe, "suggested_rtt", 0.0) or 0.0
        self._window_in_flight = 0
        self._window_waiters: deque[Future] = deque()
        self.window_waits = 0
        self._m_window_waits = self.metrics.counter("rpc.window.waits")
        self._m_window_acquired = self.metrics.counter("rpc.window.acquired")
        self._m_window_in_flight = self.metrics.gauge("rpc.window.in_flight")
        #: When set, inbound CALLs are handed to this callable as
        #: ``dispatcher(header, body, request)`` instead of executing
        #: inline — the server's request queue hangs here.  The queue
        #: later runs the call via :meth:`serve_queued` or rejects it
        #: with :meth:`send_busy`.  Duplicate retransmissions are still
        #: answered from the reply cache *before* dispatch.
        self.dispatcher: Callable[[CallHeader, bytes, bytes], None] | None = None
        #: xid -> Future a cooperative task is waiting on (call_task).
        self._call_futures: dict[int, Future] = {}
        self._closed = False
        #: Called before the second and later retransmissions; the
        #: session layer hangs channel resynchronization here.  Returns
        #: truthy when it believes the path is repaired.
        self.recovery_hook: Callable[[], bool] | None = None
        self._xid = 0
        self._programs: dict[tuple[int, int], Program] = {}
        self._pending: dict[int, ReplyHeader | None] = {}
        self._results: dict[int, bytes] = {}
        #: xid -> (request digest, packed reply), for at-most-once
        #: semantics: a retransmitted call is answered from here, not
        #: re-executed.  The digest guards against xid collisions — only
        #: a byte-identical request counts as a retransmission; a new
        #: call that reuses an old xid executes normally.
        self._reply_cache: OrderedDict[int, tuple[bytes, bytes]] = OrderedDict()
        self.reply_cache_size = 128
        self.calls_sent = 0
        self.calls_served = 0
        self.retransmissions = 0
        self.recoveries = 0
        self.duplicates_served = 0
        self.reply_cache_evictions = 0
        pipe.on_receive(self._on_record)
        # Transports that can die under us (the virtual link on server
        # crash) volunteer an on_close hook; waiting tasks are failed
        # immediately instead of hanging until their timeout timers.
        on_close = getattr(pipe, "on_close", None)
        if callable(on_close):
            on_close(self._transport_closed)

    def _transport_closed(self) -> None:
        self._closed = True
        futures, self._call_futures = self._call_futures, {}
        for xid, future in futures.items():
            future.fail(RpcTransportDown(
                f"transport closed with xid {xid} in flight"
            ))

    @property
    def proc_counts(self) -> dict[tuple[int, int], int]:
        """(prog, proc) -> count of calls issued; the per-procedure RPC
        mix behind the paper's caching analysis (section 4.2).  Backed
        by this peer's metrics counter family."""
        return {key: counter.value
                for key, counter in self._calls_by_proc.items()}

    # --- serving ----------------------------------------------------------

    def register(self, program: Program) -> Program:
        self._programs[(program.prog, program.vers)] = program
        return program

    def unregister(self, prog: int, vers: int) -> None:
        self._programs.pop((prog, vers), None)

    def _on_record(self, data: bytes) -> None:
        peeked = rpcmsg.peek_message(data)
        if peeked is not None and peeked[0] == rpcmsg.CALL:
            cached = self._reply_cache.get(peeked[1])
            if cached is not None and cached[0] == _request_digest(data):
                # A retransmitted call we already executed: replay the
                # recorded reply so non-idempotent procedures keep
                # at-most-once semantics.
                self.duplicates_served += 1
                self._m_duplicates.inc()
                self._pipe.send(cached[1])
                return
        try:
            message = parse_message(data)
        except XdrError:
            # Garbage on the wire (e.g. adversarial injection below the
            # secure channel): drop it, exactly as a real stack would drop
            # an unparseable TCP record.
            if self.trace:
                self.trace(f"{self.name}: dropping unparseable record")
            return
        if message.mtype == rpcmsg.CALL:
            assert message.call is not None
            if self.dispatcher is not None:
                self.dispatcher(message.call, message.body, data)
            else:
                self._serve(message.call, message.body, data)
        else:
            assert message.reply is not None
            xid = message.reply.xid
            if xid in self._pending:
                self._pending[xid] = message.reply
                self._results[xid] = message.body
                future = self._call_futures.pop(xid, None)
                if future is not None:
                    future.resolve(message.reply)
            elif self.trace:
                self.trace(f"{self.name}: reply for unknown xid {xid}")

    def _serve(self, header: CallHeader, body: bytes, request: bytes) -> None:
        # The "rpc" layer claims dispatch, unmarshaling, and handler
        # glue; instrumented work the handler triggers (nfs3 dispatch,
        # crypto, network) is charged to its own layer by nesting.
        if not self.metrics.enabled:
            self._serve_inner(header, body, request)
            return
        layers = self.metrics.layers
        layers.push("rpc")
        try:
            self._serve_inner(header, body, request)
        finally:
            layers.pop()

    def serve_queued(self, header: CallHeader, body: bytes,
                     request: bytes) -> None:
        """Execute a previously queued call (the request-queue workers'
        entry point — bypasses :attr:`dispatcher` so the queue cannot
        re-enqueue its own work)."""
        self._serve(header, body, request)

    def send_busy(self, xid: int) -> None:
        """Reject a call with ``SERVER_BUSY`` — admission control's
        backpressure reply.  Deliberately *not* inserted into the reply
        cache: a busy rejection is not an execution, and the client's
        backed-off resend must run for real next time."""
        self._m_busy.inc()
        record = rpcmsg.pack_reply(
            ReplyHeader(xid, accept_stat=rpcmsg.SERVER_BUSY)
        )
        try:
            self._pipe.send(record)
        except ConnectionError:
            pass  # client already gone; its retry logic owns recovery

    def _serve_inner(self, header: CallHeader, body: bytes,
                     request: bytes) -> None:
        program = self._programs.get((header.prog, header.vers))
        if program is None:
            versions = [v for (p, v) in self._programs if p == header.prog]
            if versions:
                reply = ReplyHeader(
                    header.xid,
                    accept_stat=rpcmsg.PROG_MISMATCH,
                    mismatch_low=min(versions),
                    mismatch_high=max(versions),
                )
            else:
                reply = ReplyHeader(header.xid, accept_stat=rpcmsg.PROG_UNAVAIL)
            self._send_reply(header.xid, request, rpcmsg.pack_reply(reply))
            return
        procedure = program.procedures.get(header.proc)
        if procedure is None:
            reply = ReplyHeader(header.xid, accept_stat=rpcmsg.PROC_UNAVAIL)
            self._send_reply(header.xid, request, rpcmsg.pack_reply(reply))
            return
        try:
            args = procedure.arg_codec.unpack(body)
        except XdrError:
            reply = ReplyHeader(header.xid, accept_stat=rpcmsg.GARBAGE_ARGS)
            self._send_reply(header.xid, request, rpcmsg.pack_reply(reply))
            return
        if self.trace:
            self.trace(
                f"{self.name}: serve {program.name}.{procedure.name}({args!r})"
            )
        self.calls_served += 1
        self._m_served.inc()
        try:
            result = procedure.handler(args, CallContext(self, header))
            payload = procedure.res_codec.pack(result)
        except Exception as exc:  # noqa: BLE001 - surfaces as SYSTEM_ERR
            if self.trace:
                self.trace(
                    f"{self.name}: {program.name}.{procedure.name} failed: {exc!r}"
                )
            reply = ReplyHeader(header.xid, accept_stat=rpcmsg.SYSTEM_ERR)
            self._send_reply(header.xid, request, rpcmsg.pack_reply(reply))
            return
        self._send_reply(
            header.xid, request,
            rpcmsg.pack_reply(ReplyHeader(header.xid), payload),
        )

    def _send_reply(self, xid: int, request: bytes, record: bytes) -> None:
        """Send a reply and remember it for the duplicate-call cache."""
        self._reply_cache[xid] = (_request_digest(request), record)
        self._reply_cache.move_to_end(xid)
        while len(self._reply_cache) > self.reply_cache_size:
            # Past this point at-most-once degrades to at-least-once
            # for the evicted xid: a late retransmission re-executes.
            # The counter is the observable signal that the window has
            # been exceeded (see docs/OBSERVABILITY.md).
            self._reply_cache.popitem(last=False)
            self.reply_cache_evictions += 1
            self._m_evictions.inc()
        self._pipe.send(record)

    # --- calling ----------------------------------------------------------

    def call_oneway(
        self,
        prog: int,
        vers: int,
        proc: int,
        arg_codec: Codec,
        args: Any,
        cred: OpaqueAuth = NULL_AUTH,
    ) -> None:
        """Send a call without waiting for (or tracking) its reply.

        For genuinely fire-and-forget notifications such as lease
        invalidations: the reply, when it eventually arrives, is
        dropped as an unknown xid.  Never retransmits, never pumps the
        transport — a peer that cannot answer (crashed, mid-resync)
        costs the caller nothing but the send.  Raises
        :class:`RpcTransportDown` if the link is already closed.
        """
        self._xid += 1
        xid = self._xid
        header = CallHeader(xid, prog, vers, proc, cred=cred)
        record = rpcmsg.pack_call(header, arg_codec.pack(args))
        self.calls_sent += 1
        self._m_calls.inc()
        self._calls_by_proc.labels((prog, proc)).inc()
        if self.trace:
            self.trace(
                f"{self.name}: oneway prog={prog} proc={proc} args={args!r}"
            )
        try:
            self._pipe.send(record)
        except ConnectionError as exc:
            raise RpcTransportDown(
                f"transport down for xid {xid} "
                f"(prog={prog} proc={proc}): {exc}"
            ) from exc

    def call(
        self,
        prog: int,
        vers: int,
        proc: int,
        arg_codec: Codec,
        args: Any,
        res_codec: Codec,
        cred: OpaqueAuth = NULL_AUTH,
    ) -> Any:
        """Issue a call and return the decoded result.

        Raises :class:`RpcTimeout` if no reply arrives (dropped record),
        :class:`RpcNoWaiter` if none could have (asynchronous transport
        with no reply waiter configured), and :class:`RpcRejected` on a
        non-SUCCESS reply.

        With a :attr:`retry_policy` set, an unanswered call is
        retransmitted verbatim — same xid, same bytes — after an
        exponentially backed-off delay; the remote peer's duplicate-reply
        cache guarantees the procedure still executes at most once.
        From the second retry on, :attr:`recovery_hook` runs first so a
        desynchronized secure channel can be re-keyed before the record
        goes out again.

        This is now a thin synchronous shim over :meth:`call_task` —
        the one task-native call path — kept for tests and true sync
        entry points: it drives the generator in place, waiting out
        each yielded future by pumping the transport's
        :attr:`reply_waiter` (or advancing the backoff clock to the
        attempt's retransmission timer).
        """
        if not self.metrics.enabled:
            return self._drive(self.call_task(
                prog, vers, proc, arg_codec, args, res_codec, cred,
                _observe=False,
            ))
        layers = self.metrics.layers
        clock = self.backoff_clock
        sim0 = clock.now if clock is not None else 0.0
        cpu0 = time.perf_counter()
        layers.push("rpc")
        try:
            return self._drive(self.call_task(
                prog, vers, proc, arg_codec, args, res_codec, cred,
                _observe=False,
            ))
        finally:
            layers.pop()
            sim = (clock.now - sim0) if clock is not None else 0.0
            self._m_call_seconds.observe(time.perf_counter() - cpu0 + sim)

    def _drive(self, gen) -> Any:
        """Run a :meth:`call_task` generator to completion, synchronously.

        Mirrors the scheduler's step protocol — resolve/fail whatever
        the generator yields, send the outcome back in — so the task
        path and the sync path are one implementation.
        """
        try:
            waited = next(gen)
            while True:
                if isinstance(waited, Future):
                    self._wait_sync(waited)
                    if waited.exception is not None:
                        waited = gen.throw(waited.exception)
                    else:
                        waited = gen.send(waited.value)
                elif isinstance(waited, Sleep):
                    self._backoff(waited.seconds)
                    waited = gen.send(None)
                else:
                    self._backoff(float(waited))
                    waited = gen.send(None)
        except StopIteration as stop:
            return stop.value
        except BaseException:
            # A transport error surfaced outside the generator (e.g. a
            # TCP pump raising mid-wait): run its finally blocks so the
            # pending tables and window slot are reclaimed.
            gen.close()
            raise

    def _wait_sync(self, future: Future) -> None:
        """Block (in simulation terms) until *future* completes.

        Three ways forward, tried in order each iteration: pump the
        transport's reply waiter; advance the backoff clock to the next
        timer (the attempt's retransmission deadline, when a retry
        policy armed one); or fail the future — with
        :class:`RpcTimeout` when delivery is synchronous (the record
        was dropped inside ``send``), with :class:`RpcNoWaiter` when
        the transport is asynchronous and nothing can ever pump it.
        """
        while not future.done:
            if self.reply_waiter is not None:
                try:
                    self.reply_waiter()
                except SchedulerStalled:
                    # Nothing runnable and no timer: the record (or its
                    # reply) was lost.  Same as an elapsed
                    # retransmission timeout — the task path retries.
                    future.fail(RpcTimeout(
                        f"scheduler stalled waiting on {future.name}"
                    ))
                continue
            clock = self.backoff_clock
            if (clock is not None and self.retry_policy is not None):
                deadline = clock.next_deadline()
                if deadline is not None:
                    # No pump to run, but the retry policy armed a
                    # retransmission timer: advance to it (charging the
                    # wait to the virtual clock, exactly like the old
                    # synchronous backoff did).
                    clock.advance(max(0.0, deadline - clock.now))
                    continue
            if self.synchronous_delivery:
                future.fail(RpcTimeout(
                    f"no nested reply for {future.name}"
                ))
            else:
                future.fail(RpcNoWaiter(
                    f"no reply possible for {future.name}: transport "
                    "delivers asynchronously and no reply_waiter is "
                    "configured — wire one up (e.g. TcpPipe.pump) "
                    "before calling"
                ))

    # --- the send window --------------------------------------------------

    def _window_acquire(self):
        """Take (or wait for) an in-flight slot; ``yield from`` it."""
        depth = self.window_depth
        if depth is None:
            return
        if self._window_in_flight < depth and not self._window_waiters:
            self._window_in_flight += 1
        else:
            slot = Future(name=f"{self.name}:window-slot")
            self._window_waiters.append(slot)
            self.window_waits += 1
            self._m_window_waits.inc()
            # Backpressure: park until a completion hands this slot
            # over (the releaser does NOT decrement — ownership moves).
            yield slot
        self._m_window_acquired.inc()
        self._m_window_in_flight.set(self._window_in_flight)

    def _window_release(self) -> None:
        if self._window_waiters:
            # Hand the slot to the oldest waiter instead of freeing it:
            # FIFO admission even when replies complete out of order.
            self._window_waiters.popleft().resolve(None)
        else:
            self._window_in_flight = max(0, self._window_in_flight - 1)
        self._m_window_in_flight.set(self._window_in_flight)

    def _rejection(self, reply: ReplyHeader) -> RpcRejected:
        if (reply.reply_stat == rpcmsg.MSG_ACCEPTED
                and reply.accept_stat == rpcmsg.SERVER_BUSY):
            return RpcBusy(reply)
        return RpcRejected(reply)

    def _backoff(self, delay: float) -> None:
        """Wait before a retransmission, on whichever clock applies."""
        if delay <= 0:
            return
        if self.backoff_clock is not None:
            self.backoff_clock.advance(delay)
        else:
            time.sleep(delay)

    def call_task(
        self,
        prog: int,
        vers: int,
        proc: int,
        arg_codec: Codec,
        args: Any,
        res_codec: Codec,
        cred: OpaqueAuth = NULL_AUTH,
        *,
        _observe: bool = True,
    ):
        """The one task-native call path (``yield from`` it).

        Instead of pumping the transport until the reply lands, the
        generator yields a :class:`~repro.sim.sched.Future` per attempt
        and suspends, so many in-flight calls share one transport.  The
        retry policy's backoff schedule doubles as the per-attempt
        timeout: a timer fails the future after the attempt's delay,
        the task wakes, and the record is retransmitted (same xid, same
        bytes — at-most-once via the remote reply cache).  Raises the
        same exceptions as :meth:`call`, plus :class:`RpcBusy` when the
        server's admission control rejects the call.

        With :attr:`window_depth` set, the call first acquires an
        in-flight slot (yielding on a slot future when the window is
        full — backpressure without busy-spinning) and releases it on
        completion, handing it FIFO to the oldest waiter.
        """
        if self.window_depth is not None:
            yield from self._window_acquire()
            try:
                result = yield from self._call_task_inner(
                    prog, vers, proc, arg_codec, args, res_codec, cred,
                    _observe,
                )
            finally:
                self._window_release()
            return result
        return (yield from self._call_task_inner(
            prog, vers, proc, arg_codec, args, res_codec, cred, _observe,
        ))

    def _call_task_inner(
        self,
        prog: int,
        vers: int,
        proc: int,
        arg_codec: Codec,
        args: Any,
        res_codec: Codec,
        cred: OpaqueAuth,
        observe: bool,
    ):
        self._xid += 1
        xid = self._xid
        header = CallHeader(xid, prog, vers, proc, cred=cred)
        record = rpcmsg.pack_call(header, arg_codec.pack(args))
        self._pending[xid] = None
        self.calls_sent += 1
        self._m_calls.inc()
        self._calls_by_proc.labels((prog, proc)).inc()
        if self.trace:
            self.trace(f"{self.name}: call prog={prog} proc={proc} args={args!r}")
        clock = self.backoff_clock
        sim0 = clock.now if clock is not None else 0.0
        policy = self.retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        timeout = policy.base_delay if policy is not None else 0.0
        if policy is not None and not self.synchronous_delivery:
            # Asynchronous transports have real wire time between send
            # and reply: propagation (2x RTT margin) plus serialization
            # of large vectored replies, which the sender cannot size in
            # advance.  Floor the first retransmission timeout so only
            # genuine loss — not a reply still on the wire — triggers a
            # resend (and, worse, the second-retry channel rekey).  Under
            # synchronous delivery the reply beats the timer by
            # construction, so legacy timing is untouched.
            timeout = max(timeout, 2.0 * self.rtt_estimate,
                          _ASYNC_RTO_FLOOR)
        try:
            reply = None
            for attempt in range(attempts):
                if attempt:
                    self.retransmissions += 1
                    self._m_retransmissions.inc()
                    if self.trace:
                        self.trace(
                            f"{self.name}: retransmit xid={xid} "
                            f"(attempt {attempt + 1}/{attempts})"
                        )
                    if attempt >= 2 and self.recovery_hook is not None:
                        try:
                            if self.recovery_hook():
                                self.recoveries += 1
                                self._m_recoveries.inc()
                        except Exception:  # noqa: BLE001 - keep retrying
                            pass
                if self._closed:
                    self._m_timeouts.inc()
                    raise RpcTransportDown(
                        f"transport down for xid {xid} "
                        f"(prog={prog} proc={proc})"
                    )
                future = Future(name=f"{self.name}:xid{xid}")
                self._call_futures[xid] = future
                try:
                    self._pipe.send(record)
                except ConnectionError as exc:
                    self._m_timeouts.inc()
                    raise RpcTransportDown(
                        f"transport down for xid {xid} "
                        f"(prog={prog} proc={proc}): {exc}"
                    ) from exc
                reply = self._pending.get(xid)
                if reply is not None:
                    break  # nested synchronous delivery answered already
                if clock is not None and policy is not None:
                    def expire(future=future, xid=xid) -> None:
                        if not future.done:  # reply already landed: no-op
                            future.fail(RpcTimeout(f"no reply for xid {xid}"))
                    clock.call_at(clock.now + timeout, expire)
                    timeout = min(timeout * policy.multiplier,
                                  policy.max_delay)
                try:
                    yield future
                except RpcTransportDown:
                    raise
                except RpcTimeout:
                    continue  # this attempt timed out: retransmit
                reply = self._pending.get(xid)
                if reply is not None:
                    break
            if reply is None:
                self._m_timeouts.inc()
                raise RpcTimeout(
                    f"no reply for xid {xid} (prog={prog} proc={proc})"
                )
            if not reply.successful:
                raise self._rejection(reply)
            return res_codec.unpack(self._results.pop(xid))
        finally:
            self._pending.pop(xid, None)
            self._results.pop(xid, None)
            self._call_futures.pop(xid, None)
            if observe and self.metrics.enabled and clock is not None:
                self._m_call_seconds.observe(clock.now - sim0)
