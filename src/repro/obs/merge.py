"""Registry-snapshot merging and diffing.

The fleet control plane collects one snapshot per simulated machine;
benches collect one per World.  Computing anything *fleet-wide* (the
p99 across every shard's latency histogram, total busy-rejects) needs
those snapshots combined — and because histograms use the registry's
fixed exponential buckets, they can be merged bucket-wise and quantiles
re-estimated from the sum, no raw samples required.

Merge rules, keyed by the snapshot JSON shape:

========================  ====================================
counter (int)             sum
gauge (float)             last write wins
gauge dict (with peak)    value: last write; peak: max
histogram dict            bucket-wise sum; count/sum added;
                          mean/p50/p95/p99 recomputed
family dict               per-label sum
layers                    cpu/sim/total summed per layer
========================  ====================================

"Last write" follows the order snapshots are passed in, so callers
control precedence (the collector passes sources in registration
order).  :func:`diff_snapshots` is the companion for *same-source*
comparisons over time: monotonic shapes (counters, histograms,
families) subtract, gauges report the newer value.
"""

from __future__ import annotations

from .registry import Histogram


def _is_typed(value, kind: str) -> bool:
    return isinstance(value, dict) and value.get("type") == kind


def _histogram_from_snapshot(snap: dict) -> Histogram:
    """Rebuild a Histogram instrument from its snapshot dict."""
    bounds = tuple(bound for bound, _n in snap["buckets"]
                   if bound is not None)
    histogram = Histogram("merged", bounds)
    histogram.bucket_counts = [n for _bound, n in snap["buckets"]]
    histogram.count = snap["count"]
    histogram.sum = snap["sum"]
    return histogram


def _both_typed(merged, incoming, kind: str, name: str) -> bool:
    """True if both values are *kind*; ValueError if only one is (a
    source changed an instrument's shape — merging would corrupt)."""
    a, b = _is_typed(merged, kind), _is_typed(incoming, kind)
    if a != b:
        raise ValueError(
            f"metric {name!r}: cannot merge a {kind} with a "
            f"{type(incoming if a else merged).__name__}"
        )
    return a


def merge_metric(merged, incoming, name: str = "?"):
    """Merge one instrument's snapshot value into an accumulated one."""
    if _both_typed(merged, incoming, "histogram", name):
        a = _histogram_from_snapshot(merged)
        b = _histogram_from_snapshot(incoming)
        if a.bounds != b.bounds:
            raise ValueError(
                f"metric {name!r}: histogram bucket bounds differ; "
                "only same-bounds histograms merge"
            )
        a.bucket_counts = [x + y for x, y in
                           zip(a.bucket_counts, b.bucket_counts)]
        a.count += b.count
        a.sum += b.sum
        return a.snapshot()
    if _both_typed(merged, incoming, "family", name):
        values = dict(merged["values"])
        for label, count in incoming["values"].items():
            values[label] = values.get(label, 0) + count
        return {"type": "family", "values": dict(sorted(values.items()))}
    if _both_typed(merged, incoming, "gauge", name):
        return {"type": "gauge", "value": incoming["value"],
                "peak": max(merged["peak"], incoming["peak"])}
    if isinstance(merged, bool) or isinstance(incoming, bool):
        raise ValueError(f"metric {name!r}: cannot merge booleans")
    if isinstance(merged, int) and isinstance(incoming, int):
        return merged + incoming                      # counters
    if isinstance(merged, (int, float)) and isinstance(incoming, (int, float)):
        return incoming                               # gauges: last write
    raise ValueError(
        f"metric {name!r}: incompatible snapshot shapes "
        f"{type(merged).__name__} vs {type(incoming).__name__}"
    )


def merge_metrics(metric_dicts) -> dict:
    """Merge any number of ``snapshot["metrics"]`` dicts into one."""
    merged: dict = {}
    for metrics in metric_dicts:
        for name, value in metrics.items():
            if name in merged:
                merged[name] = merge_metric(merged[name], value, name)
            else:
                merged[name] = value
    return dict(sorted(merged.items()))


def _merge_layers(layer_dicts) -> dict:
    merged: dict = {}
    for layers in layer_dicts:
        for name, triple in layers.items():
            into = merged.setdefault(
                name, {"cpu": 0.0, "sim": 0.0, "total": 0.0})
            for key in ("cpu", "sim", "total"):
                into[key] += triple.get(key, 0.0)
    return dict(sorted(merged.items()))


def merge_snapshots(snapshots, meta: dict | None = None) -> dict:
    """Merge full registry snapshots into one fleet-level snapshot.

    *snapshots* is an iterable of snapshot dicts, or a ``{name: dict}``
    mapping (names land in ``meta.sources``).  Ordering matters only
    for plain gauges (last write wins).
    """
    if isinstance(snapshots, dict):
        names = list(snapshots)
        ordered = [snapshots[name] for name in names]
    else:
        ordered = list(snapshots)
        names = [snap.get("meta", {}).get("source", f"#{index}")
                 for index, snap in enumerate(ordered)]
    merged = {
        "metrics": merge_metrics(s.get("metrics", {}) for s in ordered),
        "layers": _merge_layers(s.get("layers", {}) for s in ordered),
        "meta": {"merged_from": len(ordered), "sources": names},
    }
    if meta:
        merged["meta"].update(meta)
    return merged


def diff_metric(before, after, name: str = "?"):
    """The change from *before* to *after* for one instrument."""
    if _is_typed(before, "histogram") and _is_typed(after, "histogram"):
        a = _histogram_from_snapshot(before)
        b = _histogram_from_snapshot(after)
        if a.bounds != b.bounds:
            raise ValueError(
                f"metric {name!r}: histogram bucket bounds differ"
            )
        b.bucket_counts = [y - x for x, y in
                           zip(a.bucket_counts, b.bucket_counts)]
        b.count -= a.count
        b.sum -= a.sum
        return b.snapshot()
    if _is_typed(before, "family") and _is_typed(after, "family"):
        values = {}
        for label in sorted(set(before["values"]) | set(after["values"])):
            delta = (after["values"].get(label, 0)
                     - before["values"].get(label, 0))
            if delta:
                values[label] = delta
        return {"type": "family", "values": values}
    if _is_typed(before, "gauge") and _is_typed(after, "gauge"):
        return {"type": "gauge", "value": after["value"],
                "peak": after["peak"]}
    if isinstance(before, int) and isinstance(after, int):
        return after - before
    if isinstance(before, (int, float)) and isinstance(after, (int, float)):
        return after                                  # gauge: newer value
    raise ValueError(
        f"metric {name!r}: incompatible snapshot shapes "
        f"{type(before).__name__} vs {type(after).__name__}"
    )


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-metric change between two snapshots of the *same* source.

    Metrics present only in *after* pass through unchanged; metrics
    that disappeared are dropped (a restart built a fresh registry).
    """
    before_metrics = before.get("metrics", {})
    metrics = {}
    for name, value in after.get("metrics", {}).items():
        if name in before_metrics:
            metrics[name] = diff_metric(before_metrics[name], value, name)
        else:
            metrics[name] = value
    layers = {}
    before_layers = before.get("layers", {})
    for name, triple in after.get("layers", {}).items():
        base = before_layers.get(name, {})
        layers[name] = {key: triple.get(key, 0.0) - base.get(key, 0.0)
                        for key in ("cpu", "sim", "total")}
    return {"metrics": dict(sorted(metrics.items())),
            "layers": dict(sorted(layers.items())),
            "meta": {"diff": True}}
