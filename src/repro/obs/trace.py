"""Structured tracing: nested spans and per-layer time attribution.

Two instruments share the hybrid time model of :mod:`repro.bench.timing`
(real CPU seconds from ``time.perf_counter`` plus simulated device
seconds from the virtual clock):

* :class:`Tracer` records *inclusive* spans that nest — the
  generalization of the bench Timer, with per-span tags and children.
* :class:`LayerTracker` is a stack profiler charging *exclusive* time to
  the innermost active layer.  Because virtual-network delivery is
  synchronous — a reply arrives via nested handler invocation before
  ``call`` returns, all on one Python stack — exactly one layer (or the
  root ``"other"`` bucket) is active at every instant, so the per-layer
  totals sum to the tracked wall total by construction.  This is what
  lets a Fig. 5 run split its headline number into crypto / RPC / NFS
  server / network / disk components that actually add up.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One traced section: inclusive cpu + simulated time, tags, children."""

    name: str
    tags: dict[str, Any] = field(default_factory=dict)
    cpu_seconds: float = 0.0
    sim_seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    @property
    def total(self) -> float:
        return self.cpu_seconds + self.sim_seconds

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "cpu_seconds": self.cpu_seconds,
            "sim_seconds": self.sim_seconds,
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


class _SpanHandle:
    """Context manager driving one span's lifetime."""

    __slots__ = ("_tracer", "_span", "_cpu0", "_sim0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._cpu0 = 0.0
        self._sim0 = 0.0

    def __enter__(self) -> Span:
        tracer = self._tracer
        if tracer._stack:
            tracer._stack[-1].children.append(self._span)
        else:
            tracer.roots.append(self._span)
        tracer._stack.append(self._span)
        self._sim0 = tracer._now_sim()
        self._cpu0 = time.perf_counter()
        return self._span

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        self._span.cpu_seconds += time.perf_counter() - self._cpu0
        self._span.sim_seconds += tracer._now_sim() - self._sim0
        tracer._stack.pop()
        return False


class Tracer:
    """Records a forest of nested spans against cpu + simulated time.

    Span times are *inclusive* (a parent's time covers its children);
    use :class:`LayerTracker` for exclusive attribution.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def _now_sim(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def span(self, name: str, **tags: Any) -> _SpanHandle:
        """``with tracer.span("negotiate", rounds=3) as s: ...``"""
        return _SpanHandle(self, Span(name, tags))

    def measure(self, name: str, fn, **tags: Any) -> Span:
        """Run *fn* inside a span and return the finished span."""
        handle = self.span(name, **tags)
        with handle as span:
            fn()
        return span

    def to_dicts(self) -> list[dict]:
        return [span.to_dict() for span in self.roots]


class _LayerContext:
    __slots__ = ("_tracker", "_name")

    def __init__(self, tracker: "LayerTracker", name: str) -> None:
        self._tracker = tracker
        self._name = name

    def __enter__(self) -> "LayerTracker":
        self._tracker.push(self._name)
        return self._tracker

    def __exit__(self, *exc) -> bool:
        self._tracker.pop()
        return False


class LayerTracker:
    """Charges exclusive cpu + simulated time to the innermost layer.

    Instrumented sections bracket themselves with :meth:`push` /
    :meth:`pop` (or ``with layers.layer("crypto")``).  Time between a
    push and the next push/pop is charged to the pushed layer; time with
    an empty stack goes to the root bucket :data:`ROOT` (``"other"``).
    Nested pushes suspend the outer layer, so totals are exclusive and
    :meth:`breakdown` sums to exactly the time elapsed since
    :meth:`reset`.
    """

    ROOT = "other"
    enabled = True

    __slots__ = ("_clock", "_stack", "_totals", "_cpu_mark", "_sim_mark")

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._stack: list[str] = []
        self._totals: dict[str, list[float]] = {}
        self._cpu_mark = time.perf_counter()
        self._sim_mark = self._now_sim()

    def _now_sim(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    def _flush(self) -> None:
        cpu = time.perf_counter()
        sim = self._now_sim()
        name = self._stack[-1] if self._stack else self.ROOT
        bucket = self._totals.get(name)
        if bucket is None:
            bucket = self._totals[name] = [0.0, 0.0]
        bucket[0] += cpu - self._cpu_mark
        bucket[1] += sim - self._sim_mark
        self._cpu_mark = cpu
        self._sim_mark = sim

    def push(self, name: str) -> None:
        self._flush()
        self._stack.append(name)

    def pop(self) -> None:
        self._flush()
        if self._stack:
            self._stack.pop()

    def layer(self, name: str) -> _LayerContext:
        return _LayerContext(self, name)

    def reset(self) -> None:
        """Zero the totals and restart the accounting window now.

        The layer stack survives — reset may run while instrumented
        code is active further up the call stack.
        """
        self._totals.clear()
        self._cpu_mark = time.perf_counter()
        self._sim_mark = self._now_sim()

    def breakdown(self) -> dict[str, tuple[float, float]]:
        """Per-layer ``(cpu_seconds, sim_seconds)`` since the last reset."""
        self._flush()
        return {name: (cpu, sim) for name, (cpu, sim) in self._totals.items()}

    def total(self) -> float:
        """Total tracked seconds (cpu + sim) since the last reset."""
        return sum(cpu + sim for cpu, sim in self.breakdown().values())


class _NullLayerContext:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_LAYER_CONTEXT = _NullLayerContext()


class NullLayerTracker:
    """Do-nothing LayerTracker for disabled metrics."""

    ROOT = LayerTracker.ROOT
    enabled = False

    __slots__ = ()

    def push(self, name: str) -> None:
        pass

    def pop(self) -> None:
        pass

    def layer(self, name: str) -> _NullLayerContext:
        return _NULL_LAYER_CONTEXT

    def reset(self) -> None:
        pass

    def breakdown(self) -> dict[str, tuple[float, float]]:
        return {}

    def total(self) -> float:
        return 0.0
