"""Snapshot exporter: JSON files and paper-style text tables.

Two output shapes:

* a **single snapshot** — ``{"meta": ..., "metrics": ..., "layers": ...}``
  from one registry (:func:`registry_snapshot` / :func:`write_snapshot`);
* a **collection** — ``{"snapshots": {name: snapshot, ...}}`` gathered
  across benchmark runs by :class:`SnapshotCollector` (what
  ``python -m repro.bench --metrics-out`` writes and CI uploads).

``python -m repro.obs <file.json>`` pretty-prints either shape using the
same ``format_table`` renderer the benchmark figures use.
"""

from __future__ import annotations

import json
from typing import Any

#: Display order for the attribution table; unknown layers follow.
LAYER_ORDER = ["crypto", "rpc", "nfs3", "network", "disk", "other"]


def _format_table(title: str, columns: list[str], rows: list[tuple]) -> str:
    # Imported lazily: repro.bench imports repro.obs (via the world
    # builder), so a module-level import here would be circular.
    from ..bench.timing import format_table

    return format_table(title, columns, rows)


def registry_snapshot(registry, meta: dict | None = None) -> dict:
    """One registry's metrics + layer breakdown as a JSON-ready dict."""
    snapshot = registry.snapshot()
    if meta:
        snapshot["meta"] = dict(meta)
    return snapshot


def write_snapshot(path: str, registry=None, snapshot: dict | None = None,
                   meta: dict | None = None) -> dict:
    """Write a snapshot JSON file; returns the snapshot dict."""
    if snapshot is None:
        if registry is None:
            raise ValueError("pass either a registry or a snapshot")
        snapshot = registry_snapshot(registry, meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot


def load_snapshot(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class SnapshotCollector:
    """Accumulates named registry snapshots across benchmark runs."""

    def __init__(self) -> None:
        self.snapshots: dict[str, dict] = {}

    def add(self, name: str, registry, meta: dict | None = None) -> None:
        self.snapshots[name] = registry_snapshot(registry, meta)

    def to_dict(self) -> dict:
        return {"snapshots": self.snapshots}

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _layer_triple(value: Any) -> tuple[float, float, float]:
    """Accept both snapshot dicts and LayerTracker breakdown tuples."""
    if isinstance(value, dict):
        return value["cpu"], value["sim"], value["total"]
    cpu, sim = value
    return cpu, sim, cpu + sim


def ordered_layers(layers: dict) -> list[str]:
    known = [name for name in LAYER_ORDER if name in layers]
    extra = sorted(name for name in layers if name not in LAYER_ORDER)
    return known + extra


def format_attribution(layers: dict, headline: float | None = None,
                       title: str = "Per-layer latency attribution") -> str:
    """Render a layer breakdown as a text table.

    *layers* is either ``snapshot["layers"]`` or a raw
    ``LayerTracker.breakdown()``.  With *headline* given, a final row
    shows the externally measured total the components should sum to.
    """
    rows: list[tuple] = []
    total_cpu = total_sim = total_all = 0.0
    for name in ordered_layers(layers):
        cpu, sim, total = _layer_triple(layers[name])
        rows.append((name, cpu, sim, total))
        total_cpu += cpu
        total_sim += sim
        total_all += total
    rows.append(("total", total_cpu, total_sim, total_all))
    if headline is not None:
        rows.append(("headline", "", "", headline))
    return _format_table(
        title, ["layer", "cpu (s)", "sim (s)", "total (s)"], rows
    )


def format_metrics(snapshot: dict, title: str = "Metrics") -> str:
    """Render a snapshot's instruments as a text table."""
    rows: list[tuple] = []
    for name, value in snapshot.get("metrics", {}).items():
        if isinstance(value, dict) and value.get("type") == "histogram":
            cell = (f"count={value['count']} sum={value['sum']:.6f}s "
                    f"mean={value['mean'] * 1e6:.1f}us")
            if "p50" in value:  # absent in pre-quantile snapshot files
                cell += (f" p50={value['p50'] * 1e6:.1f}us"
                         f" p95={value['p95'] * 1e6:.1f}us"
                         f" p99={value['p99'] * 1e6:.1f}us")
            rows.append((name, cell))
        elif isinstance(value, dict) and value.get("type") == "family":
            for label, count in value["values"].items():
                rows.append((f"{name}{{{label}}}", count))
        elif isinstance(value, dict) and value.get("type") == "gauge":
            rows.append((name, f"{value['value']:g} (peak {value['peak']:g})"))
        else:
            rows.append((name, value))
    return _format_table(title, ["metric", "value"], rows)


def format_snapshot(snapshot: dict, heading: str | None = None) -> str:
    """Pretty-print one snapshot: meta, attribution, then metrics."""
    parts: list[str] = []
    if heading:
        parts.append(f"=== {heading} ===")
    meta = snapshot.get("meta")
    if meta:
        parts.append("\n".join(f"meta: {key} = {meta[key]}"
                               for key in sorted(meta)))
    if snapshot.get("layers"):
        parts.append(format_attribution(snapshot["layers"]))
    parts.append(format_metrics(snapshot))
    return "\n\n".join(parts)
