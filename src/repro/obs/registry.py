"""A hierarchical metrics registry: counters, gauges, histograms.

Instruments live under dotted names (``rpc.calls``,
``channel.mac_reject``, ``nfs3.ops.read``) in one flat, ordered store
per registry.  ``counter()`` / ``gauge()`` / ``histogram()`` /
``family()`` are get-or-create, so independent components referring to
the same name share the instrument (that is how per-link network
counters aggregate into one ``net.messages``).

Registries are *instance-scoped*: each World/session builds its own, so
parallel tests never share state.  Components that can exist many times
under one registry (RPC peers) carve a private namespace with
:meth:`MetricsRegistry.scope`, which uniquifies the prefix.

:data:`NULL_REGISTRY` is the disabled configuration — every instrument
is a shared no-op, and the layer tracker never reads a clock — so
instrumented code needs no ``if metrics:`` guards on the hot path.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable

from .trace import LayerTracker, NullLayerTracker

#: Fixed exponential histogram buckets: 1 µs to ~17 minutes in steps of
#: 4x.  Fixed so histograms from any two runs are bucket-compatible.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(4**i * 1e-6 for i in range(16))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can move both ways (queue depths, cache sizes).

    With ``track_peak`` the gauge also keeps a high-watermark: the
    largest value it has held since creation (or the last
    :meth:`reset_peak`).  Peaked gauges snapshot as a dict carrying
    both numbers, so exported artifacts answer "how deep did the queue
    get" without ad-hoc side counters.
    """

    __slots__ = ("name", "value", "track_peak", "peak")

    def __init__(self, name: str, track_peak: bool = False) -> None:
        self.name = name
        self.value = 0.0
        self.track_peak = track_peak
        self.peak = 0.0

    def enable_peak(self) -> None:
        """Upgrade an existing gauge to watermark tracking in place."""
        self.track_peak = True
        if self.peak < self.value:
            self.peak = self.value

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset_peak(self) -> None:
        """Restart the watermark from the current value (e.g. after a
        crash wipes the state the old peak described)."""
        self.peak = self.value

    def snapshot(self):
        if self.track_peak:
            return {"type": "gauge", "value": self.value, "peak": self.peak}
        # Always a float, so snapshot JSON distinguishes gauges from
        # counters (ints) — the merge helper's dispatch relies on it.
        return float(self.value)


class Histogram:
    """Counts observations into fixed exponential buckets.

    ``bounds[i]`` is the inclusive upper edge of bucket *i*; one
    overflow bucket catches everything beyond the last bound.  Bucket
    placement is deterministic — no wall-clock or random dependencies.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str,
                 bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile by interpolating within buckets.

        Walks the cumulative counts to the bucket holding rank
        ``q * count`` and interpolates linearly between that bucket's
        edges — the standard estimate for pre-aggregated exponential
        buckets (so p99 from a snapshot needs no raw samples).
        Observations in the overflow bucket report the last finite
        bound, a deliberate floor rather than a guess.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q} outside (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, n in enumerate(self.bucket_counts):
            if seen + n >= rank and n > 0:
                if index >= len(self.bounds):
                    return self.bounds[-1]  # overflow: floor, not guess
                lo = self.bounds[index - 1] if index else 0.0
                hi = self.bounds[index]
                return lo + (hi - lo) * ((rank - seen) / n)
            seen += n
        return self.bounds[-1]

    def snapshot(self) -> dict:
        buckets = [[bound, n]
                   for bound, n in zip(self.bounds, self.bucket_counts)]
        buckets.append([None, self.bucket_counts[-1]])  # overflow
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


class CounterFamily:
    """Counters sharing one name, split by an arbitrary hashable label.

    ``family.labels((prog, proc)).inc()`` is how RpcPeer keeps its
    per-procedure call mix; :meth:`items` preserves the raw label keys
    so existing consumers (``proc_counts``) need no string parsing.
    """

    __slots__ = ("name", "_children")

    def __init__(self, name: str) -> None:
        self.name = name
        self._children: dict[Any, Counter] = {}

    def labels(self, key: Any) -> Counter:
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = Counter(f"{self.name}{{{key}}}")
        return child

    def items(self):
        return self._children.items()

    def total(self) -> int:
        return sum(child.value for child in self._children.values())

    def snapshot(self) -> dict:
        values = {str(key): child.value
                  for key, child in self._children.items()}
        return {"type": "family",
                "values": dict(sorted(values.items()))}


class MetricsRegistry:
    """One session's worth of instruments plus its layer tracker."""

    enabled = True

    def __init__(self, clock=None) -> None:
        self._instruments: dict[str, Any] = {}
        self._scope_counts: dict[str, int] = {}
        #: The per-layer latency-attribution profiler (see
        #: :class:`repro.obs.trace.LayerTracker`).
        self.layers = LayerTracker(clock)

    def _get(self, name: str, kind: type, factory) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = factory(name)
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str, track_peak: bool = False) -> Gauge:
        gauge = self._get(name, Gauge, Gauge)
        if track_peak:
            gauge.enable_peak()
        return gauge

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, lambda n: Histogram(n, bounds))

    def family(self, name: str) -> CounterFamily:
        return self._get(name, CounterFamily, CounterFamily)

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A per-instance namespace under ``prefix``.

        Every call returns a *distinct* prefix (``prefix``,
        ``prefix#2``, ...) so same-named components — two peers both
        called ``sfscd->host`` after a redial — never share instruments.
        """
        count = self._scope_counts.get(prefix, 0) + 1
        self._scope_counts[prefix] = count
        unique = prefix if count == 1 else f"{prefix}#{count}"
        return ScopedRegistry(self, unique)

    def snapshot(self) -> dict:
        """All instruments plus the layer breakdown, JSON-serializable."""
        metrics = {name: self._instruments[name].snapshot()
                   for name in sorted(self._instruments)}
        layers = {
            name: {"cpu": cpu, "sim": sim, "total": cpu + sim}
            for name, (cpu, sim) in sorted(self.layers.breakdown().items())
        }
        return {"metrics": metrics, "layers": layers}


class ScopedRegistry:
    """A view writing ``<prefix>.<name>`` instruments into the parent."""

    __slots__ = ("_parent", "prefix")

    def __init__(self, parent: MetricsRegistry, prefix: str) -> None:
        self._parent = parent
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._parent.enabled

    @property
    def layers(self):
        return self._parent.layers

    def counter(self, name: str) -> Counter:
        return self._parent.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str, track_peak: bool = False) -> Gauge:
        return self._parent.gauge(f"{self.prefix}.{name}",
                                  track_peak=track_peak)

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._parent.histogram(f"{self.prefix}.{name}", bounds)

    def family(self, name: str) -> CounterFamily:
        return self._parent.family(f"{self.prefix}.{name}")

    def scope(self, prefix: str) -> "ScopedRegistry":
        return self._parent.scope(f"{self.prefix}.{prefix}")


class _NullInstrument:
    """One shared object standing in for every disabled instrument."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    peak = 0
    track_peak = False

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def enable_peak(self) -> None:
        pass

    def reset_peak(self) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def quantile(self, q) -> float:
        return 0.0

    def labels(self, key) -> "_NullInstrument":
        return self

    def items(self):
        return ()

    def total(self) -> int:
        return 0

    def snapshot(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Metrics disabled: every instrument is a shared no-op.

    Pass this (or :data:`NULL_REGISTRY`) wherever a registry is accepted
    to turn instrumentation off without touching instrumented code.
    """

    enabled = False

    def __init__(self) -> None:
        self.layers = NullLayerTracker()

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, track_peak: bool = False) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def family(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def scope(self, prefix: str) -> "NullRegistry":
        return self

    def snapshot(self) -> dict:
        return {"metrics": {}, "layers": {}}


#: The shared disabled registry; safe to hand to any number of components.
NULL_REGISTRY = NullRegistry()


class _TeeInstrument:
    """One instrument writing through to two underlying instruments.

    Reads (``value``, ``peak``, ``snapshot`` ...) come from the
    *primary*; writes go to both.  That keeps the primary the source of
    truth for existing consumers while the secondary accumulates the
    same series under another registry.
    """

    __slots__ = ("_primary", "_secondary")

    def __init__(self, primary, secondary) -> None:
        self._primary = primary
        self._secondary = secondary

    def __getattr__(self, name):
        return getattr(self._primary, name)

    def inc(self, amount=1) -> None:
        self._primary.inc(amount)
        self._secondary.inc(amount)

    def dec(self, amount=1) -> None:
        self._primary.dec(amount)
        self._secondary.dec(amount)

    def set(self, value) -> None:
        self._primary.set(value)
        self._secondary.set(value)

    def observe(self, value) -> None:
        self._primary.observe(value)
        self._secondary.observe(value)

    def reset_peak(self) -> None:
        self._primary.reset_peak()
        self._secondary.reset_peak()

    def labels(self, key) -> "_TeeInstrument":
        return _TeeInstrument(self._primary.labels(key),
                              self._secondary.labels(key))


class TeeRegistry:
    """A registry view fanning every write into two registries.

    The fleet control plane uses this to give each simulated machine a
    *per-source* registry (what its heartbeat reports to the collector)
    without breaking the world-wide registry every existing test and
    bench reads: instruments created through the tee update both.
    ``layers`` and ``scope`` delegate to the primary only — layer
    attribution is a per-World concern, not a per-source one.
    """

    __slots__ = ("_primary", "_secondary")

    def __init__(self, primary, secondary) -> None:
        self._primary = primary
        self._secondary = secondary

    @property
    def enabled(self) -> bool:
        return self._primary.enabled or self._secondary.enabled

    @property
    def layers(self):
        return self._primary.layers

    def counter(self, name: str) -> _TeeInstrument:
        return _TeeInstrument(self._primary.counter(name),
                              self._secondary.counter(name))

    def gauge(self, name: str, track_peak: bool = False) -> _TeeInstrument:
        return _TeeInstrument(
            self._primary.gauge(name, track_peak=track_peak),
            self._secondary.gauge(name, track_peak=track_peak),
        )

    def histogram(self, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> _TeeInstrument:
        return _TeeInstrument(self._primary.histogram(name, bounds),
                              self._secondary.histogram(name, bounds))

    def family(self, name: str) -> _TeeInstrument:
        return _TeeInstrument(self._primary.family(name),
                              self._secondary.family(name))

    def scope(self, prefix: str):
        return self._primary.scope(prefix)

    def snapshot(self) -> dict:
        return self._primary.snapshot()
