"""Pretty-print an exported metrics snapshot.

    python -m repro.obs snapshot.json

Accepts both single snapshots (``write_snapshot``) and collections
(``SnapshotCollector`` / ``python -m repro.bench --metrics-out``).
"""

from __future__ import annotations

import argparse
import sys

from .export import format_snapshot, load_snapshot


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print an observability snapshot file.",
    )
    parser.add_argument("snapshot", help="path to a snapshot JSON file")
    args = parser.parse_args(argv)
    data = load_snapshot(args.snapshot)
    if "snapshots" in data:
        for index, name in enumerate(sorted(data["snapshots"])):
            if index:
                print()
            print(format_snapshot(data["snapshots"][name], heading=name))
    else:
        print(format_snapshot(data))
    return 0


if __name__ == "__main__":
    sys.exit(main())
