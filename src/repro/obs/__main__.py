"""Inspect, merge, and diff exported metrics snapshots.

    python -m repro.obs snapshot.json                  # pretty-print
    python -m repro.obs show snapshot.json             # same, explicit
    python -m repro.obs merge a.json b.json -o out.json
    python -m repro.obs diff before.json after.json

``show`` accepts both single snapshots (``write_snapshot``) and
collections (``SnapshotCollector`` / ``python -m repro.bench
--metrics-out``).  ``merge`` combines any number of snapshot files into
one fleet-level snapshot using the registry-merge rules (counters and
families sum, gauges last-write with peaks maxed, histograms merge
bucket-wise so the merged p99 is computable); a collection file
contributes every snapshot it contains.  ``diff`` subtracts the
monotonic instruments of two snapshots of the same source — the
before/after view multi-World bench artifacts previously needed ad-hoc
scripts for.
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import format_snapshot, load_snapshot
from .merge import diff_snapshots, merge_snapshots


def _flatten(paths: list[str]) -> dict[str, dict]:
    """Load files into {name: snapshot}, expanding collections."""
    named: dict[str, dict] = {}
    for path in paths:
        data = load_snapshot(path)
        if "snapshots" in data:
            for name in sorted(data["snapshots"]):
                named[f"{path}:{name}"] = data["snapshots"][name]
        else:
            named[path] = data
    return named


def _single(path: str) -> dict:
    data = load_snapshot(path)
    if "snapshots" in data:
        raise SystemExit(
            f"{path} is a snapshot collection; diff wants single "
            "snapshots (merge it first)"
        )
    return data


def _cmd_show(args) -> int:
    data = load_snapshot(args.snapshot)
    if "snapshots" in data:
        for index, name in enumerate(sorted(data["snapshots"])):
            if index:
                print()
            print(format_snapshot(data["snapshots"][name], heading=name))
    else:
        print(format_snapshot(data))
    return 0


def _cmd_merge(args) -> int:
    merged = merge_snapshots(_flatten(args.snapshots))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"merged {merged['meta']['merged_from']} snapshot(s) "
              f"into {args.output}")
    else:
        print(format_snapshot(merged, heading="merged"))
    return 0


def _cmd_diff(args) -> int:
    delta = diff_snapshots(_single(args.before), _single(args.after))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(delta, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"diff written to {args.output}")
    else:
        print(format_snapshot(
            delta, heading=f"{args.before} -> {args.after}"))
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro.obs snapshot.json` still works.
    if argv and argv[0] not in ("show", "merge", "diff", "-h", "--help"):
        argv.insert(0, "show")
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect, merge, and diff observability snapshots.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    show = commands.add_parser("show", help="pretty-print a snapshot file")
    show.add_argument("snapshot", help="path to a snapshot JSON file")
    show.set_defaults(func=_cmd_show)

    merge = commands.add_parser(
        "merge", help="merge snapshot files into one fleet-level snapshot")
    merge.add_argument("snapshots", nargs="+",
                       help="snapshot or collection JSON files")
    merge.add_argument("-o", "--output", default=None,
                       help="write merged JSON here (default: print table)")
    merge.set_defaults(func=_cmd_merge)

    diff = commands.add_parser(
        "diff", help="subtract two snapshots of the same source")
    diff.add_argument("before", help="earlier snapshot JSON file")
    diff.add_argument("after", help="later snapshot JSON file")
    diff.add_argument("-o", "--output", default=None,
                      help="write diff JSON here (default: print table)")
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
