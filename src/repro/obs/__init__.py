"""Cross-layer observability: metrics registry, tracing, exporters.

The paper's evaluation (section 4) attributes SFS overhead to specific
layers — software encryption, user-level RPC relaying, NFS round trips.
This package is the measurement substrate that makes the same
decomposition possible in the reproduction:

* :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  histograms under hierarchical names (``rpc.calls``,
  ``channel.mac_reject``, ``nfs3.ops.read``).  Registries are
  instance-scoped: each :class:`repro.kernel.world.World` owns one, so
  parallel tests never share state.  :data:`NULL_REGISTRY` disables
  everything at near-zero cost.
* :mod:`repro.obs.trace` — nested spans recording both CPU time
  (``time.perf_counter``) and simulated time (:mod:`repro.sim.clock`),
  plus the :class:`LayerTracker` stack profiler behind the per-layer
  latency-attribution tables.
* :mod:`repro.obs.export` — JSON snapshots and paper-style text tables
  (imported on demand; ``python -m repro.obs snapshot.json`` pretty-
  prints a file).

Determinism: nothing here reads wall-clock time except through
``time.perf_counter`` for CPU measurement — the same dependency
:mod:`repro.bench.timing` already has.  Counter values depend only on
the instrumented code path.
"""

from .registry import (
    Counter,
    CounterFamily,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    ScopedRegistry,
)
from .trace import LayerTracker, NullLayerTracker, Span, Tracer

__all__ = [
    "Counter",
    "CounterFamily",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "LayerTracker",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullLayerTracker",
    "NullRegistry",
    "ScopedRegistry",
    "Span",
    "Tracer",
]
