"""The fleet control plane: see → judge → steer, on the virtual clock.

Everything the fleet does is already measured — each World carries a
metrics registry, and (since this subsystem) each simulated machine a
per-source one — but measurement alone cannot *steer*.  This package is
the star-topology single enforcement point over those silos:

* :mod:`collector` — heartbeat-driven snapshot aggregation with
  bounded per-source time-series rings and stale/dead marking;
* :mod:`slo` — declarative fleet-wide SLO specs (windowed histogram
  quantiles, counter rates, gauge watermarks) evaluated every tick;
* :mod:`policy` — closed-loop actuators feeding decisions back into
  the mechanisms earlier PRs built: dynamic admission depth (AIMD),
  replica steering biases, and closed-loop load shedding;
* :mod:`plane` — the ControlPlane wiring all three into one daemon
  task per World (``World.enable_control()``);
* :mod:`bench` — the ``bench control`` figure: a hot-shard fleet with
  and without the loop closed.

Nothing here adds trust: the control plane reads metrics and tunes
*availability* policy — admission bounds, replica preference, offered
load — never keys, signatures, or verification (the paper's separation
applies to the management plane too).
"""

from .collector import Collector, SourceRecord
from .plane import ControlPlane
from .policy import (
    AimdAdmission,
    LoadShedder,
    PolicyAction,
    PolicyEngine,
    ReplicaSteerer,
)
from .slo import SloEngine, SloSpec, SloStatus

__all__ = [
    "AimdAdmission",
    "Collector",
    "ControlPlane",
    "LoadShedder",
    "PolicyAction",
    "PolicyEngine",
    "ReplicaSteerer",
    "SloEngine",
    "SloSpec",
    "SloStatus",
    "SourceRecord",
]
