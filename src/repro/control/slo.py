"""Declarative fleet-wide SLOs evaluated against collector state.

An :class:`SloSpec` names a metric (glob patterns allowed), a reduction
and a threshold:

    SloSpec("shard-wait-p99", metric="server.queue.wait_seconds",
            reduce="p99", threshold=0.050, scope="sources")

Every control tick the engine resolves the spec against the collector:

* ``scope="merged"`` reads the fleet-level merged snapshot;
* ``scope="sources"`` reads every non-dead source separately and takes
  the **worst** match (max under ``op="<="``, min under ``op=">="``) —
  per-source values stay available to actuators that steer individual
  shards or mirrors.

Reductions over histograms (``p50``/``p95``/``p99``/``mean``/``count``)
and counter ``rate`` are **windowed** by default: computed on the diff
of the two newest ring snapshots, so the signal tracks *current*
behaviour instead of averaging over the whole run (a breach can end).
``value``/``peak`` read gauges instantly and ``total`` reads cumulative
counters.

The engine emits ``control.slo.<name>`` (observed value) and
``control.slo.<name>.healthy`` gauges, counts breach ticks in the
``control.slo.breach_ticks`` family, and records **transition events**
(healthy→breach, breach→healthy) in a bounded log for artifacts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from ..obs.registry import NULL_REGISTRY

#: Reductions that read per-tick windows when the ring allows it.
_WINDOWED = ("p50", "p95", "p99", "mean", "count", "rate")
_INSTANT = ("value", "peak", "total")


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective, declaratively."""

    name: str
    metric: str                 #: dotted metric name; fnmatch globs ok
    reduce: str = "value"       #: p50|p95|p99|mean|count|rate|value|peak|total
    threshold: float = 0.0
    op: str = "<="              #: healthy when ``observed op threshold``
    scope: str = "merged"       #: "merged" (fleet) or "sources" (worst-of)
    #: Windowed reductions look back this many collector ticks: 1 = the
    #: newest interval, larger = smoother signal (quantiles over one
    #: control period can rest on a handful of observations).
    window: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.reduce not in _WINDOWED + _INSTANT:
            raise ValueError(f"unknown reduction {self.reduce!r}")
        if self.op not in ("<=", ">="):
            raise ValueError(f"unknown op {self.op!r} (use '<=' or '>=')")
        if self.scope not in ("merged", "sources"):
            raise ValueError(f"unknown scope {self.scope!r}")
        if self.window < 1:
            raise ValueError("window must be at least 1 tick")

    def healthy(self, observed: float) -> bool:
        if self.op == "<=":
            return observed <= self.threshold
        return observed >= self.threshold

    def worse(self, a: float, b: float) -> float:
        """The worse of two observations under this spec's op."""
        return max(a, b) if self.op == "<=" else min(a, b)


@dataclass
class SloStatus:
    """One spec's evaluation at one tick."""

    spec: SloSpec
    t: float
    observed: float | None = None     #: worst matching value; None = no data
    healthy: bool = True
    #: scope="sources": worst value per source (actuator steering input).
    per_source: dict[str, float] = field(default_factory=dict)
    worst_source: str | None = None

    @property
    def breached(self) -> bool:
        return self.observed is not None and not self.healthy


def _reduce(value, reduce: str, dt: float) -> float | None:
    """Apply a reduction to one metric's snapshot value, or None if the
    shape does not support it (a glob can sweep in mixed shapes)."""
    if isinstance(value, dict) and value.get("type") == "histogram":
        if reduce in ("p50", "p95", "p99", "mean"):
            return float(value[reduce])
        if reduce == "count":
            return float(value["count"])
        if reduce == "rate":
            return value["count"] / dt if dt > 0 else 0.0
        return None
    if isinstance(value, dict) and value.get("type") == "gauge":
        if reduce in ("value", "peak"):
            return float(value[reduce])
        return None
    if isinstance(value, dict):      # family
        if value.get("type") == "family":
            total = sum(value["values"].values())
            if reduce in ("total", "count"):
                return float(total)
            if reduce == "rate":
                return total / dt if dt > 0 else 0.0
        return None
    if isinstance(value, bool):
        return None
    if isinstance(value, int):       # counter
        if reduce in ("total", "count"):
            return float(value)
        if reduce == "rate":
            return value / dt if dt > 0 else 0.0
        return None
    if isinstance(value, float):     # plain gauge
        return value if reduce == "value" else None
    return None


class SloEngine:
    """Evaluates a set of specs each tick and tracks breach state."""

    def __init__(self, specs=(), metrics=None, event_limit: int = 256
                 ) -> None:
        self.specs: list[SloSpec] = list(specs)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.statuses: dict[str, SloStatus] = {}
        #: healthy/breach *transitions* only — bounded, artifact-ready.
        self.events: deque[dict] = deque(maxlen=event_limit)
        self._breached: set[str] = set()
        self._f_breach_ticks = self.metrics.family("control.slo.breach_ticks")

    def add(self, spec: SloSpec) -> SloSpec:
        if any(existing.name == spec.name for existing in self.specs):
            raise ValueError(f"SLO {spec.name!r} already defined")
        self.specs.append(spec)
        return spec

    # -- evaluation --------------------------------------------------------

    def _snapshot_for(self, record_window, latest, windowed: bool):
        """Pick windowed vs cumulative metrics and the window length."""
        if windowed and record_window is not None:
            dt, diff = record_window
            return diff.get("metrics", {}), dt
        if latest is None:
            return {}, 0.0
        return latest.get("metrics", {}), 0.0

    def _evaluate_metrics(self, spec: SloSpec, metrics: dict, dt: float
                          ) -> float | None:
        worst: float | None = None
        for name, value in metrics.items():
            if not fnmatchcase(name, spec.metric):
                continue
            reduced = _reduce(value, spec.reduce, dt)
            if reduced is None:
                continue
            worst = reduced if worst is None else spec.worse(worst, reduced)
        return worst

    def evaluate(self, collector, t: float) -> dict[str, SloStatus]:
        """Evaluate every spec; returns {name: status} (also stored)."""
        self.statuses = {}
        for spec in self.specs:
            status = SloStatus(spec=spec, t=t)
            windowed = spec.reduce in _WINDOWED
            if spec.scope == "merged":
                metrics, dt = self._snapshot_for(
                    collector.merged_window(spec.window), collector.merged,
                    windowed)
                status.observed = self._evaluate_metrics(spec, metrics, dt)
            else:
                for name in sorted(collector.sources):
                    record = collector.sources[name]
                    if record.state == "dead":
                        continue
                    metrics, dt = self._snapshot_for(
                        record.window(spec.window), record.latest, windowed)
                    value = self._evaluate_metrics(spec, metrics, dt)
                    if value is None:
                        continue
                    status.per_source[name] = value
                    if (status.observed is None
                            or spec.worse(status.observed, value) == value):
                        status.observed = value
                        status.worst_source = name
            if status.observed is not None:
                status.healthy = spec.healthy(status.observed)
            self._publish(spec, status, t)
            self.statuses[spec.name] = status
        return self.statuses

    def _publish(self, spec: SloSpec, status: SloStatus, t: float) -> None:
        if status.observed is not None:
            self.metrics.gauge(f"control.slo.{spec.name}").set(
                status.observed)
        self.metrics.gauge(f"control.slo.{spec.name}.healthy").set(
            0.0 if status.breached else 1.0)
        was_breached = spec.name in self._breached
        if status.breached:
            self._f_breach_ticks.labels(spec.name).inc()
            self._breached.add(spec.name)
        else:
            self._breached.discard(spec.name)
        if status.breached != was_breached:
            self.events.append({
                "t": t,
                "slo": spec.name,
                "event": "breach" if status.breached else "recovered",
                "observed": status.observed,
                "threshold": spec.threshold,
                "op": spec.op,
                "worst_source": status.worst_source,
            })

    def artifact(self) -> dict:
        """Current status of every SLO + the transition event log."""
        return {
            "specs": [
                {
                    "name": spec.name, "metric": spec.metric,
                    "reduce": spec.reduce, "threshold": spec.threshold,
                    "op": spec.op, "scope": spec.scope,
                    "description": spec.description,
                }
                for spec in self.specs
            ],
            "statuses": {
                name: {
                    "observed": status.observed,
                    "healthy": status.healthy,
                    "worst_source": status.worst_source,
                    "per_source": dict(sorted(status.per_source.items())),
                }
                for name, status in sorted(self.statuses.items())
            },
            "events": list(self.events),
        }
