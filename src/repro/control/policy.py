"""Closed-loop policy: SLO breaches become mechanism adjustments.

Each actuator reads the tick's :class:`~repro.control.slo.SloStatus`
map and turns breaches into calls on mechanisms earlier PRs built —
never new mechanisms of its own:

:class:`AimdAdmission`
    Drives :meth:`RequestQueue.set_max_depth` per shard, TCP-style:
    **multiplicative decrease** when that shard's latency SLO breaches
    (a deep queue is stored latency — shed it to the clients as busy
    replies, which back off), **additive increase** while latency is
    healthy but the shard still rejects (capacity to spare; admit
    more).  Floors and ceilings keep the oscillation bounded.

:class:`ReplicaSteerer`
    Biases :class:`~repro.fleet.replicas.ReplicaSet` rankings away
    from mirrors whose per-source SLO breaches, and clears the bias on
    recovery.  Bias composes with — never overrides — the health
    machinery: banned or sidelined mirrors stay excluded regardless.

:class:`LoadShedder`
    Raises the closed-loop generators' think-time multiplier
    (``set_think_scale``) step-by-step while the fleet latency SLO
    breaches, and steps it back toward 1.0 on recovery.  This is the
    only actuator that reaches *outside* the service: when every
    server-side lever is exhausted, the remaining variable is offered
    load.

Every adjustment is recorded as a :class:`PolicyAction` in the
engine's bounded log — the audit trail the bench artifact ships.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..obs.registry import NULL_REGISTRY


@dataclass(frozen=True)
class PolicyAction:
    """One recorded adjustment (or deliberate non-adjustment)."""

    t: float
    actuator: str
    target: str
    action: str
    value: float
    reason: str

    def to_dict(self) -> dict:
        return {"t": self.t, "actuator": self.actuator,
                "target": self.target, "action": self.action,
                "value": self.value, "reason": self.reason}


class Actuator:
    """Interface: read statuses, adjust mechanisms, report actions."""

    name = "actuator"

    def actuate(self, t: float, statuses: dict,
                collector) -> list[PolicyAction]:
        raise NotImplementedError


class AimdAdmission(Actuator):
    """Per-shard AIMD on ``RequestQueue.max_depth``.

    Priority order encodes "a reject is worse than slow service": a
    rejected request got *zero* service and pays a full client backoff
    cycle, while a queued one merely waits.  So a shard breaching its
    reject-rate SLO gets **additive increase** up to ``ceiling`` (absorb
    the wave), and only a shard whose rejects are healthy but whose
    latency SLO breaches gets **multiplicative decrease** down to
    ``floor`` (a deep idle-ish queue is stored latency — trim it).
    """

    name = "aimd-admission"

    def __init__(self, queues: dict[str, object], latency_slo: str,
                 reject_slo: str, increase: int = 4, decrease: float = 0.5,
                 floor: int = 2, ceiling: int | None = None) -> None:
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        self.queues = dict(queues)          #: {source name: RequestQueue}
        self.latency_slo = latency_slo
        self.reject_slo = reject_slo
        self.increase = increase
        self.decrease = decrease
        self.floor = floor
        #: Per-queue headroom bound for additive increase; defaults to
        #: 4x the configured depth — elastic, but not unbounded memory.
        self.ceiling = {
            name: (ceiling if ceiling is not None else 4 * queue.max_depth)
            for name, queue in self.queues.items()
        }

    def actuate(self, t, statuses, collector) -> list[PolicyAction]:
        latency = statuses.get(self.latency_slo)
        rejects = statuses.get(self.reject_slo)
        actions: list[PolicyAction] = []
        for name in sorted(self.queues):
            queue = self.queues[name]
            lat = latency.per_source.get(name) if latency else None
            rej = rejects.per_source.get(name) if rejects else None
            rejecting = rej is not None and not rejects.spec.healthy(rej)
            if rejecting:
                new_depth = min(self.ceiling[name],
                                queue.max_depth + self.increase)
                if new_depth > queue.max_depth:
                    queue.set_max_depth(new_depth)
                    actions.append(PolicyAction(
                        t, self.name, name, "max_depth", new_depth,
                        f"rejecting ({rej:.6g}/s): additive increase",
                    ))
            elif lat is not None and not latency.spec.healthy(lat):
                new_depth = max(self.floor,
                                int(queue.max_depth * self.decrease))
                if new_depth < queue.max_depth:
                    queue.set_max_depth(new_depth)
                    actions.append(PolicyAction(
                        t, self.name, name, "max_depth", new_depth,
                        f"latency {lat:.6g} breaches "
                        f"{latency.spec.threshold:.6g} with rejects "
                        "healthy: multiplicative decrease",
                    ))
        return actions


class ReplicaSteerer(Actuator):
    """Bias replica selection away from breaching mirrors."""

    name = "replica-steering"

    def __init__(self, replica_sets, slo: str, bias: float = 0.050) -> None:
        self.replica_sets = list(replica_sets)
        self.slo = slo
        self.bias = bias
        self._biased: set[str] = set()

    def actuate(self, t, statuses, collector) -> list[PolicyAction]:
        status = statuses.get(self.slo)
        if status is None:
            return []
        actions: list[PolicyAction] = []
        for name, value in sorted(status.per_source.items()):
            breaching = not status.spec.healthy(value)
            if breaching == (name in self._biased):
                continue
            applied = False
            for replica_set in self.replica_sets:
                try:
                    replica_set.set_steering_bias(
                        name, self.bias if breaching else 0.0)
                    applied = True
                except KeyError:
                    continue            # this set has no such mirror
            if not applied:
                continue
            if breaching:
                self._biased.add(name)
                reason = (f"{status.spec.name} {value:.6g} breaches "
                          f"{status.spec.threshold:.6g}")
            else:
                self._biased.discard(name)
                reason = f"{status.spec.name} recovered ({value:.6g})"
            actions.append(PolicyAction(
                t, self.name, name, "steering_bias",
                self.bias if breaching else 0.0, reason))
        return actions


class LoadShedder(Actuator):
    """Raise closed-loop think time while a fleet SLO breaches."""

    name = "load-shedding"

    def __init__(self, targets, slo: str, step: float = 2.0,
                 max_scale: float = 16.0, ease: float | None = None) -> None:
        if step <= 1.0:
            raise ValueError("step must exceed 1.0")
        if ease is not None and ease <= 1.0:
            raise ValueError("ease must exceed 1.0")
        self.targets = list(targets)        #: anything with set_think_scale
        self.slo = slo
        self.step = step
        #: Fast attack, slow release: shed by ``step`` on a breach tick,
        #: ease by the (gentler) ``ease`` factor on a healthy one, so
        #: one quiet window does not throw the load right back.
        self.ease = ease if ease is not None else step ** 0.25
        self.max_scale = max_scale
        self.scale = 1.0

    def actuate(self, t, statuses, collector) -> list[PolicyAction]:
        status = statuses.get(self.slo)
        if status is None or status.observed is None:
            return []
        if status.breached:
            new_scale = min(self.max_scale, self.scale * self.step)
            reason = (f"{status.spec.name} {status.observed:.6g} breaches "
                      f"{status.spec.threshold:.6g}: shedding")
        else:
            new_scale = max(1.0, self.scale / self.ease)
            reason = f"{status.spec.name} healthy: easing shed"
        if new_scale == self.scale:
            return []
        self.scale = new_scale
        for target in self.targets:
            target.set_think_scale(new_scale)
        return [PolicyAction(t, self.name, "closed-loop-clients",
                             "think_scale", new_scale, reason)]


class PolicyEngine:
    """Runs every actuator each tick; keeps the bounded action log."""

    def __init__(self, actuators=(), metrics=None,
                 action_limit: int = 1024) -> None:
        self.actuators: list[Actuator] = list(actuators)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.actions: deque[PolicyAction] = deque(maxlen=action_limit)
        self._f_actions = self.metrics.family("control.policy.actions")

    def add(self, actuator: Actuator) -> Actuator:
        self.actuators.append(actuator)
        return actuator

    def actuate(self, t: float, statuses: dict,
                collector) -> list[PolicyAction]:
        tick_actions: list[PolicyAction] = []
        for actuator in self.actuators:
            for action in actuator.actuate(t, statuses, collector):
                tick_actions.append(action)
                self.actions.append(action)
                self._f_actions.labels(actuator.name).inc()
        return tick_actions

    def artifact(self) -> list[dict]:
        return [action.to_dict() for action in self.actions]
