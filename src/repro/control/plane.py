"""The ControlPlane: one daemon task running see → judge → steer.

``World.enable_control()`` creates one of these per World.  From then
on every machine the world builds gets a **per-source registry**: its
instruments write through a :class:`~repro.obs.registry.TeeRegistry`
to both the world-wide registry (so every existing consumer — benches,
tests, exporters — sees exactly what it always saw) and a private
per-machine registry the collector snapshots over the heartbeat.

The plane's daemon task wakes every ``period`` virtual seconds and runs
one tick:

1. **collect** — pull every source's heartbeat into its ring
   (:class:`~repro.control.collector.Collector`);
2. **judge** — evaluate the declared SLOs against the fresh state
   (:class:`~repro.control.slo.SloEngine`);
3. **steer** — let the actuators adjust admission depths, replica
   biases, and offered load (:class:`~repro.control.policy.PolicyEngine`).

Order matters within a World's setup: call ``enable_control()``
*before* building the machines whose metrics should be teed — adoption
of a pre-existing machine still gives it a heartbeat (liveness
tracking works), but its instruments were already bound to the world
registry and cannot be re-homed.

A note on liveness semantics: a server's heartbeat reporter returns
``None`` while ``master.down`` — exactly the window between
:meth:`crash` and :meth:`restart` — so the collector's stale/dead
marking is driven by the same crash machinery every other subsystem
reacts to, not by a separate failure model.
"""

from __future__ import annotations

from ..obs.export import registry_snapshot
from ..obs.registry import MetricsRegistry
from ..sim.sched import Sleep
from .collector import Collector
from .policy import PolicyAction, PolicyEngine
from .slo import SloEngine, SloSpec


class ControlPlane:
    """Collector + SLO engine + policy engine on one virtual-clock loop."""

    def __init__(self, world, period: float = 0.010, ring_size: int = 64,
                 stale_after: int = 2, dead_after: int = 5) -> None:
        if period <= 0:
            raise ValueError("control period must be positive")
        self.world = world
        self.period = period
        self.collector = Collector(
            world.clock, metrics=world.metrics, ring_size=ring_size,
            stale_after=stale_after, dead_after=dead_after,
        )
        self.slos = SloEngine(metrics=world.metrics)
        self.policy = PolicyEngine(metrics=world.metrics)
        self._started = False

    # -- source adoption ---------------------------------------------------

    def new_registry(self) -> MetricsRegistry:
        """A fresh per-source registry on the world's clock."""
        return MetricsRegistry(clock=self.world.clock)

    def adopt_server(self, machine) -> None:
        """Heartbeat a ServerMachine; down masters miss their beats."""
        if machine.location in self.collector.sources:
            return      # route() aliases can list one machine twice
        registry = getattr(machine, "registry", None)
        if registry is None:
            registry = machine.registry = self.new_registry()
        meta = {"source": machine.location, "kind": "server"}

        def report() -> dict | None:
            if machine.master.down:
                return None
            return registry_snapshot(registry, meta=meta)

        self.collector.register(machine.location, report, kind="server")
        # The boot beacon: a restart between (or straddling) heartbeat
        # pulls clears missed-beat debt instead of marching the source
        # toward dead — a flapping machine is alive-with-reset.
        name = machine.location
        machine.master.restart_hooks.append(
            lambda: self.collector.notify_boot(name)
        )

    def adopt_client(self, machine) -> None:
        """Heartbeat a ClientMachine (no crash model: always live)."""
        if machine.hostname in self.collector.sources:
            return
        registry = getattr(machine, "registry", None)
        if registry is None:
            registry = machine.registry = self.new_registry()
        meta = {"source": machine.hostname, "kind": "client"}

        def report() -> dict:
            return registry_snapshot(registry, meta=meta)

        self.collector.register(machine.hostname, report, kind="client")

    def register_source(self, name: str, report, kind: str = "other"):
        """Heartbeat anything else (load generators, adversaries...)."""
        return self.collector.register(name, report, kind=kind)

    # -- configuration -----------------------------------------------------

    def add_slo(self, spec: SloSpec) -> SloSpec:
        return self.slos.add(spec)

    def add_actuator(self, actuator):
        return self.policy.add(actuator)

    # -- the loop ----------------------------------------------------------

    def tick(self) -> list[PolicyAction]:
        """One full control iteration; also callable directly in tests."""
        t = self.world.clock.now
        self.collector.tick()
        statuses = self.slos.evaluate(self.collector, t)
        return self.policy.actuate(t, statuses, self.collector)

    def start(self) -> None:
        """Spawn the control loop as a daemon task (idempotent)."""
        if self._started:
            return
        scheduler = self.world.enable_concurrency()

        def loop():
            while True:
                yield Sleep(self.period)
                self.tick()

        scheduler.spawn(loop(), name="control-plane", daemon=True)
        self._started = True

    # -- reporting ---------------------------------------------------------

    def artifact(self) -> dict:
        """The fleet-level JSON artifact: per-source + merged snapshots,
        SLO statuses/events, and the policy action log."""
        return {
            "period": self.period,
            "collector": self.collector.artifact(),
            "slo": self.slos.artifact(),
            "actions": self.policy.artifact(),
        }
