"""The ``bench control`` figure: a hot shard, with and without the loop.

Topology: 16 closed-loop clients against a 4-shard fleet where one
shard is deliberately **hot** — its per-request service time is several
times its siblings' and most of the client population is pinned to
names it owns.  Unmanaged, the hot shard's bounded queue saturates:
admission control sheds arrivals as SERVER_BUSY, clients burn backoff
retries, and the fleet p99 is the hot shard's misery.

The managed run builds the identical world (same seed, same topology,
same client scripts) and closes the loop: the control plane's
collector pulls every shard's per-source registry each period, the SLO
engine watches windowed wait-time p99 and busy-reject rate per shard,
and two actuators respond —

* :class:`~repro.control.policy.LoadShedder` raises the clients'
  think-time multiplier while the fleet latency SLO breaches (and
  eases it back when it recovers);
* :class:`~repro.control.policy.AimdAdmission` retunes each shard's
  queue depth, shrinking it while that shard's latency breaches and
  re-growing it while the shard rejects with healthy latency.

Acceptance is comparative and deterministic per seed: the managed run
must beat the unmanaged one on *both* fleet p99 and busy-rejects.  The
figure also emits the fleet-level artifact — per-source and merged
snapshots, SLO breach events, and the policy action log — which CI
uploads from the control-smoke job.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core import proto
from ..core.client import ServerSession
from ..core.keyneg import EphemeralKeyCache
from ..fs import pathops
from ..fs.memfs import Cred
from ..kernel.world import World
from ..load.workload import DEFAULT_MIX, FILE_SIZE, OpMix, OpStream
from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types
from ..rpc.peer import RetryPolicy, RpcError
from ..sim.sched import Sleep
from .policy import AimdAdmission, LoadShedder
from .slo import SloSpec


@dataclass
class ControlBenchConfig:
    """One hot-shard run; the managed/unmanaged pair shares one config."""

    servers: int = 4
    clients: int = 16
    ops_per_client: int = 30
    seed: int = 2026
    think_time: float = 0.002
    io_size: int = 4096
    mix: OpMix = DEFAULT_MIX
    names: int = 24
    workers: int = 2
    service_time: float = 0.004
    #: The hot shard serves this many times slower than its siblings.
    hot_factor: float = 4.0
    #: Clients pinned to hot-shard names (the rest spread elsewhere).
    hot_clients: int = 10
    max_depth: int = 6
    rpc_timeout: float = 1.0
    encrypt: bool = True
    # -- the control loop --
    period: float = 0.020
    #: Per-shard windowed wait-seconds p99 objective.
    wait_p99_slo: float = 0.025
    #: Per-shard busy-reject rate objective (rejects per second).
    reject_rate_slo: float = 0.5
    slo_window: int = 5
    shed_step: float = 2.0
    shed_max: float = 64.0
    aimd_increase: int = 2
    aimd_decrease: float = 0.5
    aimd_floor: int = 2


@dataclass
class ShardOutcome:
    """One shard's slice of a run, from its per-source registry."""

    location: str
    hot: bool = False
    names: int = 0
    clients: int = 0
    ops_completed: int = 0
    p99: float = 0.0
    busy_rejects: int = 0
    peak_queue_depth: int = 0
    final_max_depth: int = 0
    latencies: list[float] = field(default_factory=list, repr=False)

    def finish(self) -> None:
        self.ops_completed = len(self.latencies)
        if self.latencies:
            self.p99 = _percentile(sorted(self.latencies), 0.99)


@dataclass
class ControlReport:
    """One run's outcome, all figures in simulated seconds."""

    controlled: bool
    clients: int
    servers: int
    hot_shard: str = ""
    ops_completed: int = 0
    op_errors: int = 0
    busy_rejects: int = 0
    busy_retries: int = 0
    duration: float = 0.0
    throughput: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    unfinished_tasks: int = 0
    final_think_scale: float = 1.0
    policy_actions: int = 0
    slo_events: int = 0
    shards: list[ShardOutcome] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list, repr=False)

    def finish(self, duration: float) -> None:
        self.duration = duration
        self.ops_completed = len(self.latencies)
        if duration > 0:
            self.throughput = self.ops_completed / duration
        if self.latencies:
            ordered = sorted(self.latencies)
            self.p50 = _percentile(ordered, 0.50)
            self.p95 = _percentile(ordered, 0.95)
            self.p99 = _percentile(ordered, 0.99)
        for shard in self.shards:
            shard.finish()


def _percentile(ordered: list[float], q: float) -> float:
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class ControlHarness:
    """One hot-shard world; ``controlled`` decides if the loop closes."""

    def __init__(self, config: ControlBenchConfig,
                 controlled: bool) -> None:
        self.config = config
        self.controlled = controlled
        self.world = World(seed=config.seed)
        self.scheduler = self.world.enable_concurrency(seed=config.seed)
        self.world.enable_contention()
        # Control first: machines built afterwards get per-source tee
        # registries, which is what makes scope="sources" SLOs real.
        self.plane = self.world.enable_control(
            period=config.period,
            ring_size=max(64, 4 * config.slo_window),
        )
        self.fleet = self.world.add_fleet(config.servers)
        self.names = [f"proj{index:02d}" for index in range(config.names)]
        for name in self.names:
            self.fleet.provision(name)
            self._seed_file(name)
        self.hot_shard = self._pick_hot_shard()
        self.queues = {
            shard.location: shard.server.enable_queueing(
                max_depth=config.max_depth, workers=config.workers,
                service_time=(config.service_time * config.hot_factor
                              if shard.location == self.hot_shard
                              else config.service_time),
            )
            for shard in self.fleet.shards
        }
        self._outcomes = {
            shard.location: ShardOutcome(
                location=shard.location,
                hot=(shard.location == self.hot_shard),
            )
            for shard in self.fleet.shards
        }
        for location in self.fleet.assignments.values():
            self._outcomes[location].names += 1
        #: Load-shedding hook, same contract as LoadHarness.
        self.think_scale = 1.0
        self._g_shed = self.world.metrics.gauge("load.think_scale")
        self._g_shed.set(1.0)
        self._m_op_seconds = self.world.metrics.histogram("load.op_seconds")
        self._declare_slos()
        if controlled:
            self._attach_actuators()
        self._clients: list[tuple[ServerSession, ShardOutcome, bytes]] = []
        self._connect_clients()

    # -- setup -------------------------------------------------------------

    def _seed_file(self, name: str) -> None:
        shard = self.fleet.shard_for(name)
        fs = shard.fs
        owner = Cred(uid=0, gid=0)
        directory = pathops.resolve(fs, "/" + name)
        content = bytes(range(256)) * (FILE_SIZE // 256)
        inode = fs.create(directory.ino, "data", owner, mode=0o666)
        fs.write(inode.ino, 0, content, owner)
        fs.commit(inode.ino)

    def _pick_hot_shard(self) -> str:
        """The shard owning the most names heats up (ties: first by
        location sort) — determinism needs no coin flips here."""
        counts: dict[str, int] = {
            shard.location: 0 for shard in self.fleet.shards}
        for location in self.fleet.assignments.values():
            counts[location] += 1
        return max(sorted(counts), key=lambda loc: counts[loc])

    def _declare_slos(self) -> None:
        config = self.config
        self.plane.add_slo(SloSpec(
            "shard-wait-p99", metric="server.queue.wait_seconds",
            reduce="p99", threshold=config.wait_p99_slo, scope="sources",
            window=config.slo_window,
            description="windowed queue-wait p99, per shard",
        ))
        self.plane.add_slo(SloSpec(
            "shard-busy-rate", metric="server.queue.rejected",
            reduce="rate", threshold=config.reject_rate_slo,
            scope="sources", window=config.slo_window,
            description="busy-reject rate, per shard",
        ))
        self.plane.add_slo(SloSpec(
            "fleet-wait-p99", metric="server.queue.wait_seconds",
            reduce="p99", threshold=config.wait_p99_slo, scope="merged",
            window=config.slo_window,
            description="windowed queue-wait p99, fleet-merged",
        ))

    def _attach_actuators(self) -> None:
        config = self.config
        self.plane.add_actuator(LoadShedder(
            [self], slo="fleet-wait-p99", step=config.shed_step,
            max_scale=config.shed_max,
        ))
        self.plane.add_actuator(AimdAdmission(
            self.queues, latency_slo="shard-wait-p99",
            reject_slo="shard-busy-rate", increase=config.aimd_increase,
            decrease=config.aimd_decrease, floor=config.aimd_floor,
        ))

    def _client_names(self) -> list[str]:
        """Per-client name assignment: ``hot_clients`` of them pinned
        to hot-shard names, the rest round-robin over the cold ones."""
        hot_names = [name for name in self.names
                     if self.fleet.assignments[name] == self.hot_shard]
        cold_names = [name for name in self.names
                      if self.fleet.assignments[name] != self.hot_shard]
        if not cold_names:          # degenerate placement: all hot
            cold_names = hot_names
        assigned = []
        for index in range(self.config.clients):
            if index < min(self.config.hot_clients, self.config.clients):
                assigned.append(hot_names[index % len(hot_names)])
            else:
                assigned.append(cold_names[index % len(cold_names)])
        return assigned

    def _connect_clients(self) -> None:
        config = self.config
        shared_keys = EphemeralKeyCache(self.world.rng)
        handles: dict[str, bytes] = {}
        for index, name in enumerate(self._client_names()):
            shard = self.fleet.shard_for(name)
            link = self.world.connector(shard.location,
                                        proto.SERVICE_FILESERVER)
            outcome = ServerSession.connect(
                link, shard.path, shared_keys, self.world.rng,
                encrypt=config.encrypt,
            )
            assert isinstance(outcome, ServerSession)
            outcome.peer.retry_policy = RetryPolicy(
                base_delay=config.rpc_timeout, multiplier=2.0,
                max_delay=4.0 * config.rpc_timeout,
            )
            if name not in handles:
                handles[name] = self._lookup_data(outcome, name)
            report = self._outcomes[shard.location]
            report.clients += 1
            self._clients.append((outcome, report, handles[name]))

    def _lookup_data(self, session: ServerSession, name: str) -> bytes:
        def lookup(dir_handle: bytes, entry: str) -> bytes:
            status, body = session.call_nfs(
                nfs_const.NFSPROC3_LOOKUP,
                nfs_types.LookupArgs.make(
                    what=nfs_types.DirOpArgs.make(dir=dir_handle,
                                                  name=entry)
                ),
                authno=0,
            )
            assert status == nfs_const.NFS3_OK, f"lookup({entry}): {status}"
            return body.object

        root = lookup(bytes(24), ".")  # the RW dialect's mount convention
        return lookup(lookup(root, name), "data")

    # -- the shedding hook -------------------------------------------------

    def set_think_scale(self, scale: float) -> float:
        """LoadShedder target; see LoadHarness.set_think_scale."""
        self.think_scale = max(1.0, float(scale))
        self._g_shed.set(self.think_scale)
        return self.think_scale

    # -- the closed loop ---------------------------------------------------

    def _run_op(self, session: ServerSession, stream: OpStream,
                report: ControlReport, shard: ShardOutcome):
        proc, args = stream.next_op()
        clock = self.world.clock
        start = clock.now
        try:
            status, _body = yield from session.call_nfs_task(proc, args, 0)
        except RpcError:
            report.op_errors += 1
            return
        if status != nfs_const.NFS3_OK:
            report.op_errors += 1
            return
        latency = clock.now - start
        report.latencies.append(latency)
        shard.latencies.append(latency)
        self._m_op_seconds.observe(latency)

    def _client(self, index: int, report: ControlReport):
        config = self.config
        session, shard, handle = self._clients[index]
        stream = OpStream([handle], config.mix, config.io_size,
                          seed=(config.seed << 8) ^ index)
        think_rng = random.Random((config.seed << 16) ^ index)
        for _op in range(config.ops_per_client):
            if config.think_time > 0:
                yield Sleep(think_rng.expovariate(1.0 / config.think_time)
                            * self.think_scale)
            yield from self._run_op(session, stream, report, shard)

    def run(self) -> ControlReport:
        config = self.config
        report = ControlReport(controlled=self.controlled,
                               clients=config.clients,
                               servers=config.servers,
                               hot_shard=self.hot_shard)
        report.shards = [self._outcomes[shard.location]
                         for shard in self.fleet.shards]
        start = self.world.clock.now
        for index in range(config.clients):
            self.scheduler.spawn(self._client(index, report),
                                 name=f"control-client-{index}")
        blocked = self.scheduler.run()
        report.unfinished_tasks = len(blocked)
        report.op_errors += sum(
            1 for task in self.scheduler.tasks
            if task.failed and not task.daemon
        )
        for shard in self.fleet.shards:
            outcome = self._outcomes[shard.location]
            queue = self.queues[shard.location]
            outcome.peak_queue_depth = queue.peak_depth
            outcome.final_max_depth = queue.max_depth
            # Per-shard rejects come from the shard's own registry —
            # the tee makes this split possible at all.
            outcome.busy_rejects = shard.server.registry.counter(
                "server.queue.rejected").value
        report.busy_rejects = self.world.metrics.counter(
            "server.queue.rejected").value
        report.busy_retries = sum(s.busy_retries
                                  for s, _r, _h in self._clients)
        report.final_think_scale = self.think_scale
        report.policy_actions = len(self.plane.policy.actions)
        report.slo_events = len(self.plane.slos.events)
        report.finish(self.world.clock.now - start)
        return report


def run_control_comparison(config: ControlBenchConfig
                           ) -> tuple[ControlReport, ControlReport, dict]:
    """(unmanaged, managed, artifact): the same world twice, the second
    time with the actuators attached.  Both runs carry the collector
    and SLO engine so the artifact can show the baseline breaching."""
    baseline = ControlHarness(config, controlled=False).run()
    managed_harness = ControlHarness(config, controlled=True)
    managed = managed_harness.run()
    artifact = managed_harness.plane.artifact()
    artifact["summary"] = {
        "config": {
            "servers": config.servers, "clients": config.clients,
            "ops_per_client": config.ops_per_client, "seed": config.seed,
            "hot_factor": config.hot_factor,
            "hot_clients": config.hot_clients,
            "max_depth": config.max_depth, "period": config.period,
        },
        "baseline": _summary(baseline),
        "managed": _summary(managed),
    }
    return baseline, managed, artifact


def _summary(report: ControlReport) -> dict:
    return {
        "controlled": report.controlled,
        "hot_shard": report.hot_shard,
        "ops_completed": report.ops_completed,
        "op_errors": report.op_errors,
        "busy_rejects": report.busy_rejects,
        "busy_retries": report.busy_retries,
        "p50_ms": report.p50 * 1000,
        "p95_ms": report.p95 * 1000,
        "p99_ms": report.p99 * 1000,
        "throughput": report.throughput,
        "final_think_scale": report.final_think_scale,
        "policy_actions": report.policy_actions,
        "slo_events": report.slo_events,
        "shards": [{
            "location": shard.location, "hot": shard.hot,
            "names": shard.names, "clients": shard.clients,
            "ops": shard.ops_completed, "p99_ms": shard.p99 * 1000,
            "busy_rejects": shard.busy_rejects,
            "peak_queue_depth": shard.peak_queue_depth,
            "final_max_depth": shard.final_max_depth,
        } for shard in report.shards],
    }
