"""Central metrics aggregation: heartbeat pulls into bounded rings.

The collector is the control plane's *see* stage.  Every machine (and
any other interesting source, like a load generator) registers a
**reporter**: a zero-argument callable that returns a registry snapshot
dict, or ``None`` when the source is down.  Each collector tick pulls
every reporter once — that pull is the heartbeat:

* a snapshot → the source is **live**; the snapshot is appended to the
  source's bounded time-series ring (old entries fall off the far end,
  so collector memory is O(sources × ring), never O(run length));
* ``None`` → a missed heartbeat; after ``stale_after`` consecutive
  misses the source is **stale** (its last snapshot still contributes
  to the fleet view — a silent server's counters did happen), and after
  ``dead_after`` it is **dead** and excluded from the merged view.

After pulling, the collector folds the freshest snapshot of every
non-dead source through :func:`repro.obs.merge.merge_snapshots` into
one fleet-level snapshot, itself kept in a ring — so fleet-wide rates
and windowed quantiles are just diffs of adjacent merged entries.

Everything runs on the virtual clock; a tick is triggered by the
control plane's daemon task, never by wall time.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..obs.merge import diff_snapshots, merge_snapshots
from ..obs.registry import NULL_REGISTRY

LIVE = "live"
STALE = "stale"
DEAD = "dead"


def _ring_window(ring, span: int) -> tuple[float, dict] | None:
    """(dt, diff) across the newest *span* intervals of a snapshot ring."""
    if len(ring) < 2:
        return None
    span = min(max(1, span), len(ring) - 1)
    t0, before = ring[-1 - span]
    t1, after = ring[-1]
    dt = t1 - t0
    if dt <= 0:
        return None
    return dt, diff_snapshots(before, after)


class SourceRecord:
    """One registered source: its reporter, ring, and liveness state."""

    __slots__ = ("name", "kind", "report", "ring", "last_seen", "missed",
                 "state", "boots", "flaps")

    def __init__(self, name: str, kind: str,
                 report: Callable[[], dict | None], ring_size: int) -> None:
        self.name = name
        self.kind = kind
        self.report = report
        #: (virtual time, snapshot) pairs, newest last.
        self.ring: deque[tuple[float, dict]] = deque(maxlen=ring_size)
        self.last_seen: float | None = None
        self.missed = 0
        self.state = LIVE
        #: Boot notifications received (see :meth:`Collector.notify_boot`).
        self.boots = 0
        #: Boots that cleared pending missed-heartbeat debt — the
        #: machine was down at pull instants but provably came back.
        self.flaps = 0

    @property
    def latest(self) -> dict | None:
        """Most recent snapshot, or None if never heard from."""
        return self.ring[-1][1] if self.ring else None

    def window(self, span: int = 1) -> tuple[float, dict] | None:
        """The delta across the newest *span* ring intervals.

        Returns ``(dt, diff_snapshot)`` where the diff subtracts the
        monotonic instruments (counters, histograms, families) and
        carries gauges at their newer values — the recent activity of
        this source.  A ring shorter than *span* + 1 uses what it has
        (a partial window beats none); with fewer than two entries
        there is no window yet and callers fall back to the cumulative
        snapshot.
        """
        return _ring_window(self.ring, span)


class Collector:
    """Pull-based snapshot aggregation over registered sources."""

    def __init__(self, clock, metrics=None, ring_size: int = 64,
                 stale_after: int = 2, dead_after: int = 5) -> None:
        if ring_size < 2:
            raise ValueError("ring_size must be at least 2 (windows need "
                             "two entries)")
        if not 0 < stale_after <= dead_after:
            raise ValueError("need 0 < stale_after <= dead_after")
        self.clock = clock
        self.ring_size = ring_size
        self.stale_after = stale_after
        self.dead_after = dead_after
        self.sources: dict[str, SourceRecord] = {}
        #: Fleet-level merged snapshots, same ring discipline.
        self.merged_ring: deque[tuple[float, dict]] = deque(maxlen=ring_size)
        self.ticks = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_ticks = metrics.counter("control.collector.ticks")
        self._m_pulls = metrics.counter("control.collector.pulls")
        self._m_misses = metrics.counter("control.collector.missed_beats")
        self._g_sources = metrics.gauge("control.collector.sources")
        self._g_stale = metrics.gauge("control.collector.stale")
        self._g_dead = metrics.gauge("control.collector.dead")
        self._m_boots = metrics.counter("control.collector.boots")
        self._m_flaps = metrics.counter("control.collector.flaps")

    # -- registration ------------------------------------------------------

    def register(self, name: str, report: Callable[[], dict | None],
                 kind: str = "machine") -> SourceRecord:
        """Add a source; *report* is pulled once per tick."""
        if name in self.sources:
            raise ValueError(f"source {name!r} already registered")
        record = SourceRecord(name, kind, report, self.ring_size)
        self.sources[name] = record
        self._g_sources.set(len(self.sources))
        return record

    def unregister(self, name: str) -> None:
        self.sources.pop(name, None)
        self._g_sources.set(len(self.sources))

    def notify_boot(self, name: str) -> None:
        """A machine restarted: clear its missed-heartbeat debt.

        The heartbeat pull samples liveness at tick instants, so a
        machine that crashes and restarts *between* pulls — or is
        unluckily down at several consecutive pull instants while
        flapping — would accumulate misses and be declared dead despite
        being up most of the time.  A restart is positive proof of life;
        wiring the machine's boot beacon here makes such a source
        **alive-with-reset**: state back to live, missed debt forgiven,
        the episode counted as a flap instead of a death.  The next
        successful pull repopulates its ring.
        """
        record = self.sources.get(name)
        if record is None:
            return
        record.boots += 1
        self._m_boots.inc()
        if record.missed or record.state != LIVE:
            record.flaps += 1
            self._m_flaps.inc()
        record.missed = 0
        record.state = LIVE
        record.last_seen = self.clock.now

    # -- the heartbeat pull ------------------------------------------------

    def tick(self) -> dict | None:
        """Pull every source once and refresh the merged fleet view.

        Returns the new merged snapshot (None until some source has
        reported).  Reporter exceptions count as missed heartbeats —
        a crashing reporter must not take the control loop down.
        """
        now = self.clock.now
        self.ticks += 1
        self._m_ticks.inc()
        stale = dead = 0
        contributing: dict[str, dict] = {}
        for name in sorted(self.sources):
            record = self.sources[name]
            try:
                snapshot = record.report()
            except Exception:  # noqa: BLE001 - reporter = untrusted input
                snapshot = None
            self._m_pulls.inc()
            if snapshot is None:
                record.missed += 1
                self._m_misses.inc()
                if record.missed >= self.dead_after:
                    record.state = DEAD
                elif record.missed >= self.stale_after:
                    record.state = STALE
            else:
                record.missed = 0
                record.state = LIVE
                record.last_seen = now
                record.ring.append((now, snapshot))
            if record.state == STALE:
                stale += 1
            elif record.state == DEAD:
                dead += 1
            if record.state != DEAD and record.latest is not None:
                contributing[name] = record.latest
        self._g_stale.set(stale)
        self._g_dead.set(dead)
        if not contributing:
            return None
        merged = merge_snapshots(contributing, meta={"t": now})
        self.merged_ring.append((now, merged))
        return merged

    # -- views -------------------------------------------------------------

    @property
    def merged(self) -> dict | None:
        """Freshest fleet-level snapshot (None before any tick heard a
        source)."""
        return self.merged_ring[-1][1] if self.merged_ring else None

    def merged_window(self, span: int = 1) -> tuple[float, dict] | None:
        """Fleet-level recent delta; see :meth:`SourceRecord.window`."""
        return _ring_window(self.merged_ring, span)

    def states(self) -> dict[str, str]:
        """{source name: live|stale|dead} for display and assertions."""
        return {name: record.state
                for name, record in sorted(self.sources.items())}

    def artifact(self) -> dict:
        """Per-source latest snapshots + liveness, JSON-ready."""
        return {
            "sources": {
                name: {
                    "kind": record.kind,
                    "state": record.state,
                    "last_seen": record.last_seen,
                    "missed": record.missed,
                    "boots": record.boots,
                    "flaps": record.flaps,
                    "snapshot": record.latest,
                }
                for name, record in sorted(self.sources.items())
            },
            "merged": self.merged,
            "ticks": self.ticks,
        }
