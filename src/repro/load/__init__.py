"""Multi-client load generation for the concurrent simulation engine.

:mod:`repro.load.workload` defines *what* each simulated client does
(operation mixes, seeded operation streams); :mod:`repro.load.harness`
builds full SFS stacks — N sessions against one queued server on the
cooperative scheduler — drives them closed- or open-loop, and reports
throughput plus latency percentiles.  Everything is deterministic per
seed: latencies are simulated time, interleavings come from the
scheduler's seeded rng, and no wall-clock value enters a report.
"""

from .workload import OpMix, OpStream
from .harness import LoadConfig, LoadHarness, LoadReport, WorkloadPhase

__all__ = [
    "LoadConfig",
    "LoadHarness",
    "LoadReport",
    "OpMix",
    "OpStream",
    "WorkloadPhase",
]
