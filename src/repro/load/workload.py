"""Workload definitions: operation mixes and seeded op streams.

A workload is a stream of ``(proc, args)`` NFS3 calls against a set of
seeded files — the attribute-heavy GETATTR / READ / WRITE mix the
paper's software-development workload boils down to once the kernel
cache absorbs name lookups.  All randomness flows through a per-client
``random.Random``, so two runs with the same seed issue byte-identical
request streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..nfs3 import const as nfs_const
from ..nfs3 import types as nfs_types

GETATTR = "getattr"
READ = "read"
WRITE = "write"

#: Bytes of content seeded into each workload file.
FILE_SIZE = 65536


@dataclass(frozen=True)
class OpMix:
    """Relative operation weights (normalized at draw time)."""

    getattr_weight: float = 0.5
    read_weight: float = 0.3
    write_weight: float = 0.2

    def __post_init__(self) -> None:
        if min(self.getattr_weight, self.read_weight,
               self.write_weight) < 0:
            raise ValueError("weights must be non-negative")
        if self.getattr_weight + self.read_weight + self.write_weight <= 0:
            raise ValueError("at least one weight must be positive")

    def draw(self, rng: random.Random) -> str:
        total = (self.getattr_weight + self.read_weight
                 + self.write_weight)
        point = rng.random() * total
        if point < self.getattr_weight:
            return GETATTR
        if point < self.getattr_weight + self.read_weight:
            return READ
        return WRITE


#: The paper's software-development profile: attributes dominate.
DEFAULT_MIX = OpMix()


class OpStream:
    """A deterministic per-client stream of NFS3 operations.

    ``handles`` are the (encrypted) file handles of the seeded workload
    files — valid on every session to the same export, because the
    server's handle map is derived from the export's durable key.
    """

    def __init__(self, handles: list[bytes], mix: OpMix = DEFAULT_MIX,
                 io_size: int = 4096, seed: int = 0) -> None:
        if not handles:
            raise ValueError("need at least one workload file handle")
        if not 0 < io_size <= FILE_SIZE:
            raise ValueError(f"io_size must be in (0, {FILE_SIZE}]")
        self.handles = handles
        self.mix = mix
        self.io_size = io_size
        self.rng = random.Random(seed)

    def next_op(self) -> tuple[int, object]:
        """Draw the next ``(proc, args)`` pair."""
        rng = self.rng
        handle = self.handles[rng.randrange(len(self.handles))]
        kind = self.mix.draw(rng)
        if kind == GETATTR:
            return (nfs_const.NFSPROC3_GETATTR,
                    nfs_types.GetAttrArgs.make(object=handle))
        offset = rng.randrange(0, FILE_SIZE - self.io_size + 1)
        if kind == READ:
            return (nfs_const.NFSPROC3_READ,
                    nfs_types.ReadArgs.make(
                        file=handle, offset=offset, count=self.io_size))
        data = bytes([rng.randrange(256)]) * self.io_size
        return (nfs_const.NFSPROC3_WRITE,
                nfs_types.WriteArgs.make(
                    file=handle, offset=offset, count=len(data),
                    stable=nfs_const.UNSTABLE, data=data))
